//! End-to-end integration tests: the full pipeline from locking through
//! training to exact key extraction, across architectures.

use relock::prelude::*;

/// The headline claim, end to end on a *trained* victim: HPNN's key is
/// recovered exactly from I/O access plus the white box.
#[test]
fn trained_mlp_key_is_recovered_exactly() {
    let mut rng = Prng::seed_from_u64(9001);
    let task = mnist_like(&mut rng, 300, 100, 24);
    let spec = MlpSpec {
        input: 24,
        hidden: vec![16, 10],
        classes: 10,
    };
    let mut model = build_mlp(&spec, LockSpec::evenly(10), &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);

    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9002))
        .expect("attack completes");
    assert_eq!(report.fidelity(model.true_key()), 1.0);
    assert!(
        report.queries > 0,
        "a real I/O attack must query the oracle"
    );
    assert!(report.fully_validated());
}

/// An untrained victim is an equally valid target — the attack never uses
/// the data distribution (paper §2.3's adversary needs no training data).
#[test]
fn untrained_victim_needs_no_training_data() {
    let mut rng = Prng::seed_from_u64(9100);
    let spec = MlpSpec {
        input: 20,
        hidden: vec![14, 8],
        classes: 5,
    };
    let model = build_mlp(&spec, LockSpec::evenly(8), &mut rng).expect("spec fits");
    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9101))
        .expect("attack completes");
    assert_eq!(report.fidelity(model.true_key()), 1.0);
}

/// A trained LeNet with channel-locked convolutions decrypts exactly: the
/// expansive conv layers route through the learning + validation +
/// correction path.
#[test]
fn trained_lenet_with_channel_locks_decrypts() {
    let mut rng = Prng::seed_from_u64(9200);
    let task = cifar_like(&mut rng, 250, 80, 1, 12, 12);
    let spec = LenetSpec {
        in_channels: 1,
        h: 12,
        w: 12,
        c1: 4,
        c2: 6,
        fc1: 16,
        fc2: 12,
        classes: 10,
    };
    let mut model = build_lenet(&spec, LockSpec::evenly(8), &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);

    let oracle = CountingOracle::new(&model);
    let mut cfg = AttackConfig::fast();
    cfg.continue_on_failure = true;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9201))
        .expect("attack completes");
    assert!(
        report.fidelity(model.true_key()) >= 0.99,
        "fidelity {} on LeNet",
        report.fidelity(model.true_key())
    );
}

/// The extracted key restores the victim's accuracy (the IP-piracy column
/// of Table 1): extracted-key accuracy equals true-key accuracy.
#[test]
fn extracted_key_restores_accuracy() {
    let mut rng = Prng::seed_from_u64(9300);
    let task = mnist_like(&mut rng, 300, 120, 20);
    let spec = MlpSpec {
        input: 20,
        hidden: vec![16, 8],
        classes: 10,
    };
    let mut model = build_mlp(&spec, LockSpec::evenly(12), &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);
    let true_acc = model.accuracy(task.test.inputs(), task.test.labels());

    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9301))
        .expect("attack completes");
    let stolen_acc = model.accuracy_with(task.test.inputs(), task.test.labels(), &report.key);
    assert!(
        (stolen_acc - true_acc).abs() < 1e-12,
        "stolen {stolen_acc} vs true {true_acc}"
    );
}

/// The decryption attack beats the monolithic baseline on an expansive
/// victim — the paper's central comparison.
#[test]
fn decryption_beats_monolithic_on_expansive_victim() {
    let mut rng = Prng::seed_from_u64(9400);
    let task = mnist_like(&mut rng, 250, 80, 10);
    // Expansive first layer: 10 → 20.
    let spec = MlpSpec {
        input: 10,
        hidden: vec![20, 12],
        classes: 10,
    };
    let mut model = build_mlp(&spec, LockSpec::evenly(16), &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);

    let mono_oracle = CountingOracle::new(&model);
    let mono_cfg = MonolithicConfig {
        learning: relock::attack::LearningConfig {
            samples: 150,
            epochs: 40,
            patience: 8,
            ..Default::default()
        },
        input_scale: 3.0,
    };
    let mono = MonolithicAttack::new(mono_cfg).run(
        model.white_box(),
        &mono_oracle,
        &mut Prng::seed_from_u64(9401),
    );

    let dec_oracle = CountingOracle::new(&model);
    let mut cfg = AttackConfig::fast();
    cfg.continue_on_failure = true;
    let dec = Decryptor::new(cfg)
        .run(
            model.white_box(),
            &dec_oracle,
            &mut Prng::seed_from_u64(9402),
        )
        .expect("attack completes");

    let mono_fid = mono.key.fidelity(model.true_key());
    let dec_fid = dec.fidelity(model.true_key());
    assert!(
        dec_fid >= mono_fid,
        "decryption ({dec_fid}) must not lose to monolithic ({mono_fid})"
    );
    assert_eq!(dec_fid, 1.0, "decryption should reach exact recovery");
}

/// The Figure 3 telemetry is populated and consistent.
#[test]
fn timing_breakdown_covers_the_run() {
    let mut rng = Prng::seed_from_u64(9500);
    let spec = MlpSpec {
        input: 12,
        hidden: vec![8, 6],
        classes: 3,
    };
    let model = build_mlp(&spec, LockSpec::evenly(6), &mut rng).expect("spec fits");
    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9501))
        .expect("attack completes");
    let total: f64 = Procedure::ALL
        .iter()
        .map(|&p| report.timing.fraction(p))
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    assert!(report.timing.total().as_nanos() > 0);
}
