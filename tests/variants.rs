//! §3.9 generality: integration tests for the locking variants.

use relock::prelude::*;

/// Variant (a): multiplicative locking. The algebraic step is blind to it
/// (no sign information at the hyperplane), but the continuous-relaxation
/// learning attack plus validation recovers the key.
#[test]
fn multiplicative_lock_decrypts() {
    let mut rng = Prng::seed_from_u64(9600);
    let task = mnist_like(&mut rng, 250, 80, 16);
    let spec = MlpSpec {
        input: 16,
        hidden: vec![12, 8],
        classes: 10,
    };
    let mut model = build_mlp(&spec, LockSpec::scale(8, 0.25), &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);

    let oracle = CountingOracle::new(&model);
    let mut cfg = AttackConfig::fast();
    cfg.continue_on_failure = true;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9601))
        .expect("attack completes");
    assert!(
        report.fidelity(model.true_key()) >= 0.99,
        "fidelity {}",
        report.fidelity(model.true_key())
    );
}

/// Variant (b): weight-element locking, attacked by per-neuron hypothesis
/// testing at white-box hyperplane witnesses.
#[test]
fn weight_element_lock_decrypts() {
    let mut rng = Prng::seed_from_u64(9700);
    let spec = MlpSpec {
        input: 14,
        hidden: vec![10, 8],
        classes: 4,
    };
    let model = build_mlp_weight_locked(&spec, 8, &mut rng).expect("spec fits");
    let oracle = CountingOracle::new(&model);
    let report = weight_lock_attack(
        model.white_box(),
        &oracle,
        &AttackConfig::fast(),
        &mut Prng::seed_from_u64(9701),
    );
    assert_eq!(report.key.fidelity(model.true_key()), 1.0);
    assert_eq!(report.unresolved_neurons, 0);
}

/// Variant (b) on a *trained* victim: functional equivalence of the
/// extracted key (trained weights can make an individual bit nearly
/// irrelevant, so the contract is equivalence, checked on many inputs).
#[test]
fn weight_element_lock_extraction_is_functionally_equivalent() {
    let mut rng = Prng::seed_from_u64(9800);
    let task = mnist_like(&mut rng, 250, 80, 14);
    let spec = MlpSpec {
        input: 14,
        hidden: vec![10, 8],
        classes: 10,
    };
    let mut model = build_mlp_weight_locked(&spec, 6, &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);
    let oracle = CountingOracle::new(&model);
    let report = weight_lock_attack(
        model.white_box(),
        &oracle,
        &AttackConfig::fast(),
        &mut Prng::seed_from_u64(9801),
    );
    let mut max_diff = 0.0f64;
    for _ in 0..50 {
        let x = rng.normal_tensor([14]).scale(3.0);
        let diff = model
            .logits(&x)
            .max_abs_diff(&model.logits_with(&x, &report.key));
        max_diff = max_diff.max(diff);
    }
    assert!(
        max_diff < 1e-9,
        "extracted key is not functionally equivalent: max diff {max_diff}"
    );
}

/// Variant (c): channel locking on a ViT's MLP features (one bit shared
/// across all tokens) decrypts on a trained victim.
#[test]
fn vit_token_feature_locks_decrypt() {
    let mut rng = Prng::seed_from_u64(9900);
    let task = cifar_like(&mut rng, 250, 80, 1, 8, 8);
    let spec = VitSpec {
        in_channels: 1,
        h: 8,
        w: 8,
        patch: 4,
        embed: 12,
        heads: 2,
        blocks: 2,
        mlp_hidden: 16,
        classes: 10,
    };
    let mut model = build_vit(&spec, LockSpec::evenly(8), &mut rng).expect("spec fits");
    Trainer::quick().fit(&mut model, &task, &mut rng);
    let oracle = CountingOracle::new(&model);
    let mut cfg = AttackConfig::fast();
    cfg.continue_on_failure = true;
    cfg.probe_delta = 1e-4;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(9901))
        .expect("attack completes");
    assert!(
        report.fidelity(model.true_key()) >= 0.99,
        "fidelity {}",
        report.fidelity(model.true_key())
    );
}
