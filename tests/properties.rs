//! Property-style integration tests over the workspace's core invariants
//! (randomized with the in-tree `Prng`; no external test dependencies).

use relock::prelude::*;
use relock::tensor::linalg::preimage;

/// Fidelity and Hamming distance are consistent for arbitrary keys.
#[test]
fn key_fidelity_matches_hamming() {
    let mut rng = Prng::seed_from_u64(0xF1DE);
    for _ in 0..32 {
        let n = 1 + rng.below(63);
        let bits_a: Vec<bool> = (0..n).map(|_| rng.flip()).collect();
        let flips: Vec<bool> = (0..n).map(|_| rng.flip()).collect();
        let a = Key::from_bits(bits_a);
        let b = Key::from_bits(a.bits().iter().zip(&flips).map(|(&x, &f)| x ^ f).collect());
        let hd = a.hamming(&b);
        assert!((a.fidelity(&b) - (1.0 - hd as f64 / n as f64)).abs() < 1e-12);
        assert_eq!(hd, flips.iter().filter(|&&f| f).count());
    }
}

/// A key round-trips through its continuous assignment.
#[test]
fn key_assignment_round_trip() {
    let mut rng = Prng::seed_from_u64(0x2071);
    for _ in 0..32 {
        let n = rng.below(64);
        let bits: Vec<bool> = (0..n).map(|_| rng.flip()).collect();
        let k = Key::from_bits(bits.clone());
        assert_eq!(k.to_assignment().to_bits(), bits);
    }
}

/// The min-norm pre-image really solves wide consistent systems.
#[test]
fn preimage_solves_wide_systems() {
    for seed in 0..32u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let m = 2 + (seed as usize % 5);
        let n = m + 3 + (seed as usize % 7);
        let a = rng.normal_tensor([m, n]);
        let b = rng.normal_tensor([m]);
        let p = preimage(&a, &b, 1e-8).expect("random wide matrices are onto");
        assert!(a.matvec(&p.v).max_abs_diff(&b) < 1e-7, "seed {seed}");
    }
}

/// Flipping any key bit changes a locked network's function somewhere
/// (no silent bits on randomly initialized victims).
#[test]
fn every_key_bit_matters_on_random_mlp() {
    for seed in 0..16u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let model = build_mlp(
            &MlpSpec {
                input: 6,
                hidden: vec![8],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .expect("spec fits");
        for bit in 0..4 {
            let mut wrong = model.true_key().clone();
            wrong.flip_bit(bit);
            let mut differs = false;
            for _ in 0..32 {
                let x = rng.normal_tensor([6]).scale(3.0);
                if model
                    .logits(&x)
                    .max_abs_diff(&model.logits_with(&x, &wrong))
                    > 1e-12
                {
                    differs = true;
                    break;
                }
            }
            assert!(differs, "seed {seed}: bit {bit} is silent");
        }
    }
}

/// The oracle under the true key is exactly the white box under the
/// true key — the hardware evaluates the same function.
#[test]
fn oracle_equals_whitebox_under_true_key() {
    for seed in 0..32u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let model = build_mlp(
            &MlpSpec {
                input: 5,
                hidden: vec![7, 6],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .expect("spec fits");
        let oracle = CountingOracle::new(&model);
        let x = rng.normal_tensor([5]);
        let from_oracle = oracle.query(&x);
        let from_whitebox = model
            .white_box()
            .logits(&x, &model.true_key().to_assignment());
        assert!(
            from_oracle.max_abs_diff(&from_whitebox) == 0.0,
            "seed {seed}"
        );
    }
}

/// Batched and single-sample evaluation agree on every architecture's
/// building blocks (here: the ViT, which exercises attention, layer
/// norm, token ops and conv embedding at once).
#[test]
fn vit_batched_forward_matches_single() {
    for seed in 0..8u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let model = build_vit(
            &VitSpec {
                in_channels: 1,
                h: 8,
                w: 8,
                patch: 4,
                embed: 8,
                heads: 2,
                blocks: 1,
                mlp_hidden: 12,
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .expect("spec fits");
        let keys = model.true_key().to_assignment();
        let xb = rng.normal_tensor([3, 64]);
        let batched = model.white_box().logits_batch(&xb, &keys);
        for s in 0..3 {
            let single = model
                .white_box()
                .logits(&Tensor::from_slice(xb.row(s)), &keys);
            assert!(
                single.max_abs_diff(&Tensor::from_slice(batched.row(s))) < 1e-12,
                "seed {seed} sample {s}"
            );
        }
    }
}
