//! Round-trip tests of the on-disk model format across all architectures.

use relock::prelude::*;

fn round_trip(model: &LockedModel, probe_dim: usize, seed: u64) {
    let mut buf = Vec::new();
    model.save(&mut buf).expect("serialize");
    let loaded = LockedModel::load(&mut buf.as_slice()).expect("deserialize");
    assert_eq!(loaded.true_key(), model.true_key());
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..5 {
        let x = rng.normal_tensor([probe_dim]);
        assert_eq!(
            model.logits(&x).as_slice(),
            loaded.logits(&x).as_slice(),
            "loaded model must be bit-identical"
        );
    }
}

#[test]
fn mlp_round_trips() {
    let mut rng = Prng::seed_from_u64(600);
    let m = build_mlp(
        &MlpSpec {
            input: 10,
            hidden: vec![8, 6],
            classes: 4,
        },
        LockSpec::evenly(6),
        &mut rng,
    )
    .unwrap();
    round_trip(&m, 10, 601);
}

#[test]
fn lenet_round_trips() {
    let mut rng = Prng::seed_from_u64(610);
    let m = build_lenet(
        &LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 4,
            c2: 6,
            fc1: 12,
            fc2: 8,
            classes: 3,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap();
    round_trip(&m, 144, 611);
}

#[test]
fn resnet_round_trips() {
    let mut rng = Prng::seed_from_u64(620);
    let m = build_resnet(
        &ResnetSpec {
            in_channels: 2,
            h: 8,
            w: 8,
            stem: 4,
            stages: vec![relock::nn::StageSpec {
                channels: 4,
                blocks: 1,
                stride: 1,
            }],
            classes: 3,
        },
        LockSpec::evenly(6),
        &mut rng,
    )
    .unwrap();
    round_trip(&m, 128, 621);
}

#[test]
fn vit_round_trips() {
    let mut rng = Prng::seed_from_u64(630);
    let m = build_vit(
        &VitSpec {
            in_channels: 1,
            h: 8,
            w: 8,
            patch: 4,
            embed: 8,
            heads: 2,
            blocks: 2,
            mlp_hidden: 12,
            classes: 3,
        },
        LockSpec::evenly(6),
        &mut rng,
    )
    .unwrap();
    round_trip(&m, 64, 631);
}

#[test]
fn scale_variant_round_trips() {
    let mut rng = Prng::seed_from_u64(640);
    let m = build_mlp(
        &MlpSpec {
            input: 6,
            hidden: vec![8],
            classes: 3,
        },
        LockSpec::scale(4, 0.5),
        &mut rng,
    )
    .unwrap();
    round_trip(&m, 6, 641);
}

#[test]
fn weight_lock_variant_round_trips() {
    let mut rng = Prng::seed_from_u64(650);
    let m = build_mlp_weight_locked(
        &MlpSpec {
            input: 6,
            hidden: vec![8],
            classes: 3,
        },
        4,
        &mut rng,
    )
    .unwrap();
    round_trip(&m, 6, 651);
}

#[test]
fn garbage_bytes_are_rejected() {
    assert!(LockedModel::load(&mut &b"definitely not a model"[..]).is_err());
}
