//! The paper's adversary "can then observe the logits or the output
//! vector" (§2.3). These tests check the attack under both observation
//! modes and some defensive wrinkles.

use relock::locking::OutputMode;
use relock::prelude::*;

fn victim(seed: u64) -> LockedModel {
    let mut rng = Prng::seed_from_u64(seed);
    build_mlp(
        &MlpSpec {
            input: 14,
            hidden: vec![10, 8],
            classes: 5,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .expect("spec fits")
}

#[test]
fn attack_succeeds_on_logit_oracle() {
    let model = victim(700);
    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(701))
        .expect("attack completes");
    assert_eq!(report.fidelity(model.true_key()), 1.0);
}

#[test]
fn attack_succeeds_on_softmax_oracle() {
    let model = victim(710);
    let oracle = relock::locking::CountingOracle::with_mode(&model, OutputMode::Softmax);
    let mut cfg = AttackConfig::fast();
    // Softmax compresses output differences; the attack only needs the
    // *same function* view on its own probes, so only the final direct
    // white-box comparison must account for the transformation. We attack
    // with continue_on_failure and check fidelity directly.
    cfg.continue_on_failure = true;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(711))
        .expect("attack completes");
    assert!(
        report.fidelity(model.true_key()) >= 0.99,
        "softmax oracle fidelity {}",
        report.fidelity(model.true_key())
    );
}

#[test]
fn oracle_mismatch_is_reported() {
    let model = victim(720);
    let other = victim(721);
    let mut rng = Prng::seed_from_u64(722);
    let wrong_dim_model = build_mlp(
        &MlpSpec {
            input: 9,
            hidden: vec![6],
            classes: 3,
        },
        LockSpec::evenly(2),
        &mut rng,
    )
    .expect("spec fits");
    let oracle = CountingOracle::new(&wrong_dim_model);
    let err = Decryptor::new(AttackConfig::fast()).run(
        model.white_box(),
        &oracle,
        &mut Prng::seed_from_u64(723),
    );
    assert!(err.is_err(), "dimension mismatch must be detected");
    drop(other);
}
