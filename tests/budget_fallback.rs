//! Query-budget degradation: a budget-starved attack must complete via the
//! learning fallback (no panic, no hard error) instead of dying inside
//! validation, and the broker must never let the underlying oracle see more
//! rows than the budget allows.

use relock::prelude::*;

fn victim(seed: u64) -> LockedModel {
    let mut rng = Prng::seed_from_u64(seed);
    build_mlp(
        &MlpSpec {
            input: 16,
            hidden: vec![12, 8],
            classes: 4,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .expect("spec fits")
}

#[test]
fn tight_budget_degrades_to_learning_fallback() {
    let model = victim(7);
    let oracle = CountingOracle::new(&model);
    let budget = 24u64;
    let cfg = AttackConfig {
        query_budget: Some(budget),
        ..AttackConfig::fast()
    };
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(8))
        .expect("budget exhaustion must degrade, not fail");

    // The budget is a hard ceiling on what the hardware ever sees.
    assert!(
        oracle.query_count() <= budget,
        "oracle saw {} rows with budget {budget}",
        oracle.query_count()
    );
    assert!(report.stats.underlying <= budget);
    assert_eq!(report.stats.underlying, oracle.query_count());

    // Starved validation commits the learned candidate unvalidated.
    assert!(
        report.layers.iter().any(|l| !l.validated),
        "expected at least one unvalidated (starved) layer: {:?}",
        report.layers
    );

    // A full-length key is still produced.
    assert_eq!(report.key.len(), model.true_key().len());
    let fid = report.fidelity(model.true_key());
    assert!((0.0..=1.0).contains(&fid));
}

#[test]
fn zero_budget_still_completes() {
    let model = victim(19);
    let oracle = CountingOracle::new(&model);
    let cfg = AttackConfig {
        query_budget: Some(0),
        ..AttackConfig::fast()
    };
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(20))
        .expect("even a zero budget degrades gracefully");
    assert_eq!(oracle.query_count(), 0, "zero budget means zero queries");
    assert_eq!(report.stats.underlying, 0);
    assert!(report.layers.iter().all(|l| !l.validated));
    assert_eq!(report.key.len(), model.true_key().len());
}

#[test]
fn generous_budget_does_not_perturb_the_attack() {
    let model = victim(7);

    // Reference run: no budget at all.
    let free_oracle = CountingOracle::new(&model);
    let free = Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &free_oracle, &mut Prng::seed_from_u64(8))
        .expect("unbudgeted attack");
    assert_eq!(free.fidelity(model.true_key()), 1.0);

    // Budgeted run with plenty of headroom: identical outcome.
    let oracle = CountingOracle::new(&model);
    let budget = free.stats.underlying * 2 + 100;
    let cfg = AttackConfig {
        query_budget: Some(budget),
        ..AttackConfig::fast()
    };
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(8))
        .expect("generous budget");
    assert_eq!(report.fidelity(model.true_key()), 1.0);
    assert!(report.layers.iter().all(|l| l.validated));
    assert_eq!(report.stats.underlying, free.stats.underlying);
}
