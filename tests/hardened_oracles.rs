//! Robustness study: how do cheap output-path countermeasures affect the
//! decryption attack? (The paper's conclusion asks what would make DNN
//! locking safe; these tests quantify the obvious tweaks.)

use relock::locking::{LabelOnlyOracle, NoisyOracle, QuantizedOracle};
use relock::prelude::*;

fn victim(seed: u64) -> LockedModel {
    let mut rng = Prng::seed_from_u64(seed);
    build_mlp(
        &MlpSpec {
            input: 14,
            hidden: vec![10, 8],
            classes: 6,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .expect("spec fits")
}

/// Moderate output quantization does not stop the attack: the algebraic
/// probes only need to distinguish "changed" from "unchanged", and a
/// 4-decimal grid preserves that.
#[test]
fn quantization_to_4_decimals_does_not_stop_the_attack() {
    let model = victim(1000);
    let oracle = QuantizedOracle::new(CountingOracle::new(&model), 4);
    let mut cfg = AttackConfig::fast();
    // Quantization floors the distinguishable difference at ~1e-4, so the
    // probes must move the output more than one quantization step, and
    // "equal" must absorb a step of rounding jitter.
    cfg.eq_tol = 2e-4;
    cfg.diff_tol = 2e-3;
    cfg.epsilon = 1e-2;
    cfg.probe_delta = 1e-2;
    cfg.kink_tol = 1e-4;
    cfg.continue_on_failure = true;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(1001))
        .expect("attack completes");
    assert!(
        report.fidelity(model.true_key()) >= 0.99,
        "fidelity {} under 4-decimal quantization",
        report.fidelity(model.true_key())
    );
}

/// Small Gaussian output noise degrades the algebraic path (its equality
/// tests drown) but the learning attack still extracts most of the key —
/// noise is not a defense, just a tax.
#[test]
fn small_noise_still_leaks_most_of_the_key() {
    let model = victim(1010);
    let oracle = NoisyOracle::new(CountingOracle::new(&model), 1e-3, 77);
    let mut cfg = AttackConfig::fast();
    cfg.continue_on_failure = true;
    // The noise floor sits above the exact-arithmetic tolerances.
    cfg.eq_tol = 5e-3;
    cfg.diff_tol = 5e-2;
    cfg.epsilon = 0.05;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(1011))
        .expect("attack completes");
    assert!(
        report.fidelity(model.true_key()) >= 0.7,
        "fidelity {} under σ=1e-3 noise",
        report.fidelity(model.true_key())
    );
}

/// Label-only access genuinely cripples this attack family: the
/// second-difference and equality probes see an almost-everywhere-constant
/// function. (Decision-only extraction needs different machinery — a real
/// limitation, matching the paper's logit-access assumption.)
#[test]
fn label_only_oracle_starves_the_attack_of_signal() {
    let model = victim(1020);
    let oracle = LabelOnlyOracle::new(CountingOracle::new(&model));
    let mut cfg = AttackConfig::fast();
    cfg.continue_on_failure = true;
    let report = Decryptor::new(cfg)
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(1021))
        .expect("attack completes without crashing");
    // No exactness claim is possible here; the attack should at least not
    // spuriously report success.
    let fidelity = report.fidelity(model.true_key());
    assert!(
        !report.fully_validated() || fidelity >= 0.99,
        "validation must not certify a key it could not test (fidelity {fidelity})"
    );
}
