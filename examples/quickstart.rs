//! Quickstart: lock a network, train it as a function of its key, then
//! steal the key through I/O queries alone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full HPNN threat model end to end:
//!
//! 1. The **IP owner** builds an MLP, embeds a random 16-bit key into its
//!    hidden neurons (flipping units, paper Eq. 1) and trains the network
//!    *with the key fixed* so parameters and key become entangled.
//! 2. The owner publishes the architecture and weights (the white box) and
//!    ships hardware holding the key in tamper-proof storage (the oracle).
//! 3. The **adversary** runs the DNN decryption attack: algebraic key-bit
//!    inference where the network is contractive, the learning-based attack
//!    elsewhere, then validation and error correction — and walks away with
//!    a functionally equivalent model.

use relock_attack::{AttackConfig, Decryptor, Procedure};
use relock_data::mnist_like;
use relock_locking::{CountingOracle, Key, LockSpec};
use relock_nn::{build_mlp, MlpSpec, Trainer};
use relock_tensor::rng::Prng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Prng::seed_from_u64(2024);

    // ---- The IP owner's side -------------------------------------------
    let task = mnist_like(&mut rng, 600, 200, 48);
    let spec = MlpSpec {
        input: 48,
        hidden: vec![32, 16],
        classes: 10,
    };
    let mut model = build_mlp(&spec, LockSpec::evenly(16), &mut rng)?;
    println!("victim: MLP {spec:?}");
    println!(
        "secret key ({} bits): {}",
        model.true_key().len(),
        model.true_key()
    );

    let summary = Trainer::default().fit(&mut model, &task, &mut rng);
    println!(
        "trained as a function of the key: test accuracy {:.1}%",
        100.0 * summary.final_test_accuracy
    );

    // A wrong key wrecks the model — that is the point of HPNN.
    let wrong = Key::random(16, &mut rng);
    println!(
        "accuracy under a random wrong key: {:.1}%",
        100.0 * model.accuracy_with(task.test.inputs(), task.test.labels(), &wrong)
    );

    // ---- The adversary's side ------------------------------------------
    // All they have: the white-box description + a working hardware oracle.
    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::default()).run(
        model.white_box(),
        &oracle,
        &mut Prng::seed_from_u64(7),
    )?;

    println!("\nextracted key:           {}", report.key);
    println!("true key:                {}", model.true_key());
    println!(
        "fidelity: {:.1}%   oracle queries: {}   accuracy under extracted key: {:.1}%",
        100.0 * report.fidelity(model.true_key()),
        report.queries,
        100.0 * model.accuracy_with(task.test.inputs(), task.test.labels(), &report.key)
    );
    println!("\ntime breakdown (paper Figure 3):");
    for p in Procedure::ALL {
        println!(
            "  {:<24}{:>7.3}s ({:>4.1}%)",
            p.to_string(),
            report.timing.of(p).as_secs_f64(),
            100.0 * report.timing.fraction(p)
        );
    }
    for layer in &report.layers {
        println!(
            "layer {}: {} bits — {} algebraic, {} learned, {} corrected",
            layer.keyed_node, layer.bits, layer.algebraic, layer.learned, layer.corrected
        );
    }
    assert_eq!(
        report.fidelity(model.true_key()),
        1.0,
        "attack must recover the exact key"
    );
    println!("\nHPNN-style logic locking on this DNN is broken: exact key recovered.");
    Ok(())
}
