//! Figure 2, in ASCII: the hyperplane geometry of a small ReLU network.
//!
//! ```text
//! cargo run --release --example hyperplanes
//! ```
//!
//! Trains a tiny 2-input network on the two-moons task, then renders the
//! input square, marking every point that sits next to a *bent hyperplane*
//! (a linear-region boundary). First-layer neurons induce straight lines;
//! second-layer neurons induce lines that bend where they cross first-layer
//! boundaries — exactly the geometry the attack exploits (paper §3.2).

use relock_data::two_moons;
use relock_graph::KeyAssignment;
use relock_locking::LockSpec;
use relock_nn::{build_mlp, MlpSpec, Trainer};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Prng::seed_from_u64(11);
    let task = two_moons(&mut rng, 400, 100, 0.08);
    let spec = MlpSpec {
        input: 2,
        hidden: vec![3, 3],
        classes: 2,
    };
    let mut model = build_mlp(&spec, LockSpec::none(), &mut rng)?;
    let summary = Trainer {
        lr: 1e-2,
        epochs: 60,
        batch_size: 16,
        ..Trainer::default()
    }
    .fit(&mut model, &task, &mut rng);
    println!(
        "two-moons victim trained: accuracy {:.1}%\n",
        100.0 * summary.final_test_accuracy
    );

    let g = model.white_box();
    let keys = KeyAssignment::all_zero_bits(0);

    // Identify the pre-activation nodes of both hidden layers.
    let pre_nodes: Vec<_> = g
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.op, relock_graph::Op::Relu))
        .map(|(i, _)| g.node(relock_graph::NodeId(i)).inputs[0])
        .collect();

    // Raster the input square and label each cell by its activation
    // pattern; boundaries are where the pattern changes.
    let (w, h) = (72usize, 36usize);
    let (lo, hi) = (-2.0f64, 3.0f64);
    let mut pattern = vec![0u32; w * h];
    for iy in 0..h {
        for ix in 0..w {
            let x = lo + (hi - lo) * ix as f64 / (w - 1) as f64;
            let y = hi - (hi - lo) * iy as f64 / (h - 1) as f64;
            let acts = g.forward_partial(
                &Tensor::from_slice(&[x, y]),
                &keys,
                *pre_nodes.last().expect("two layers"),
            );
            let mut code = 0u32;
            let mut bit = 0;
            for &pn in &pre_nodes {
                for &z in acts.value(pn).row(0) {
                    if z > 0.0 {
                        code |= 1 << bit;
                    }
                    bit += 1;
                }
            }
            pattern[iy * w + ix] = code;
        }
    }

    // Count distinct linear regions in view and render boundaries.
    let mut regions: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for &c in &pattern {
        regions.insert(c);
    }
    println!(
        "activation patterns visible in [{lo},{hi}]²: {} linear regions",
        regions.len()
    );
    println!("(boundary cells '│' are the bent hyperplanes of paper Fig. 2b)\n");
    for iy in 0..h {
        let mut line = String::with_capacity(w);
        for ix in 0..w {
            let here = pattern[iy * w + ix];
            let right = if ix + 1 < w {
                pattern[iy * w + ix + 1]
            } else {
                here
            };
            let below = if iy + 1 < h {
                pattern[(iy + 1) * w + ix]
            } else {
                here
            };
            line.push(if here != right || here != below {
                '│'
            } else {
                // Shade by region parity so regions are visible.
                if here.count_ones() % 2 == 0 {
                    ' '
                } else {
                    '·'
                }
            });
        }
        println!("{line}");
    }
    Ok(())
}
