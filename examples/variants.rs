//! §3.9 generality: attacking locking variants beyond the sign flip.
//!
//! ```text
//! cargo run --release --example variants
//! ```
//!
//! The paper argues (§3.9) that foreseeable variations of HPNN reduce to
//! the same attack:
//!
//! - **(a) multiplicative locking** — the key scales the pre-activation by
//!   a constant instead of negating it;
//! - **(b) weight-element locking** — the key flips the sign of individual
//!   weight matrix entries;
//! - **(c) channel locking** — key bits protect convolution channels.
//!
//! This example locks one victim with each variant and decrypts all three.

use relock_attack::{AttackConfig, Decryptor};
use relock_data::mnist_like;
use relock_locking::{CountingOracle, LockSpec};
use relock_nn::{build_lenet, build_mlp, build_mlp_weight_locked, LenetSpec, MlpSpec, Trainer};
use relock_tensor::rng::Prng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Prng::seed_from_u64(99);
    let task = mnist_like(&mut rng, 500, 150, 32);
    let spec = MlpSpec {
        input: 32,
        hidden: vec![24, 12],
        classes: 10,
    };

    // --- (a) multiplicative locking: ×0.25 when the bit is 1 -------------
    let mut scaled = build_mlp(&spec, LockSpec::scale(10, 0.25), &mut rng)?;
    Trainer::quick().fit(&mut scaled, &task, &mut rng);
    let oracle = CountingOracle::new(&scaled);
    let report = Decryptor::new(AttackConfig::default()).run(
        scaled.white_box(),
        &oracle,
        &mut Prng::seed_from_u64(1),
    )?;
    println!(
        "(a) multiplicative lock : fidelity {:.1}% in {} queries",
        100.0 * report.fidelity(scaled.true_key()),
        report.queries
    );

    // --- (b) weight-element locking --------------------------------------
    let mut welock = build_mlp_weight_locked(&spec, 10, &mut rng)?;
    Trainer::quick().fit(&mut welock, &task, &mut rng);
    let oracle = CountingOracle::new(&welock);
    let report = relock_attack::weight_lock_attack(
        welock.white_box(),
        &oracle,
        &AttackConfig::default(),
        &mut Prng::seed_from_u64(2),
    );
    println!(
        "(b) weight-element lock : fidelity {:.1}% in {} queries",
        100.0 * report.key.fidelity(welock.true_key()),
        report.queries
    );

    // --- (c) channel locking (LeNet convolutions) ------------------------
    let mut rng2 = Prng::seed_from_u64(100);
    let ctask = relock_data::cifar_like(&mut rng2, 400, 120, 1, 12, 12);
    let lspec = LenetSpec {
        in_channels: 1,
        h: 12,
        w: 12,
        c1: 6,
        c2: 10,
        fc1: 24,
        fc2: 16,
        classes: 10,
    };
    let mut conv = build_lenet(&lspec, LockSpec::evenly(12), &mut rng2)?;
    Trainer::quick().fit(&mut conv, &ctask, &mut rng2);
    let oracle = CountingOracle::new(&conv);
    let cfg = AttackConfig {
        continue_on_failure: true,
        ..AttackConfig::default()
    };
    let report = Decryptor::new(cfg).run(conv.white_box(), &oracle, &mut Prng::seed_from_u64(3))?;
    println!(
        "(c) conv-channel lock   : fidelity {:.1}% in {} queries",
        100.0 * report.fidelity(conv.true_key()),
        report.queries
    );

    Ok(())
}
