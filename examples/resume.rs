//! Kill-and-resume: crash the attack mid-run, then continue it from its
//! checkpoint and recover the exact same key.
//!
//! ```text
//! cargo run --release --example resume
//! ```
//!
//! A multi-hour attack against production hardware will get killed —
//! deploy restarts, OOM, a flaky oracle link. This example compresses that
//! story into seconds:
//!
//! 1. An uninterrupted **reference** run records the ground truth.
//! 2. The same attack runs with checkpointing against a `ChaosOracle`
//!    scheduled to crash (panic) partway through. The segment dies, the
//!    checkpoint file survives.
//! 3. `Decryptor::resume` loads the checkpoint, skips the finished
//!    layers, continues mid-layer, and produces a key **bit-identical**
//!    to the reference run.
//!
//! The same flags exist on the CLI: `relock attack victim.rlk
//! --checkpoint state.rlcp`, and after a crash `relock attack victim.rlk
//! --checkpoint state.rlcp --resume`.

use relock::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Prng::seed_from_u64(2024);
    let spec = MlpSpec {
        input: 16,
        hidden: vec![14, 10],
        classes: 4,
    };
    let model = build_mlp(&spec, LockSpec::evenly(12), &mut rng)?;
    println!("victim: MLP {spec:?}, {}-bit key", model.true_key().len());

    // ---- 1. Uninterrupted reference run --------------------------------
    let oracle = CountingOracle::new(&model);
    let decryptor = Decryptor::new(AttackConfig::fast());
    let reference = decryptor.run(model.white_box(), &oracle, &mut Prng::seed_from_u64(7))?;
    println!(
        "reference run : fidelity {:.0}%, {} oracle rows",
        100.0 * reference.fidelity(model.true_key()),
        reference.queries
    );

    // ---- 2. The same attack, killed partway through --------------------
    let ckpt_path = std::env::temp_dir().join("relock-resume-example.rlcp");
    let sink = FileCheckpointSink::new(&ckpt_path);
    // Crash once the backend has served half the reference traffic.
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig::crash_only(1, vec![reference.queries / 2]),
    );
    let broker = Broker::new(&chaos);
    // The scheduled crash is the point of the demo — keep its panic quiet.
    std::panic::set_hook(Box::new(|_| {}));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        decryptor.run_with_checkpoints(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(7),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
    }));
    let _ = std::panic::take_hook();
    let crash = crashed
        .expect_err("the chaos schedule guarantees a crash")
        .downcast::<ChaosCrash>()
        .expect("scheduled chaos crash");
    println!(
        "killed        : after {} oracle rows (checkpoint at {})",
        crash.at_rows,
        ckpt_path.display()
    );

    // ---- 3. Resume from the checkpoint ---------------------------------
    // A fresh broker, a fresh process in real life; the snapshot carries
    // the PRNG state, recovered bits, and accounting across the crash.
    let broker = Broker::new(&chaos);
    let (resumed, status) = decryptor.resume(
        model.white_box(),
        &broker,
        &mut Prng::seed_from_u64(7),
        &sink,
        CheckpointPolicy::EVERY_CUT,
    )?;
    match &status {
        ResumeStatus::Resumed { layer, phase } => {
            println!("resumed       : at layer {layer}, phase {phase}");
        }
        other => println!("resumed       : unexpected status {other:?}"),
    }
    println!(
        "resumed run   : fidelity {:.0}%, {} oracle rows total",
        100.0 * resumed.fidelity(model.true_key()),
        resumed.queries
    );

    assert_eq!(resumed.key, reference.key, "keys must be bit-identical");
    println!(
        "recovered key : {} (bit-identical to the reference)",
        resumed.key
    );

    std::fs::remove_file(&ckpt_path).ok();
    Ok(())
}
