//! Why fidelity matters: adversarial examples crafted on the *stolen*
//! model transfer to the victim hardware (paper §2.3: "The adversary can
//! also compromise a remote mission-critical system that uses the same
//! DNN model by launching an adversarial attack on the local model").
//!
//! ```text
//! cargo run --release --example adversarial_transfer
//! ```
//!
//! Pipeline: lock + train a victim → extract its key with the decryption
//! attack → craft FGSM adversarial examples *on the reconstructed local
//! model* → measure how often they fool the remote oracle.

use relock::prelude::*;
use relock::tensor::Tensor;

/// One FGSM step on the local (stolen) model: x ← x + ε·sign(∇ₓ loss).
fn fgsm(
    g: &relock::graph::Graph,
    keys: &relock::graph::KeyAssignment,
    x: &Tensor,
    label: usize,
    eps: f64,
) -> Tensor {
    let acts = g.forward(&x.reshape([1, x.numel()]), keys);
    let logits = acts.value(g.output_id());
    let q = logits.dims()[1];
    // Gradient of softmax cross-entropy at the logits.
    let probs = Tensor::from_slice(logits.row(0)).softmax();
    let mut grad = probs.clone();
    grad.as_mut_slice()[label] -= 1.0;
    let grad = grad.reshape([1, q]);
    let (_, input_grad) = g.backward_to_input(&acts, &grad, keys);
    let mut adv = x.clone();
    for (a, &gv) in adv.as_mut_slice().iter_mut().zip(input_grad.as_slice()) {
        *a += eps * gv.signum();
    }
    adv
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Prng::seed_from_u64(31);
    let task = mnist_like(&mut rng, 600, 300, 48);
    let mut model = build_mlp(
        &MlpSpec {
            input: 48,
            hidden: vec![32, 16],
            classes: 10,
        },
        LockSpec::evenly(16),
        &mut rng,
    )?;
    let summary = Trainer::default().fit(&mut model, &task, &mut rng);
    println!(
        "victim trained: clean test accuracy {:.1}%",
        100.0 * summary.final_test_accuracy
    );

    // The adversary extracts the key…
    let oracle = CountingOracle::new(&model);
    let report = Decryptor::new(AttackConfig::default()).run(
        model.white_box(),
        &oracle,
        &mut Prng::seed_from_u64(32),
    )?;
    println!(
        "key extracted with fidelity {:.1}% ({} queries)",
        100.0 * report.fidelity(model.true_key()),
        report.queries
    );

    // …reconstructs a local model, and crafts FGSM examples on it.
    let stolen_keys = report.key.to_assignment();
    let g = model.white_box();
    let eps = 0.8;
    let mut clean_correct = 0usize;
    let mut adv_correct = 0usize;
    let n = task.test.len();
    for i in 0..n {
        let (x_raw, label) = task.test.example(i);
        let x = Tensor::from_slice(x_raw);
        // Remote oracle's verdicts.
        if oracle.query(&x).argmax() == label {
            clean_correct += 1;
        }
        let adv = fgsm(g, &stolen_keys, &x, label, eps);
        if oracle.query(&adv).argmax() == label {
            adv_correct += 1;
        }
    }
    println!(
        "\nremote oracle accuracy:  clean {:.1}%  →  FGSM(ε={eps}) via stolen model {:.1}%",
        100.0 * clean_correct as f64 / n as f64,
        100.0 * adv_correct as f64 / n as f64
    );
    assert!(
        (adv_correct as f64) < 0.5 * clean_correct as f64,
        "adversarial examples should transfer"
    );
    println!("the extracted key turns white-box adversarial power against the hardware victim.");
    Ok(())
}
