#!/usr/bin/env bash
# The repo's verification gate — identical locally and in CI.
#
# The workspace has no registry dependencies, so every step below works
# fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Kill-and-resume soak with fixed seeds: crashes the attack three times
# via scheduled chaos panics and requires a bit-identical key on resume.
# (The chaos_soak/checkpoint_props test suites already ran above as part
# of the workspace tests; this exercises the release-built bench path.)
echo "==> chaos soak (kill-and-resume bench)"
cargo run -p relock-bench --release --bin soak -- mlp 12 42 43 3

echo "==> verify OK"
