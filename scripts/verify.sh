#!/usr/bin/env bash
# The repo's verification gate — identical locally and in CI.
#
# The workspace has no registry dependencies, so every step below works
# fully offline.
#
# Each step is tagged `# ci-job: <job-id>` with the ci.yml job that runs
# the same ground in CI; scripts/verify_parity.sh asserts the two sets
# stay in lockstep (every job mirrored here, every tag a real job).
set -euo pipefail
cd "$(dirname "$0")/.."

# ci-job: check
echo "==> cargo build --release"
cargo build --release

# ci-job: check
echo "==> cargo test -q"
cargo test --workspace -q

# Tidiness: scratch dirs must not creep back into the tree.
# ci-job: check
echo "==> tidiness (no stray scratch dirs)"
test ! -e examples_tmp

# CI ↔ local parity: every ci.yml job mirrored by a tagged step here.
# ci-job: check
echo "==> verify-parity (CI jobs <-> verify.sh steps)"
scripts/verify_parity.sh

# Thread matrix: AttackConfig::default() honours RELOCK_THREADS, so the
# same suites re-run with the sharded engine at 4 workers — bit-identical
# by contract — both under the harness's own test parallelism and
# serially (the serial pass isolates any cross-test interference).
# ci-job: test-matrix
echo "==> cargo test -q (RELOCK_THREADS=4)"
RELOCK_THREADS=4 cargo test --workspace -q

# ci-job: test-matrix
echo "==> cargo test -q (RELOCK_THREADS=4, --test-threads=1)"
RELOCK_THREADS=4 cargo test --workspace -q -- --test-threads=1

# Backend matrix: the gemm engine dispatches to scalar, auto-detected
# SIMD, or the portable fallback via RELOCK_BACKEND, and every backend is
# bit-identical by contract — the tensor kernel suite and the end-to-end
# attack equivalence suite must pass under each forced backend.
# ci-job: backend-matrix
for backend in scalar simd simd-portable; do
  echo "==> backend matrix (RELOCK_BACKEND=$backend)"
  RELOCK_BACKEND=$backend cargo test -q -p relock-tensor
  RELOCK_BACKEND=$backend cargo test -q -p relock-attack --test backend_equivalence
done

# ci-job: test-matrix
echo "==> cargo fmt --check"
cargo fmt --all -- --check

# ci-job: test-matrix
echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Kill-and-resume soak with fixed seeds: crashes the attack three times
# via scheduled chaos panics and requires a bit-identical key on resume.
# (The chaos_soak/checkpoint_props test suites already ran above as part
# of the workspace tests; this exercises the release-built bench path.)
# ci-job: chaos-soak
echo "==> chaos soak (kill-and-resume bench)"
cargo run -p relock-bench --release --bin soak -- mlp 12 42 43 3

# Multi-tenant campaign soak: 8 concurrent campaigns on one hub sharing
# a 256 KiB LRU cache (evictions expected), fair-share scheduling across
# two tenants, latency chaos on every oracle, and one pause →
# daemon-restart → resume migration mid-flight. Every recovered key must
# be bit-identical to its one-shot sequential reference.
# ci-job: campaign-soak
echo "==> campaign soak (multi-tenant daemon bench)"
cargo run -p relock-bench --release --bin campaign_soak -- 8 4 256

# Distributed soak: the multi-process attack (4 worker processes over a
# Unix socket) under process-level chaos — SIGKILL mid-wave, a stalled
# heartbeat, a truncated frame — must recover a key and query count
# bit-identical to the in-process reference, without tripping the
# circuit breaker.
# ci-job: dist-soak
echo "==> dist soak (multi-process attack bench)"
cargo run -p relock-bench --release --bin dist_soak -- 4 16 42 43

# Lock-variant × attack matrix: the differential conformance suite
# (decrypt cells across thread counts, sampling/oracle-less cells under
# seed replay, trigger property sweep) plus the measured 4×3 grid. The
# grid's key_acc medians and query counts are diffed exactly by the
# report step below.
# ci-job: variant-matrix
echo "==> variant matrix (locks × attacks conformance)"
cargo test -q -p relock-attack --test variant_matrix
RELOCK_THREADS=4 cargo test -q -p relock-attack --test variant_matrix
cargo test -q -p relock-locking --test trigger_props
cargo run -p relock-bench --release --bin matrix

# Trace-driven analysis gate: capture a seeded adaptive attack with the
# flight recorder, mine the capture with `report --analyze`, and demand
# the trace-side books reconcile *exactly* against the broker's own
# QueryStatsSnapshot — any accounting or schema drift fails.
# ci-job: adaptive-analyze
echo "==> adaptive analyze (flight-recorder accounting gate)"
analyze_dir=$(mktemp -d /tmp/relock-analyze.XXXXXX)
trap 'rm -rf "$analyze_dir"' EXIT
./target/release/relock lock --arch mlp --bits 16 \
  --out "$analyze_dir/victim.rlk" --seed 42 --no-train
./target/release/relock attack "$analyze_dir/victim.rlk" --fast --seed 43 \
  --adaptive --trace "$analyze_dir/trace.jsonl" \
  --stats-json "$analyze_dir/stats.json"
cargo run -p relock-bench --release --bin report -q -- \
  --analyze "$analyze_dir/trace.jsonl" \
  --stats "$analyze_dir/stats.json" \
  --out "$analyze_dir/ANALYZE.json"

# Unified bench report + benchdiff: fails on any query-count drift vs
# the committed baseline (deterministic); local timing only warns, like
# CI — gate on queries, not on this machine's clock.
# ci-job: perf-report
echo "==> bench report + benchdiff"
cargo run -p relock-bench --release --bin report -q -- \
  --out /tmp/relock-BENCH.json --repeats 1 \
  --diff BENCH_baseline.json --time-warn-only

echo "==> verify OK"
