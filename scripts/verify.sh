#!/usr/bin/env bash
# The repo's verification gate — identical locally and in CI.
#
# The workspace has no registry dependencies, so every step below works
# fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
