#!/usr/bin/env bash
# CI ↔ verify.sh parity gate.
#
# Every job in .github/workflows/ci.yml must have at least one step in
# scripts/verify.sh tagged `# ci-job: <job-id>`, and every tag must name
# a real CI job. This keeps the local gate and the CI matrix covering
# the same ground: a job added to CI without a local twin (or a local
# step whose CI job was renamed away) fails the build.
set -euo pipefail
cd "$(dirname "$0")/.."

workflow=.github/workflows/ci.yml
gate=scripts/verify.sh

# Top-level keys under `jobs:` sit at two-space indent; everything
# deeper (steps, matrix axes) is indented further.
ci_jobs=$(awk '
  /^jobs:/ { in_jobs = 1; next }
  in_jobs && /^[a-zA-Z]/ { in_jobs = 0 }
  in_jobs && /^  [a-zA-Z0-9_-]+:[[:space:]]*$/ {
    gsub(/^[[:space:]]+|:[[:space:]]*$/, ""); print
  }
' "$workflow" | sort -u)

verify_tags=$(grep -oE '# ci-job: [a-zA-Z0-9_-]+' "$gate" | sed 's/# ci-job: //' | sort -u)

[ -n "$ci_jobs" ] || { echo "FAIL: no jobs parsed from $workflow" >&2; exit 1; }
[ -n "$verify_tags" ] || { echo "FAIL: no '# ci-job:' tags found in $gate" >&2; exit 1; }

status=0
for job in $ci_jobs; do
  if ! grep -qx "$job" <<<"$verify_tags"; then
    echo "FAIL: CI job '$job' has no '# ci-job: $job' step in $gate" >&2
    status=1
  fi
done
for tag in $verify_tags; do
  if ! grep -qx "$tag" <<<"$ci_jobs"; then
    echo "FAIL: $gate tags '# ci-job: $tag' but $workflow has no such job" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "verify-parity OK: $(wc -w <<<"$ci_jobs") CI jobs all mirrored in $gate"
fi
exit "$status"
