//! # relock — a reproduction of "Evaluating the Security of Logic Locking on Deep Neural Networks" (DAC 2024)
//!
//! This facade crate re-exports the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! - [`tensor`] — dense `f64` tensors, QR least squares, deterministic PRNG;
//! - [`graph`] — the autodiff computation-graph NN framework;
//! - [`nn`] — the model zoo (MLP, LeNet, ResNet, ReLU-ViT) and the trainer;
//! - [`data`] — synthetic MNIST-like / CIFAR-like classification tasks;
//! - [`locking`] — the HPNN logic-locking scheme, its §3.9 variants, and the
//!   query-counting oracle;
//! - [`serve`] — the oracle query broker (batching, memoization, query
//!   budgets/deadlines, retries, serving metrics) that every attack routes
//!   its traffic through;
//! - [`attack`] — the paper's primary contribution: the DNN decryption
//!   algorithm (Algorithms 1–2), the monolithic learning baseline, and the
//!   weight-lock variant attack.
//!
//! ## Quickstart
//!
//! ```
//! use relock::prelude::*;
//!
//! // The IP owner locks an MLP with an 8-bit key…
//! let mut rng = Prng::seed_from_u64(1);
//! let spec = MlpSpec { input: 16, hidden: vec![12, 8], classes: 4 };
//! let model = build_mlp(&spec, LockSpec::evenly(8), &mut rng)?;
//!
//! // …and the adversary decrypts it through I/O queries alone.
//! let oracle = CountingOracle::new(&model);
//! let report = Decryptor::new(AttackConfig::fast())
//!     .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(2))?;
//! assert_eq!(report.fidelity(model.true_key()), 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! (See `examples/quickstart.rs` for a narrated end-to-end version with
//! training.)

pub use relock_attack as attack;
pub use relock_data as data;
pub use relock_graph as graph;
pub use relock_locking as locking;
pub use relock_nn as nn;
pub use relock_serve as serve;
pub use relock_tensor as tensor;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use relock_attack::{
        neuroevolution_key_search, sampling_key_search, weight_lock_attack, weight_stats_attack,
        AttackConfig, AttackState, CheckpointPolicy, CheckpointSink, DecryptionReport, Decryptor,
        EvolutionConfig, FileCheckpointSink, MemoryCheckpointSink, MonolithicAttack,
        MonolithicConfig, OracleLessReport, Procedure, ResumeStatus, SamplingConfig,
        SamplingReport,
    };
    pub use relock_data::{cifar_like, mnist_like, two_moons, Dataset};
    pub use relock_graph::{Graph, GraphBuilder, KeyAssignment, KeySlot, NodeId, Op};
    pub use relock_locking::{
        CountingOracle, Key, LockSpec, LockVariant, LockedModel, Oracle, OracleError,
    };
    pub use relock_nn::{
        build_lenet, build_mlp, build_mlp_weight_locked, build_resnet, build_vit, LenetSpec,
        MlpSpec, ResnetSpec, Trainer, VitSpec,
    };
    pub use relock_serve::{
        Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle, QueryStatsSnapshot, RetryPolicy,
    };
    pub use relock_tensor::{rng::Prng, Tensor};
}
