//! `relock` — command-line front end for the workspace.
//!
//! ```text
//! relock lock    --arch mlp --bits 16 --out victim.rlk [--seed N] [--no-train]
//!                [--variant sign|scale:<f>|sar|antisat] [--precision f64|f32]
//! relock inspect victim.rlk
//! relock attack  victim.rlk [--monolithic] [--seed N] [--fast] [--budget N]
//!                [--threads N] [--workers N] [--adaptive]
//!                [--trace events.jsonl] [--stats-json stats.json]
//!                [--variant sign|scale:<f>|sar|antisat]
//!                [--precision f64|f32] [--backend scalar|simd|simd-portable]
//!                [--checkpoint state.rlcp [--checkpoint-every N] [--resume]]
//! relock serve   [--listen tcp:127.0.0.1:7433] [--workers N] [--cache-mb N]
//!                [--max-campaigns N]
//! relock submit  victim.rlk [--listen A] [--tenant T] [--seed N] [--weight N]
//!                [--budget N] [--threads N] [--full] [--monolithic] [--adaptive]
//!                [--variant sign|scale:<f>|sar|antisat]
//! relock status  [id] [--listen A]
//! relock pause   <id> [--listen A]     relock resume <id> [--listen A]
//! relock cancel  <id> [--listen A]     relock shutdown [--listen A]
//! ```
//!
//! `lock` plays the IP owner: builds one of the four §4.2 victims, embeds
//! a random key, (optionally) trains the network as a function of that
//! key, and writes the model file. `attack` plays the adversary: it reads
//! the model file, treats the embedded key purely as the *hardware oracle*
//! (never looking at it except to score fidelity at the end), and runs the
//! DNN decryption attack or the monolithic baseline.
//!
//! `--variant` picks the locking scheme on both sides: `sign` (the paper's
//! multiplicative ±1 lock, default), `scale:<f>` (keyed scaling), and the
//! trigger schemes `sar`/`antisat` (SARLock/Anti-SAT analogues, wired for
//! the mlp and lenet victims). Trigger locks corrupt only a tiny input
//! subspace, so `attack` dispatches them to the sampling attack — a batch
//! of random probes plus a greedy bit-flip climb — instead of the per-site
//! decryption pipeline; see DESIGN.md §3h for why that sampling degrades.
//!
//! `attack --workers N` shards the per-site and per-candidate phases
//! across N local worker *processes* under the supervised coordinator of
//! `relock-dist` (DESIGN.md §4b): heartbeat-monitored workers are
//! respawned with seeded backoff when they die, and the result is
//! bit-identical to the single-process run. The coordinator respawns the
//! CLI itself with the hidden `dist-worker <socket>` subcommand.
//!
//! `serve` starts the resident campaign daemon; `submit`/`status`/`pause`/
//! `resume`/`cancel` speak its wire protocol (DESIGN.md §4). The daemon
//! hosts many concurrent campaigns over one shared query cache with
//! fair-share scheduling across tenants.
//!
//! `--backend` pins the gemm kernel backend for the whole process (same
//! values as the `RELOCK_BACKEND` env var; the flag wins). `--precision
//! f32` opts the *training* matrix products into single precision — the
//! monolithic attack's learning loop and `lock`'s trainer; the decryption
//! attack's algebraic core always runs f64.

use relock::prelude::*;
use relock_attack::LearningConfig;
use relock_campaign::{CampaignHub, Client, Request, ServerHandle};
use relock_trace::json::Value;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

/// Default daemon address shared by `serve` and every client subcommand.
const DEFAULT_LISTEN: &str = "tcp:127.0.0.1:7433";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  relock lock    --arch <mlp|lenet|resnet|vit> --bits <n> --out <file> [--seed <n>] [--no-train]\n                 [--variant <sign|scale:<f>|sar|antisat>] [--precision <f64|f32>]\n  relock inspect <file>\n  relock attack  <file> [--monolithic] [--seed <n>] [--fast] [--budget <n>] [--threads <n>]\n                 [--workers <n>] [--adaptive] [--trace <file>] [--stats-json <file>]\n                 [--variant <sign|scale:<f>|sar|antisat>]\n                 [--precision <f64|f32>] [--backend <scalar|simd|simd-portable>]\n                 [--checkpoint <file> [--checkpoint-every <rows>] [--resume]]\n  relock serve   [--listen <addr>] [--workers <n>] [--cache-mb <n>] [--max-campaigns <n>]\n  relock submit  <file> [--listen <addr>] [--tenant <name>] [--seed <n>] [--weight <n>]\n                 [--budget <n>] [--threads <n>] [--full] [--monolithic] [--adaptive]\n                 [--variant <sign|scale:<f>|sar|antisat>]\n  relock status  [id] [--listen <addr>]\n  relock pause   <id> [--listen <addr>]\n  relock resume  <id> [--listen <addr>]\n  relock cancel  <id> [--listen <addr>]\n  relock shutdown [--listen <addr>]\n\n  <addr> is tcp:HOST:PORT or a unix socket path (default {DEFAULT_LISTEN})\n  attack --workers <n> runs the sharded phases across <n> supervised worker processes\n  attack --adaptive tunes wave width and dispatch sharding online (bit-identical; DESIGN.md \u{a7}3i)\n  attack --stats-json <file> writes the final QueryStatsSnapshot for `report --analyze`\n  trigger variants (sar/antisat) run the sampling attack: no --workers/--checkpoint"
    );
    ExitCode::from(2)
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flag(name).and_then(|v| v.as_deref())
    }

    fn u64_value(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("--{name} expects a number")),
        }
    }
}

/// Parses `--variant <sign|scale:<factor>|sar|antisat>` (default sign).
fn variant_flag(args: &Args) -> Result<LockVariant, String> {
    match args.flag("variant") {
        None => Ok(LockVariant::Sign),
        Some(v) => {
            let name = v
                .as_deref()
                .ok_or("--variant expects sign, scale:<factor>, sar or antisat")?;
            name.parse::<LockVariant>()
                .map_err(|e| format!("--variant: {e}"))
        }
    }
}

/// Parses `--precision <f64|f32>` (default f64).
fn precision_flag(args: &Args) -> Result<relock_tensor::Precision, String> {
    match args.flag("precision") {
        None => Ok(relock_tensor::Precision::F64),
        Some(v) => {
            let name = v.as_deref().ok_or("--precision expects f64 or f32")?;
            relock_tensor::Precision::parse(name)
                .ok_or_else(|| format!("--precision: unknown precision '{name}' (f64|f32)"))
        }
    }
}

/// Applies `--backend <scalar|simd|simd-portable>` as a process-wide gemm
/// backend override (the CLI flag wins over the `RELOCK_BACKEND` env var).
fn apply_backend_flag(args: &Args) -> Result<(), String> {
    let Some(v) = args.flag("backend") else {
        return Ok(());
    };
    let name = v
        .as_deref()
        .ok_or("--backend expects scalar, simd or simd-portable")?;
    let kind = relock_tensor::BackendKind::parse(name).ok_or_else(|| {
        format!("--backend: unknown backend '{name}' (scalar|simd|simd-portable)")
    })?;
    relock_tensor::backend::set_backend_override(Some(kind));
    Ok(())
}

fn build_victim(
    arch: &str,
    bits: usize,
    variant: LockVariant,
    rng: &mut Prng,
) -> Result<(LockedModel, Dataset), String> {
    if variant.is_trigger() && !matches!(arch, "mlp" | "lenet") {
        return Err(format!(
            "trigger variants (sar/antisat) are wired for mlp and lenet, not '{arch}'"
        ));
    }
    let out = match arch {
        "mlp" => {
            let data = mnist_like(rng, 600, 200, 48);
            let m = build_mlp(
                &MlpSpec {
                    input: 48,
                    hidden: vec![32, 16],
                    classes: 10,
                },
                LockSpec::with_variant(bits, variant),
                rng,
            )
            .map_err(|e| e.to_string())?;
            (m, data)
        }
        "lenet" => {
            let data = cifar_like(rng, 400, 150, 1, 12, 12);
            let m = build_lenet(
                &LenetSpec {
                    in_channels: 1,
                    h: 12,
                    w: 12,
                    c1: 6,
                    c2: 10,
                    fc1: 24,
                    fc2: 16,
                    classes: 10,
                },
                LockSpec::with_variant(bits, variant),
                rng,
            )
            .map_err(|e| e.to_string())?;
            (m, data)
        }
        "resnet" => {
            let data = cifar_like(rng, 350, 120, 3, 12, 12);
            let m = build_resnet(
                &ResnetSpec {
                    in_channels: 3,
                    h: 12,
                    w: 12,
                    stem: 8,
                    stages: vec![
                        relock::nn::StageSpec {
                            channels: 8,
                            blocks: 1,
                            stride: 1,
                        },
                        relock::nn::StageSpec {
                            channels: 16,
                            blocks: 1,
                            stride: 2,
                        },
                    ],
                    classes: 10,
                },
                LockSpec::with_variant(bits, variant),
                rng,
            )
            .map_err(|e| e.to_string())?;
            (m, data)
        }
        "vit" => {
            let data = cifar_like(rng, 400, 150, 3, 8, 8);
            let m = build_vit(
                &VitSpec {
                    in_channels: 3,
                    h: 8,
                    w: 8,
                    patch: 4,
                    embed: 16,
                    heads: 2,
                    blocks: 2,
                    mlp_hidden: 32,
                    classes: 10,
                },
                LockSpec::with_variant(bits, variant),
                rng,
            )
            .map_err(|e| e.to_string())?;
            (m, data)
        }
        other => return Err(format!("unknown architecture '{other}'")),
    };
    Ok(out)
}

fn cmd_lock(args: &Args) -> Result<(), String> {
    let arch = args.value("arch").ok_or("--arch is required")?.to_string();
    let bits = args.u64_value("bits", 16)? as usize;
    let out_path = args.value("out").ok_or("--out is required")?.to_string();
    let seed = args.u64_value("seed", 42)?;
    let variant = variant_flag(args)?;
    let mut rng = Prng::seed_from_u64(seed);
    let (mut model, data) = build_victim(&arch, bits, variant, &mut rng)?;
    if args.flag("no-train").is_none() {
        let trainer = Trainer {
            precision: precision_flag(args)?,
            ..Trainer::default()
        };
        let summary = trainer.fit(&mut model, &data, &mut rng);
        println!(
            "trained {arch} ({bits}-bit key): test accuracy {:.1}%",
            100.0 * summary.final_test_accuracy
        );
    } else {
        println!("built untrained {arch} ({bits}-bit key)");
    }
    let file = File::create(&out_path).map_err(|e| e.to_string())?;
    let mut w = BufWriter::new(file);
    model.save(&mut w).map_err(|e| e.to_string())?;
    println!("wrote {out_path}");
    Ok(())
}

fn load_model(path: &str) -> Result<LockedModel, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut r = BufReader::new(file);
    LockedModel::load(&mut r).map_err(|e| e.to_string())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("inspect needs a model file")?;
    let model = load_model(path)?;
    let g = model.white_box();
    println!("model: {path}");
    println!("  input  : {} features", g.input_size());
    println!("  output : {} logits", g.output_size());
    println!("  nodes  : {}", g.nodes().len());
    println!("  params : {}", g.param_count());
    println!("  key    : {} bits", g.key_slot_count());
    let sites = g.lock_sites();
    let mut by_node: Vec<(NodeId, usize)> = Vec::new();
    for s in &sites {
        match by_node.last_mut() {
            Some((n, c)) if *n == s.keyed_node => *c += 1,
            _ => by_node.push((s.keyed_node, 1)),
        }
    }
    for (node, count) in by_node {
        println!(
            "  layer {node}: {count} protected unit(s), layout {:?}",
            sites
                .iter()
                .find(|s| s.keyed_node == node)
                .map(|s| (s.layout.n_units, s.layout.unit_len))
                .unwrap_or((0, 0))
        );
    }
    let wl = g.weight_lock_slots();
    if !wl.is_empty() {
        println!("  weight-element locks: {}", wl.len());
    }
    Ok(())
}

/// Wraps the attack with the flight recorder when `--trace <file>` is
/// given: every structured event of the run (layer/wave/worker spans,
/// broker per-scope counters, gemm and checkpoint counters) drains to the
/// file as JSONL, even when the attack itself fails.
fn cmd_attack(args: &Args) -> Result<(), String> {
    let trace_path = match args.flag("trace") {
        None => None,
        Some(Some(path)) => Some(path.clone()),
        Some(None) => return Err("--trace expects a file path".into()),
    };
    let Some(trace_path) = trace_path else {
        return run_attack(args);
    };
    let flight = std::sync::Arc::new(relock_trace::FlightRecorder::new());
    let result = relock_trace::with_recorder(flight.clone(), || run_attack(args));
    flight
        .write_jsonl(std::path::Path::new(&trace_path))
        .map_err(|e| format!("{trace_path}: {e}"))?;
    println!("wrote {} trace events to {trace_path}", flight.len());
    result
}

/// `--stats-json <file>`: persists the run's final [`QueryStatsSnapshot`]
/// as pretty JSON, the accounting sidecar `report --analyze` reconciles a
/// `--trace` capture against.
///
/// [`QueryStatsSnapshot`]: relock_attack::QueryStatsSnapshot
fn write_stats_json(path: &str, snap: &relock_attack::QueryStatsSnapshot) -> Result<(), String> {
    let text = snap.to_json_value().to_pretty() + "\n";
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote query accounting to {path}");
    Ok(())
}

fn run_attack(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("attack needs a model file")?;
    let seed = args.u64_value("seed", 7)?;
    let workers = args.u64_value("workers", 1)? as usize;
    if workers == 0 {
        return Err("--workers expects a count >= 1".into());
    }
    let stats_json = match args.flag("stats-json") {
        None => None,
        Some(Some(p)) => Some(p.clone()),
        Some(None) => return Err("--stats-json expects a file path".into()),
    };
    let model = load_model(path)?;
    let oracle = CountingOracle::new(&model);
    let mut rng = Prng::seed_from_u64(seed);
    let precision = precision_flag(args)?;
    if args.flag("monolithic").is_some() {
        if workers > 1 {
            return Err("--workers applies to the decryption attack, not --monolithic".into());
        }
        let report = MonolithicAttack::new(MonolithicConfig {
            learning: LearningConfig {
                samples: 300,
                precision,
                ..LearningConfig::default()
            },
            input_scale: 3.0,
        })
        .run(model.white_box(), &oracle, &mut rng);
        println!("monolithic learning attack:");
        println!("  extracted key: {}", report.key);
        println!(
            "  fidelity {:.1}%   queries {}   time {:.2}s",
            100.0 * report.key.fidelity(model.true_key()),
            report.queries,
            report.elapsed.as_secs_f64()
        );
        if let Some(p) = &stats_json {
            write_stats_json(p, &report.stats)?;
        }
        return Ok(());
    }
    let mut cfg = if args.flag("fast").is_some() {
        AttackConfig::fast()
    } else {
        AttackConfig::default()
    };
    cfg.continue_on_failure = true;
    // Only the learning sub-procedure honours the precision; the algebraic
    // core of the decryption attack always runs f64.
    cfg.learning.precision = precision;
    cfg.variant = variant_flag(args)?;
    cfg.adaptive = args.flag("adaptive").is_some();
    let threads = args.u64_value("threads", cfg.threads as u64)? as usize;
    if threads == 0 {
        return Err("--threads expects a count >= 1".into());
    }
    cfg.threads = threads;
    cfg.query_budget = match args.value("budget") {
        Some(s) => Some(s.parse().map_err(|_| "--budget expects a number")?),
        None => match args.flag("budget") {
            Some(_) => return Err("--budget expects a number".into()),
            None => None,
        },
    };
    let checkpoint = args.value("checkpoint").map(str::to_string);
    if checkpoint.is_none() {
        if args.flag("checkpoint").is_some() {
            return Err("--checkpoint expects a file path".into());
        }
        if args.flag("resume").is_some() || args.flag("checkpoint-every").is_some() {
            return Err("--resume/--checkpoint-every require --checkpoint <file>".into());
        }
    }
    let every = args.u64_value("checkpoint-every", 0)?;

    // Trigger locks (sar/antisat) defeat the per-site algebraic localisation
    // the decryption attack is built on, so they dispatch to the sampling
    // attack: one batch of random oracle probes and a greedy bit-flip climb
    // on output agreement. It runs as a single in-process segment.
    if cfg.variant.is_trigger() {
        if workers > 1 {
            return Err("--workers is not supported for trigger variants (sar/antisat)".into());
        }
        if checkpoint.is_some() {
            return Err("--checkpoint is not supported for trigger variants (sar/antisat)".into());
        }
        let broker = Broker::with_config(
            &oracle,
            BrokerConfig {
                max_queries: cfg.query_budget,
                ..BrokerConfig::default()
            },
        );
        let start = std::time::Instant::now();
        let report = sampling_key_search(
            model.white_box(),
            &broker,
            &SamplingConfig::from_attack(&cfg),
            &mut rng,
        );
        println!("sampling key search ({} lock):", cfg.variant);
        println!("  extracted key: {}", report.key);
        println!(
            "  fidelity {:.1}%   agreement {:.1}%   queries {}   time {:.2}s",
            100.0 * report.key.fidelity(model.true_key()),
            100.0 * report.agreement,
            report.queries,
            start.elapsed().as_secs_f64()
        );
        print!("{}", broker.stats().snapshot());
        if let Some(p) = &stats_json {
            write_stats_json(p, &broker.stats().snapshot())?;
        }
        return Ok(());
    }

    // With `--workers N` (N > 1) the sharded phases run across supervised
    // worker processes: the coordinator re-invokes this binary with the
    // hidden `dist-worker` subcommand and proxies all oracle traffic, so
    // the result is bit-identical to the single-process run.
    let coordinator = if workers > 1 {
        let program = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
        let absolute = std::fs::canonicalize(path).map_err(|e| format!("{path}: {e}"))?;
        let mut opts = relock_dist::DistOptions::new(program);
        opts.workers = workers;
        opts.worker_args = vec!["dist-worker".to_string()];
        Some(relock_dist::DistCoordinator::new(absolute, opts).map_err(|e| e.to_string())?)
    } else {
        None
    };

    let start = std::time::Instant::now();
    let decryptor = Decryptor::new(cfg);
    let broker = Broker::with_config(
        &oracle,
        BrokerConfig {
            max_queries: decryptor.config().query_budget,
            ..BrokerConfig::default()
        },
    );
    let report = match &checkpoint {
        None => match &coordinator {
            None => decryptor
                .run_brokered(model.white_box(), &broker, &mut rng)
                .map_err(|e| e.to_string())?,
            Some(coord) => decryptor
                .run_brokered_with(model.white_box(), &broker, &mut rng, coord)
                .map_err(|e| e.to_string())?,
        },
        Some(path) => {
            let sink = FileCheckpointSink::new(path);
            let policy = CheckpointPolicy::every_queries(every);
            if args.flag("resume").is_some() {
                let (report, status) = match &coordinator {
                    None => decryptor
                        .resume(model.white_box(), &broker, &mut rng, &sink, policy)
                        .map_err(|e| e.to_string())?,
                    Some(coord) => decryptor
                        .resume_with(model.white_box(), &broker, &mut rng, &sink, policy, coord)
                        .map_err(|e| e.to_string())?,
                };
                match &status {
                    ResumeStatus::Fresh => println!("no checkpoint at {path}; starting fresh"),
                    ResumeStatus::FellBack { reason } => {
                        println!("checkpoint unusable ({reason}); starting fresh");
                    }
                    ResumeStatus::Resumed { layer, phase } => {
                        println!("resumed from {path} at layer {layer} ({phase})");
                    }
                }
                report
            } else {
                match &coordinator {
                    None => decryptor
                        .run_with_checkpoints(model.white_box(), &broker, &mut rng, &sink, policy)
                        .map_err(|e| e.to_string())?,
                    Some(coord) => decryptor
                        .run_checkpointed_with(
                            model.white_box(),
                            &broker,
                            &mut rng,
                            &sink,
                            policy,
                            coord,
                        )
                        .map_err(|e| e.to_string())?,
                }
            }
        }
    };
    if let Some(coord) = &coordinator {
        let d = coord.report();
        match &d.fell_back {
            Some(reason) => println!(
                "distributed: {} workers, {} respawns, {} lease expiries — FELL BACK in-process ({reason})",
                d.workers, d.respawns, d.lease_expiries
            ),
            None => println!(
                "distributed: {} workers, {} respawns, {} lease expiries, {} rows proxied",
                d.workers, d.respawns, d.lease_expiries, d.routed_rows
            ),
        }
    }
    println!("DNN decryption attack:");
    println!("  extracted key: {}", report.key);
    println!(
        "  fidelity {:.1}%   queries {}   time {:.2}s   validated {}",
        100.0 * report.fidelity(model.true_key()),
        report.queries,
        start.elapsed().as_secs_f64(),
        report.fully_validated()
    );
    for p in Procedure::ALL {
        println!(
            "  {:<24}{:>8.3}s ({:>5.1}%)",
            p.to_string(),
            report.timing.of(p).as_secs_f64(),
            100.0 * report.timing.fraction(p)
        );
    }
    print!("{}", report.stats);
    if let Some(p) = &stats_json {
        write_stats_json(p, &report.stats)?;
    }
    Ok(())
}

/// Starts the resident campaign daemon and blocks until a client sends
/// `shutdown`.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let listen = args.value("listen").unwrap_or(DEFAULT_LISTEN).to_string();
    let workers = args.u64_value("workers", 4)? as usize;
    let cache_mb = args.u64_value("cache-mb", 64)?;
    let cap = if cache_mb == 0 {
        None
    } else {
        Some((cache_mb as usize) << 20)
    };
    let max_live = args.u64_value("max-campaigns", 64)? as usize;
    let hub = CampaignHub::with_admission_cap(workers, cap, Some(max_live));
    let server = ServerHandle::spawn(hub, &listen).map_err(|e| format!("{listen}: {e}"))?;
    match cap {
        Some(bytes) => println!(
            "campaign daemon on {} ({workers} slots, {} MiB shared cache)",
            server.addr(),
            bytes >> 20
        ),
        None => println!(
            "campaign daemon on {} ({workers} slots, unbounded shared cache)",
            server.addr()
        ),
    }
    server.join();
    println!("campaign daemon stopped");
    Ok(())
}

fn connect(args: &Args) -> Result<Client, String> {
    let addr = args.value("listen").unwrap_or(DEFAULT_LISTEN);
    Client::connect(addr).map_err(|e| format!("{addr}: {e} (is `relock serve` running?)"))
}

fn positional_id(args: &Args, what: &str) -> Result<u64, String> {
    args.positional
        .first()
        .ok_or(format!("{what} needs a campaign id"))?
        .parse()
        .map_err(|_| "campaign ids are numbers".to_string())
}

fn print_campaign(c: &Value) {
    let field_str = |k: &str| c.get(k).and_then(Value::as_str).unwrap_or("-").to_string();
    let field_u64 = |k: &str| c.get(k).and_then(Value::as_u64).unwrap_or(0);
    println!(
        "campaign {} [{}]  tenant {}  queries {}  hits {}  layer {} ({})  segments {}",
        field_u64("id"),
        field_str("state"),
        field_str("tenant"),
        field_u64("queries"),
        field_u64("cache_hits"),
        field_u64("layer"),
        field_str("phase"),
        field_u64("segments"),
    );
    if let Some(key) = c.get("key").and_then(Value::as_str) {
        println!(
            "  key: {key}  validated: {}",
            c.get("validated").and_then(Value::as_bool).unwrap_or(false)
        );
    }
    if let Some(error) = c.get("error").and_then(Value::as_str) {
        println!("  error: {error}");
    }
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("submit needs a model file")?;
    let absolute = std::fs::canonicalize(path).map_err(|e| format!("{path}: {e}"))?;
    let mut client = connect(args)?;
    let response = client.call_ok(&Request::Submit {
        model_path: absolute.display().to_string(),
        tenant: args.value("tenant").unwrap_or("default").to_string(),
        seed: args.u64_value("seed", 7)?,
        weight: args.u64_value("weight", 1)?,
        budget: match args.value("budget") {
            Some(s) => Some(s.parse().map_err(|_| "--budget expects a number")?),
            None => None,
        },
        threads: args.u64_value("threads", 1)?,
        fast: args.flag("full").is_none(),
        monolithic: args.flag("monolithic").is_some(),
        variant: variant_flag(args)?.to_string(),
        adaptive: args.flag("adaptive").is_some(),
        checkpoint: None,
    })?;
    let id = response.get("id").and_then(Value::as_u64).unwrap_or(0);
    println!("submitted campaign {id}");
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    match args.positional.first() {
        Some(raw) => {
            let id = raw.parse().map_err(|_| "campaign ids are numbers")?;
            let response = client.call_ok(&Request::Status { id })?;
            let campaign = response
                .get("campaign")
                .ok_or("malformed status response")?;
            print_campaign(campaign);
        }
        None => {
            let response = client.call_ok(&Request::List)?;
            let campaigns = response
                .get("campaigns")
                .and_then(Value::as_arr)
                .ok_or("malformed list response")?;
            if campaigns.is_empty() {
                println!("no campaigns");
            }
            for c in campaigns {
                print_campaign(c);
            }
            let stats = client.call_ok(&Request::Stats)?;
            if let Some(cache) = stats.get("cache") {
                println!(
                    "shared cache: {} rows / {} B resident, {} evicted",
                    cache.get("rows").and_then(Value::as_u64).unwrap_or(0),
                    cache.get("bytes").and_then(Value::as_u64).unwrap_or(0),
                    cache.get("evicted").and_then(Value::as_u64).unwrap_or(0),
                );
            }
        }
    }
    Ok(())
}

fn cmd_lifecycle(args: &Args, verb: &str) -> Result<(), String> {
    let id = positional_id(args, verb)?;
    let request = match verb {
        "pause" => Request::Pause { id },
        "resume" => Request::Resume { id },
        _ => Request::Cancel { id },
    };
    connect(args)?.call_ok(&request)?;
    println!("{verb} acknowledged for campaign {id}");
    Ok(())
}

fn cmd_shutdown(args: &Args) -> Result<(), String> {
    connect(args)?.call_ok(&Request::Shutdown)?;
    println!("daemon shutting down");
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    // Hidden: the coordinator of `attack --workers N` respawns this
    // binary as `relock dist-worker <socket>` for each worker process.
    if cmd == "dist-worker" {
        return match raw.get(1) {
            Some(socket) => match relock_dist::worker_main(socket) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("dist-worker: {e}");
                    ExitCode::FAILURE
                }
            },
            None => usage(),
        };
    }
    let args = Args::parse(&raw[1..]);
    if let Err(msg) = apply_backend_flag(&args) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    let result = match cmd.as_str() {
        "lock" => cmd_lock(&args),
        "inspect" => cmd_inspect(&args),
        "attack" => cmd_attack(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "status" => cmd_status(&args),
        "pause" | "resume" | "cancel" => cmd_lifecycle(&args, cmd.as_str()),
        "shutdown" => cmd_shutdown(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
