//! Broker transparency properties: a broker must be observationally
//! equivalent to the bare oracle (bit-identical logits) while never issuing
//! more underlying queries than an uncached client would.

use relock_locking::{CountingOracle, LockSpec, Oracle, OracleError, UnreliableOracle};
use relock_nn::{build_mlp, MlpSpec};
use relock_serve::{Broker, BrokerConfig, RetryPolicy};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

fn locked_oracle(seed: u64) -> CountingOracle {
    let mut rng = Prng::seed_from_u64(seed);
    let model = build_mlp(
        &MlpSpec {
            input: 6,
            hidden: vec![9],
            classes: 4,
        },
        LockSpec::evenly(5),
        &mut rng,
    )
    .unwrap();
    CountingOracle::new(&model)
}

/// Randomized workloads with repeats: brokered responses are bit-identical
/// to the bare oracle's, and the broker never issues more underlying
/// queries than the uncached client.
#[test]
fn broker_is_observationally_equivalent_and_never_wasteful() {
    for case in 0..12u64 {
        let reference = locked_oracle(60 + case);
        let backend = locked_oracle(60 + case);
        let broker = Broker::new(&backend);
        let mut rng = Prng::seed_from_u64(600 + case);
        let mut uncached_rows = 0u64;
        // A workload mixing fresh batches, exact repeats, and single rows.
        let mut history: Vec<Tensor> = Vec::new();
        for step in 0..20 {
            let x = if !history.is_empty() && rng.flip() {
                history[rng.below(history.len())].clone()
            } else {
                let rows = 1 + rng.below(6);
                rng.normal_tensor([rows, 6])
            };
            uncached_rows += x.dims()[0] as u64;
            let expect = reference.query_batch(&x);
            let got = broker.query_batch(&x);
            assert_eq!(
                expect.as_slice(),
                got.as_slice(),
                "case {case} step {step}: brokered logits must be bit-identical"
            );
            history.push(x);
        }
        assert!(
            broker.query_count() <= uncached_rows,
            "case {case}: broker issued {} underlying queries for {} uncached rows",
            broker.query_count(),
            uncached_rows
        );
        assert_eq!(backend.query_count(), broker.query_count());
        let snap = broker.snapshot();
        assert_eq!(snap.requested, uncached_rows);
        assert_eq!(snap.underlying + snap.cache_hits, snap.requested);
    }
}

/// The worker pool preserves row order and bit-exactness.
#[test]
fn multi_worker_broker_matches_single_worker() {
    let reference = locked_oracle(70);
    let backend = locked_oracle(70);
    let broker = Broker::with_config(
        &backend,
        BrokerConfig {
            workers: 4,
            min_rows_per_shard: 4,
            ..BrokerConfig::default()
        },
    );
    let mut rng = Prng::seed_from_u64(700);
    let x = rng.normal_tensor([61, 6]);
    let expect = reference.query_batch(&x);
    let got = broker.query_batch(&x);
    assert_eq!(expect.as_slice(), got.as_slice());
    assert_eq!(backend.query_count(), 61);
}

/// Budget exhaustion is a typed error, charges nothing, and cached rows
/// keep answering afterwards.
#[test]
fn exhausted_budget_is_typed_and_cache_survives() {
    let backend = locked_oracle(71);
    let broker = Broker::with_config(
        &backend,
        BrokerConfig {
            max_queries: Some(5),
            ..BrokerConfig::default()
        },
    );
    let mut rng = Prng::seed_from_u64(710);
    let warm = rng.normal_tensor([5, 6]);
    broker.try_query_batch(&warm).unwrap();
    let err = broker
        .try_query_batch(&rng.normal_tensor([2, 6]))
        .unwrap_err();
    assert_eq!(
        err,
        OracleError::BudgetExhausted {
            spent: 5,
            budget: 5,
            requested: 2
        }
    );
    assert_eq!(backend.query_count(), 5, "refused batch reached no backend");
    // Cache hits are free: the warm batch still answers with zero budget.
    let again = broker.try_query_batch(&warm).unwrap();
    assert_eq!(again.dims(), [5, 4]);
    assert_eq!(broker.remaining_budget(), Some(0));
}

/// Retries mask a flaky transport: with enough attempts the broker yields
/// bit-exact answers and records the retry count.
#[test]
fn retries_mask_flaky_transport() {
    let reference = locked_oracle(72);
    let flaky = UnreliableOracle::new(locked_oracle(72), 0.4, 720);
    let broker = Broker::with_config(
        &flaky,
        BrokerConfig {
            retry: RetryPolicy {
                max_attempts: 50,
                base_backoff: std::time::Duration::ZERO,
                multiplier: 1,
                ..RetryPolicy::default()
            },
            ..BrokerConfig::default()
        },
    );
    let mut rng = Prng::seed_from_u64(721);
    for _ in 0..10 {
        let x = rng.normal_tensor([3, 6]);
        let expect = reference.query_batch(&x);
        let got = broker.try_query_batch(&x).expect("retries should recover");
        assert_eq!(expect.as_slice(), got.as_slice());
    }
    assert!(
        broker.snapshot().retries > 0,
        "a 40% failure rate over 10 batches should have triggered retries"
    );
}
