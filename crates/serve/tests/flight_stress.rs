//! Concurrency stress for the single-flight layer: many threads race
//! identical *and* distinct keys through one broker while scheduled chaos
//! crashes kill leaders mid-dispatch. The panicking leader's `FlightGuard`
//! drop must release its waiters, the waiters must re-take the flight, and
//! after the storm the accounting books must balance exactly
//! (`is_balanced`): every requested row was served from cache or by the
//! backend, none lost, none double-counted.

use relock_locking::Oracle;
use relock_serve::{Broker, ChaosConfig, ChaosCrash, ChaosOracle};
use relock_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic backend: row `[a, b]` answers `[a + 2 b]`.
#[derive(Debug, Default)]
struct AffineOracle {
    rows: AtomicU64,
}

impl relock_locking::Oracle for AffineOracle {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        let rows = x.dims()[0];
        self.rows.fetch_add(rows as u64, Ordering::SeqCst);
        let out: Vec<f64> = (0..rows)
            .map(|r| x.get2(r, 0) + 2.0 * x.get2(r, 1))
            .collect();
        Tensor::from_vec(out, [rows, 1])
    }

    fn query_count(&self) -> u64 {
        self.rows.load(Ordering::SeqCst)
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn output_dim(&self) -> usize {
        1
    }
}

/// Silences the default panic report for scheduled `ChaosCrash` panics so
/// the stress run doesn't spam the test log; every other panic still
/// reports normally.
fn silence_chaos_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<ChaosCrash>().is_none() {
            previous(info);
        }
    }));
}

#[test]
fn racing_threads_with_panicking_leaders_stay_balanced() {
    silence_chaos_panics();
    let chaos = ChaosOracle::new(
        AffineOracle::default(),
        // Leaders die when cumulative served rows cross these marks; each
        // crash point fires once, then the next takes over.
        ChaosConfig::crash_only(4242, vec![2, 5, 9, 14, 20, 27]),
    );
    let broker = Broker::new(&chaos);

    // 4 hot rows raced by everyone + 4 distinct rows per thread.
    let hot: Vec<Tensor> = (0..4)
        .map(|i| Tensor::from_vec(vec![i as f64, 0.5], [1, 2]))
        .collect();
    let threads = 8;
    let iters = 12;
    let crashes = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let broker = &broker;
            let hot = &hot;
            let crashes = &crashes;
            scope.spawn(move || {
                for i in 0..iters {
                    let cold = Tensor::from_vec(vec![100.0 + t as f64, i as f64], [1, 2]);
                    for x in hot.iter().chain(std::iter::once(&cold)) {
                        // A crashed leader unwinds through the broker; the
                        // row is simply retried — like a fresh client call.
                        loop {
                            let done = catch_unwind(AssertUnwindSafe(|| {
                                let y = broker.query_batch(x);
                                let want = x.get2(0, 0) + 2.0 * x.get2(0, 1);
                                assert_eq!(y.get2(0, 0), want, "bit-exact response");
                            }));
                            match done {
                                Ok(()) => break,
                                Err(payload) => {
                                    assert!(
                                        payload.downcast_ref::<ChaosCrash>().is_some(),
                                        "only scheduled crashes may escape"
                                    );
                                    crashes.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    assert!(
        crashes.load(Ordering::SeqCst) > 0,
        "the schedule must actually have killed leaders mid-flight"
    );
    let snap = broker.snapshot();
    let distinct = 4 + threads as u64 * iters as u64;
    assert!(snap.is_balanced(), "books must balance: {snap:?}");
    assert!(
        snap.underlying >= distinct,
        "every distinct row was dispatched at least once"
    );
    assert!(
        snap.cache_hits > 0,
        "hot rows must have been served from cache or coalesced flights"
    );
    // After the storm every hot key must be immediately servable from
    // cache — no stuck flights, no new dispatches.
    let underlying_before = snap.underlying;
    for x in &hot {
        broker.query_batch(x);
    }
    assert_eq!(
        broker.snapshot().underlying,
        underlying_before,
        "post-storm re-probes are pure cache hits"
    );
}

#[test]
fn mass_identical_claims_with_leader_death_converge() {
    silence_chaos_panics();
    // One single hot key, 16 threads, leaders crash at low row marks: the
    // flight must be handed over until a leader survives, with waiter
    // accounting staying balanced and exactly bit-identical responses.
    let chaos = ChaosOracle::new(AffineOracle::default(), ChaosConfig::crash_only(7, vec![0]));
    let broker = Broker::new(&chaos);
    let x = Tensor::from_vec(vec![3.0, -1.0], [1, 2]);
    let crashes = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let broker = &broker;
            let x = &x;
            let crashes = &crashes;
            scope.spawn(move || loop {
                let done = catch_unwind(AssertUnwindSafe(|| {
                    let y = broker.query_batch(x);
                    assert_eq!(y.get2(0, 0), 1.0);
                }));
                match done {
                    Ok(()) => break,
                    Err(payload) => {
                        assert!(payload.downcast_ref::<ChaosCrash>().is_some());
                        crashes.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert_eq!(
        crashes.load(Ordering::SeqCst),
        1,
        "exactly one scheduled death"
    );
    let snap = broker.snapshot();
    assert!(snap.is_balanced(), "books must balance: {snap:?}");
    assert_eq!(snap.underlying, 1, "one surviving dispatch serves everyone");
    assert_eq!(
        snap.requested,
        snap.cache_hits + 1,
        "all other calls were hits (cache or coalesced flight)"
    );
}
