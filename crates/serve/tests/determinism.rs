//! Determinism regression tests for the fault-injection stack: an
//! `UnreliableOracle` seeded identically must drop the *same* requests in
//! the same order, and a broker retrying through it must therefore pay the
//! same number of retries. The checkpoint/resume machinery in
//! `relock-attack` leans on exactly this property — a resumed segment can
//! only be bit-identical when the fault sequence replays.

use relock_locking::{CountingOracle, LockSpec, Oracle, UnreliableOracle};
use relock_nn::{build_mlp, MlpSpec};
use relock_serve::{Broker, BrokerConfig, RetryPolicy};
use relock_tensor::rng::Prng;
use std::time::Duration;

fn locked_oracle(seed: u64) -> CountingOracle {
    let mut rng = Prng::seed_from_u64(seed);
    let model = build_mlp(
        &MlpSpec {
            input: 6,
            hidden: vec![9],
            classes: 4,
        },
        LockSpec::evenly(5),
        &mut rng,
    )
    .unwrap();
    CountingOracle::new(&model)
}

/// An instant-retry policy so the test never sleeps.
fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        multiplier: 1,
        ..RetryPolicy::default()
    }
}

#[test]
fn unreliable_oracle_fault_sequence_is_seed_deterministic() {
    let run = |seed: u64| -> Vec<bool> {
        let oracle = UnreliableOracle::new(locked_oracle(90), 0.4, seed);
        let mut rng = Prng::seed_from_u64(91);
        (0..64)
            .map(|_| oracle.try_query_batch(&rng.normal_tensor([1, 6])).is_ok())
            .collect()
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a, b, "same seed must replay the same drop pattern");
    assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));

    let c = run(18);
    assert_ne!(a, c, "different seeds should not share a drop pattern");
}

#[test]
fn brokered_retries_are_seed_deterministic() {
    let run = |seed: u64| -> (u64, u64, Vec<f64>) {
        let oracle = UnreliableOracle::new(locked_oracle(92), 0.3, seed);
        let broker = Broker::with_config(
            &oracle,
            BrokerConfig {
                retry: fast_retry(16),
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(93);
        let mut outputs = Vec::new();
        for _ in 0..32 {
            let y = broker.query_batch(&rng.normal_tensor([1, 6]));
            outputs.extend_from_slice(y.as_slice());
        }
        let snap = broker.snapshot();
        (snap.retries, snap.underlying, outputs)
    };
    let (retries_a, underlying_a, out_a) = run(23);
    let (retries_b, underlying_b, out_b) = run(23);
    assert_eq!(retries_a, retries_b, "retry count must be seed-stable");
    assert_eq!(underlying_a, underlying_b);
    assert_eq!(out_a, out_b, "responses must be bit-identical");
    assert!(
        retries_a > 0,
        "a 30% drop rate over 32 queries should retry"
    );
}

#[test]
fn retry_policy_never_changes_successful_responses() {
    // Retries only resubmit; they must not perturb the values returned.
    let clean = locked_oracle(94);
    let flaky = UnreliableOracle::new(locked_oracle(94), 0.35, 5);
    let broker = Broker::with_config(
        &flaky,
        BrokerConfig {
            retry: fast_retry(32),
            ..BrokerConfig::default()
        },
    );
    let mut rng = Prng::seed_from_u64(95);
    for _ in 0..16 {
        let x = rng.normal_tensor([2, 6]);
        let expect = clean.query_batch(&x);
        let got = broker.query_batch(&x);
        assert_eq!(expect.as_slice(), got.as_slice());
    }
}
