//! Content-addressed memoization of oracle responses.
//!
//! The attack re-queries the same inputs heavily: validation's two-scale
//! kink test probes `x ± δu` and `x ± (δ/2)u` around the same witness for
//! several directions (re-reading `O(x)` each time), and error correction
//! re-validates many candidates against the same witness set. Keys are the
//! *bit-exact* `f64` input bytes, so a cache hit is guaranteed to be the
//! response the hardware would have produced — no tolerance, no false
//! sharing between nearby probes (`x + δu` and `x + (δ/2)u` differ in bits
//! and get distinct entries).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked shards; a power of two so the shard
/// index is a cheap mask. Sharding keeps the worker pool's insertions from
/// serializing on one lock.
const SHARDS: usize = 16;

/// Bit-exact row key: the `f64::to_bits` image of one input row.
pub(crate) type RowKey = Box<[u64]>;

/// Builds the cache key of one input row.
pub(crate) fn row_key(row: &[f64]) -> RowKey {
    row.iter().map(|v| v.to_bits()).collect()
}

fn shard_of(key: &RowKey) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// A sharded map from input-row bytes to the oracle's output row.
#[derive(Debug)]
pub(crate) struct MemoCache {
    shards: Vec<Mutex<HashMap<RowKey, Box<[f64]>>>>,
}

impl MemoCache {
    pub(crate) fn new() -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Looks up one row.
    pub(crate) fn get(&self, key: &RowKey) -> Option<Box<[f64]>> {
        self.shards[shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts one row's response.
    pub(crate) fn insert(&self, key: RowKey, value: Box<[f64]>) {
        self.shards[shard_of(&key)]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Total memoized rows across shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_exact_keys_distinguish_close_probes() {
        let cache = MemoCache::new();
        let x = [0.1, 0.2];
        let x_eps = [0.1 + 1e-16, 0.2];
        assert_ne!(row_key(&x), row_key(&x_eps), "1 ulp apart ⇒ distinct keys");
        cache.insert(row_key(&x), vec![1.0].into());
        assert!(cache.get(&row_key(&x)).is_some());
        assert!(cache.get(&row_key(&x_eps)).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn negative_zero_is_not_positive_zero() {
        // to_bits distinguishes ±0.0 — deliberate: the hardware sees
        // different input words on the wire.
        assert_ne!(row_key(&[0.0]), row_key(&[-0.0]));
    }
}
