//! Content-addressed memoization of oracle responses.
//!
//! The attack re-queries the same inputs heavily: validation's two-scale
//! kink test probes `x ± δu` and `x ± (δ/2)u` around the same witness for
//! several directions (re-reading `O(x)` each time), and error correction
//! re-validates many candidates against the same witness set. Keys are the
//! *bit-exact* `f64` input bytes, so a cache hit is guaranteed to be the
//! response the hardware would have produced — no tolerance, no false
//! sharing between nearby probes (`x + δu` and `x + (δ/2)u` differ in bits
//! and get distinct entries).
//!
//! For a one-shot attack the table is unbounded: the attack's working set
//! fits in memory and every hit is free budget. A long-lived process (the
//! campaign daemon) instead constructs the cache with a byte cap; each
//! shard then tracks recency and evicts least-recently-used rows once its
//! slice of the cap overflows. Eviction only ever costs extra underlying
//! queries — a missing row is re-dispatched, never mis-served — so the cap
//! trades memory for `#Q` without touching correctness.

use crate::flight::FlightTable;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards; a power of two so the shard
/// index is a cheap mask. Sharding keeps the worker pool's insertions from
/// serializing on one lock.
const SHARDS: usize = 16;

/// Fixed per-entry bookkeeping estimate (map nodes, recency index, `Box`
/// headers) added to the payload bytes when charging an entry against the
/// byte cap.
const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Bit-exact row key: the `f64::to_bits` image of one input row, optionally
/// prefixed with a namespace word (see [`row_key_ns`]).
pub(crate) type RowKey = Box<[u64]>;

/// Builds the cache key of one input row.
pub(crate) fn row_key(row: &[f64]) -> RowKey {
    row.iter().map(|v| v.to_bits()).collect()
}

/// Builds the cache key of one input row under an optional namespace.
///
/// A process-global cache is shared by brokers fronting *different* models;
/// identical input bytes then produce different outputs per model, so each
/// broker prepends its namespace word (derived from the model content) to
/// every key. `None` (private brokers) produces exactly the historical key
/// bytes.
pub(crate) fn row_key_ns(ns: Option<u64>, row: &[f64]) -> RowKey {
    match ns {
        None => row_key(row),
        Some(ns) => std::iter::once(ns)
            .chain(row.iter().map(|v| v.to_bits()))
            .collect(),
    }
}

fn shard_of(key: &RowKey) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

fn entry_bytes(key: &RowKey, value: &[f64]) -> usize {
    (key.len() + value.len()) * 8 + ENTRY_OVERHEAD_BYTES
}

/// One shard: the map plus an LRU recency index. `tick` is a shard-local
/// monotone counter; `order` maps tick → key so the least-recently-used
/// entry is always `order`'s first element. Only populated (and paid for)
/// when the cache is bounded.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<RowKey, ShardEntry>,
    order: BTreeMap<u64, RowKey>,
    bytes: usize,
    tick: u64,
}

#[derive(Debug)]
struct ShardEntry {
    value: Box<[f64]>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &RowKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(key) {
            self.order.remove(&entry.tick);
            entry.tick = tick;
            self.order.insert(tick, key.clone());
        }
    }
}

/// A sharded map from input-row bytes to the oracle's output row, with
/// optional byte-capped LRU eviction.
#[derive(Debug)]
pub(crate) struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte cap (`None` = unbounded).
    shard_cap: Option<usize>,
    evicted: AtomicU64,
}

impl MemoCache {
    /// An unbounded cache — the historical per-attack behaviour.
    pub(crate) fn new() -> Self {
        MemoCache::with_cap(None)
    }

    /// A cache that holds at most ~`byte_cap` bytes of entries (keys,
    /// values, and a fixed per-entry overhead estimate), evicting
    /// least-recently-used rows on overflow. The cap is split evenly across
    /// shards, so a pathological key distribution can evict slightly early.
    pub(crate) fn bounded(byte_cap: usize) -> Self {
        MemoCache::with_cap(Some(byte_cap.div_ceil(SHARDS).max(1)))
    }

    fn with_cap(shard_cap: Option<usize>) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap,
            evicted: AtomicU64::new(0),
        }
    }

    /// Looks up one row, refreshing its recency.
    pub(crate) fn get(&self, key: &RowKey) -> Option<Box<[f64]>> {
        let mut shard = self.shards[shard_of(key)]
            .lock()
            .expect("cache shard poisoned");
        let hit = shard.map.get(key).map(|e| e.value.clone());
        if hit.is_some() && self.shard_cap.is_some() {
            shard.touch(key);
        }
        hit
    }

    /// Inserts one row's response, evicting LRU entries if the shard's
    /// slice of the byte cap overflows. The just-inserted row is never
    /// evicted by its own insertion: single-flight waiters re-read the
    /// cache right after the owner publishes, and evicting the publication
    /// out from under them would turn every waiter into a redundant
    /// dispatch.
    pub(crate) fn insert(&self, key: RowKey, value: Box<[f64]>) {
        let shard_ix = shard_of(&key);
        let mut shard = self.shards[shard_ix].lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let key_words = key.len();
        let added = entry_bytes(&key, &value);
        // The recency index (and its key clones) is only paid for when a
        // byte cap can actually trigger eviction.
        let order_key = if self.shard_cap.is_some() {
            Some(key.clone())
        } else {
            None
        };
        if let Some(old) = shard.map.insert(key, ShardEntry { value, tick }) {
            shard.order.remove(&old.tick);
            shard.bytes -= (key_words + old.value.len()) * 8 + ENTRY_OVERHEAD_BYTES;
        }
        if let Some(order_key) = order_key {
            shard.order.insert(tick, order_key);
        }
        shard.bytes += added;

        let Some(cap) = self.shard_cap else { return };
        let mut evicted = 0u64;
        while shard.bytes > cap && shard.map.len() > 1 {
            let (&oldest_tick, _) = shard.order.iter().next().expect("order matches map");
            let oldest_key = shard.order.remove(&oldest_tick).expect("present");
            let entry = shard.map.remove(&oldest_key).expect("order matches map");
            shard.bytes -= entry_bytes(&oldest_key, &entry.value);
            evicted += 1;
        }
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
            relock_trace::counter("broker.cache_evicted", evicted);
        }
    }

    /// Total memoized rows across shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Estimated resident bytes across shards (entries plus per-entry
    /// overhead; the number the byte cap is enforced against).
    pub(crate) fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes as u64)
            .sum()
    }

    /// Rows evicted since construction.
    pub(crate) fn evicted_rows(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// A process-global memo table + single-flight registry, shared by many
/// brokers.
///
/// One-shot brokers own a private cache; a long-lived daemon instead builds
/// one `SharedCache` and hands it to every campaign's broker via
/// [`Broker::with_shared_cache`](crate::Broker::with_shared_cache), so
/// identical query rows (same model, bit-exact same input bytes) are
/// answered once per *process* rather than once per campaign, and
/// concurrent campaigns' duplicate misses coalesce into one dispatch.
#[derive(Debug, Clone)]
pub struct SharedCache {
    pub(crate) cache: Arc<MemoCache>,
    pub(crate) flights: Arc<FlightTable>,
}

impl SharedCache {
    /// A shared cache with no byte cap.
    pub fn unbounded() -> Self {
        SharedCache {
            cache: Arc::new(MemoCache::new()),
            flights: Arc::new(FlightTable::new()),
        }
    }

    /// A shared cache holding at most ~`byte_cap` bytes, LRU-evicted.
    pub fn bounded(byte_cap: usize) -> Self {
        SharedCache {
            cache: Arc::new(MemoCache::bounded(byte_cap)),
            flights: Arc::new(FlightTable::new()),
        }
    }

    /// Rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }

    /// Estimated resident bytes.
    pub fn cached_bytes(&self) -> u64 {
        self.cache.bytes()
    }

    /// Rows evicted since construction.
    pub fn evicted_rows(&self) -> u64 {
        self.cache.evicted_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_exact_keys_distinguish_close_probes() {
        let cache = MemoCache::new();
        let x = [0.1, 0.2];
        let x_eps = [0.1 + 1e-16, 0.2];
        assert_ne!(row_key(&x), row_key(&x_eps), "1 ulp apart ⇒ distinct keys");
        cache.insert(row_key(&x), vec![1.0].into());
        assert!(cache.get(&row_key(&x)).is_some());
        assert!(cache.get(&row_key(&x_eps)).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn negative_zero_is_not_positive_zero() {
        // to_bits distinguishes ±0.0 — deliberate: the hardware sees
        // different input words on the wire.
        assert_ne!(row_key(&[0.0]), row_key(&[-0.0]));
    }

    #[test]
    fn namespaced_keys_separate_identical_rows() {
        let row = [0.5, -0.25];
        assert_eq!(row_key_ns(None, &row), row_key(&row));
        let a = row_key_ns(Some(1), &row);
        let b = row_key_ns(Some(2), &row);
        assert_ne!(a, b);
        assert_eq!(&a[1..], &row_key(&row)[..], "payload bits are unchanged");
    }

    /// Forces every key into one shard's cap by using a cache whose cap is
    /// tiny relative to entry size, then checks LRU order and counters.
    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        // Each entry: (1 key word + 1 value word) * 8 + 96 = 112 bytes.
        // Total cap 16 * 112 → per-shard cap 112: each shard holds one
        // entry at a time.
        let cache = MemoCache::bounded(16 * 112);
        let keys: Vec<RowKey> = (0..64).map(|i| row_key(&[i as f64])).collect();
        for key in &keys {
            cache.insert(key.clone(), vec![0.0].into());
        }
        assert!(cache.evicted_rows() > 0, "cap must have forced evictions");
        assert!(cache.len() <= SHARDS);
        assert!(cache.bytes() <= 16 * 112);
        // Each shard keeps exactly its most recent insertion.
        let survivors: usize = keys.iter().filter(|k| cache.get(k).is_some()).count();
        assert_eq!(survivors, cache.len());
        assert_eq!(
            cache.evicted_rows(),
            64 - cache.len() as u64,
            "every insert beyond capacity evicted exactly one row"
        );
    }

    #[test]
    fn get_refreshes_recency() {
        // One shard-sized cap; craft two keys in the same shard, touch the
        // older one, insert a third same-shard key, and require the
        // untouched middle key to be the victim.
        let cap_per_entry = 112; // as above
        let cache = MemoCache::bounded(16 * 2 * cap_per_entry); // 2 entries/shard
        let mut same_shard: Vec<RowKey> = Vec::new();
        let mut i = 0.0f64;
        let target = shard_of(&row_key(&[0.0]));
        while same_shard.len() < 3 {
            let k = row_key(&[i]);
            if shard_of(&k) == target {
                same_shard.push(k);
            }
            i += 1.0;
        }
        cache.insert(same_shard[0].clone(), vec![0.0].into());
        cache.insert(same_shard[1].clone(), vec![0.0].into());
        assert!(cache.get(&same_shard[0]).is_some()); // refresh the older key
        cache.insert(same_shard[2].clone(), vec![0.0].into());
        assert!(
            cache.get(&same_shard[0]).is_some(),
            "refreshed key survives"
        );
        assert!(cache.get(&same_shard[1]).is_none(), "stale key evicted");
        assert!(cache.get(&same_shard[2]).is_some());
    }

    #[test]
    fn single_oversized_entry_is_kept_until_displaced() {
        // An entry larger than the whole shard cap still serves (the
        // just-inserted row is never self-evicted) and is displaced by the
        // next insertion into its shard.
        let cache = MemoCache::bounded(16); // 1 byte per shard
        let k1 = row_key(&[1.0]);
        cache.insert(k1.clone(), vec![0.0; 8].into());
        assert!(cache.get(&k1).is_some());
        for j in 0..64 {
            cache.insert(row_key(&[100.0 + j as f64]), vec![0.0].into());
        }
        assert!(cache.get(&k1).is_none(), "displaced by later traffic");
    }
}
