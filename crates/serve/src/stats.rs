//! Serving metrics: query accounting, cache effectiveness, batch shapes,
//! and oracle latency — the observability layer printed next to Table 1's
//! query-complexity column.

use relock_trace::json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Batch-size histogram buckets: `1, 2–3, 4–7, …, ≥128` (powers of two).
pub const HISTOGRAM_BUCKETS: usize = 8;

/// Returns the histogram bucket of a batch of `rows` rows. Public so the
/// offline trace analyzer can bucket `broker.batch` span args with the
/// exact same edges the live histogram uses.
pub fn bucket_of(rows: u64) -> usize {
    let mut b = 0usize;
    let mut edge = 1u64; // upper edge of bucket b: 1, 3, 7, 15, …
    while b + 1 < HISTOGRAM_BUCKETS && rows > edge {
        edge = edge * 2 + 1;
        b += 1;
    }
    b
}

/// Human-readable label of a histogram bucket (bucket `b` covers
/// `2^b ..= 2^(b+1)-1` rows; the last bucket is open-ended).
pub fn bucket_label(b: usize) -> String {
    if b == 0 {
        "1".to_string()
    } else if b + 1 == HISTOGRAM_BUCKETS {
        format!(">={}", 1u64 << b)
    } else {
        format!("{}-{}", 1u64 << b, (1u64 << (b + 1)) - 1)
    }
}

/// Per-scope (attack-procedure) accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeCounts {
    /// Rows requested through the broker while the scope was active.
    pub requested: u64,
    /// Rows served from the memo cache (free).
    pub cache_hits: u64,
    /// Rows actually issued to the underlying oracle.
    pub underlying: u64,
}

/// Live, thread-safe metrics of one broker.
#[derive(Debug, Default)]
pub struct QueryStats {
    requested: AtomicU64,
    cache_hits: AtomicU64,
    underlying: AtomicU64,
    batches: AtomicU64,
    retries: AtomicU64,
    injected_faults: AtomicU64,
    oracle_nanos: AtomicU64,
    histogram: [AtomicU64; HISTOGRAM_BUCKETS],
    scope: Mutex<ScopeState>,
}

#[derive(Debug, Default)]
struct ScopeState {
    current: Option<&'static str>,
    per_scope: BTreeMap<&'static str, ScopeCounts>,
}

impl QueryStats {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        QueryStats::default()
    }

    /// Tags subsequent traffic with a procedure label (e.g.
    /// `"key_bit_inference"`); `None` clears the tag. Untagged traffic is
    /// accounted under `"(untagged)"`.
    pub fn set_scope(&self, label: Option<&'static str>) {
        self.scope.lock().expect("scope poisoned").current = label;
    }

    /// Records one batch: `requested` rows asked for, of which `hits` came
    /// from cache and `underlying` were issued to the oracle (deduplicated
    /// rows account for the difference), taking `oracle_time` of backend
    /// wall clock.
    pub fn record_batch(&self, requested: u64, hits: u64, underlying: u64, oracle_time: Duration) {
        self.requested.fetch_add(requested, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.underlying.fetch_add(underlying, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.oracle_nanos
            .fetch_add(oracle_time.as_nanos() as u64, Ordering::Relaxed);
        self.histogram[bucket_of(requested.max(1))].fetch_add(1, Ordering::Relaxed);
        let mut scope = self.scope.lock().expect("scope poisoned");
        let label = scope.current.unwrap_or("(untagged)");
        let entry = scope.per_scope.entry(label).or_default();
        entry.requested += requested;
        entry.cache_hits += hits;
        entry.underlying += underlying;
        // Trace events are emitted here, where the scope label is in hand,
        // so the flight-recorder totals and this snapshot's books agree at
        // every call site by construction (the chaos soak cross-checks it).
        if relock_trace::enabled() {
            relock_trace::scoped_counter("broker.requested", label, requested);
            if hits > 0 {
                relock_trace::scoped_counter("broker.cache_hits", label, hits);
            }
            if underlying > 0 {
                relock_trace::scoped_counter("broker.underlying", label, underlying);
            }
        }
    }

    /// Records `n` backend retry attempts (beyond the first try).
    pub fn record_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
        if relock_trace::enabled() {
            let scope = self.scope.lock().expect("scope poisoned");
            let label = scope.current.unwrap_or("(untagged)");
            relock_trace::scoped_counter("broker.retry", label, n);
        }
    }

    /// Records `n` deliberately injected faults (chaos testing). Kept
    /// separate from `retries` so a soak run can tell scheduled damage
    /// apart from organic backend trouble.
    pub fn record_injected_faults(&self, n: u64) {
        self.injected_faults.fetch_add(n, Ordering::Relaxed);
        relock_trace::counter("chaos.injected", n);
    }

    /// Rows actually issued to the underlying oracle so far.
    pub fn underlying_queries(&self) -> u64 {
        self.underlying.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time copy for reporting.
    pub fn snapshot(&self) -> QueryStatsSnapshot {
        let scope = self.scope.lock().expect("scope poisoned");
        QueryStatsSnapshot {
            requested: self.requested.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            underlying: self.underlying.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            oracle_time: Duration::from_nanos(self.oracle_nanos.load(Ordering::Relaxed)),
            histogram: std::array::from_fn(|i| self.histogram[i].load(Ordering::Relaxed)),
            per_scope: scope
                .per_scope
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            // Cache gauges belong to the cache, not the stats: the broker
            // fills them in (`Broker::snapshot`) from the cache it fronts.
            cache_evictions: 0,
            cache_rows: 0,
            cache_bytes: 0,
        }
    }
}

/// A plain-data snapshot of [`QueryStats`], cheap to clone and embed in
/// attack reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStatsSnapshot {
    /// Rows requested through the broker (cache hits included).
    pub requested: u64,
    /// Rows served from the memo cache.
    pub cache_hits: u64,
    /// Rows issued to the underlying oracle — the paper's query count.
    pub underlying: u64,
    /// Broker batches served.
    pub batches: u64,
    /// Backend retry attempts performed.
    pub retries: u64,
    /// Faults deliberately injected by a chaos harness (see
    /// `ChaosOracle`); 0 outside fault-injection runs.
    pub injected_faults: u64,
    /// Wall clock spent inside the underlying oracle.
    pub oracle_time: Duration,
    /// Batch-size histogram (`1, 2–3, 4–7, …, ≥128` requested rows).
    pub histogram: [u64; HISTOGRAM_BUCKETS],
    /// Accounting per procedure scope, sorted by label.
    pub per_scope: Vec<(String, ScopeCounts)>,
    /// Rows evicted from the memo cache since construction (0 for
    /// unbounded caches). Filled in by `Broker::snapshot` from the cache
    /// it fronts; deliberately *not* serialized into RLCP checkpoints —
    /// cache occupancy describes the live process, not the attack state.
    pub cache_evictions: u64,
    /// Rows resident in the memo cache at snapshot time (a gauge, not a
    /// counter: `merge` keeps the most recent segment's value).
    pub cache_rows: u64,
    /// Estimated bytes resident in the memo cache at snapshot time (gauge,
    /// like [`QueryStatsSnapshot::cache_rows`]).
    pub cache_bytes: u64,
}

impl QueryStatsSnapshot {
    /// Fraction of requested rows served from cache (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requested as f64
        }
    }

    /// Whether the accounting books balance: every requested row was served
    /// either from cache or by the backend — globally *and* within every
    /// procedure scope. A lost or double-counted row under concurrency
    /// breaks this; the soak suites assert it after parallel runs.
    pub fn is_balanced(&self) -> bool {
        self.requested == self.cache_hits + self.underlying
            && self
                .per_scope
                .iter()
                .all(|(_, c)| c.requested == c.cache_hits + c.underlying)
    }

    /// Mean requested rows per broker batch (0 when idle).
    pub fn mean_batch_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requested as f64 / self.batches as f64
        }
    }

    /// Accumulates `other` into `self` — counters add, histograms add
    /// bucket-wise, per-scope entries merge by label. A resumed attack uses
    /// this to splice the pre-crash broker accounting (restored from a
    /// checkpoint) onto the post-resume segment, so the final report shows
    /// the whole session.
    pub fn merge(&mut self, other: &QueryStatsSnapshot) {
        self.requested += other.requested;
        self.cache_hits += other.cache_hits;
        self.underlying += other.underlying;
        self.batches += other.batches;
        self.retries += other.retries;
        self.injected_faults += other.injected_faults;
        self.oracle_time += other.oracle_time;
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += *b;
        }
        for (label, counts) in &other.per_scope {
            match self.per_scope.iter_mut().find(|(l, _)| l == label) {
                Some((_, mine)) => {
                    mine.requested += counts.requested;
                    mine.cache_hits += counts.cache_hits;
                    mine.underlying += counts.underlying;
                }
                None => self.per_scope.push((label.clone(), *counts)),
            }
        }
        self.per_scope.sort_by(|(a, _), (b, _)| a.cmp(b));
        // Eviction is a counter; occupancy is a gauge. When splicing an
        // older (checkpointed) segment onto a newer one, the newer side's
        // occupancy is the live one — but a decoded checkpoint carries
        // zeros here, so keep the larger reading instead of blindly taking
        // `other`'s.
        self.cache_evictions += other.cache_evictions;
        self.cache_rows = self.cache_rows.max(other.cache_rows);
        self.cache_bytes = self.cache_bytes.max(other.cache_bytes);
    }

    /// Encodes the snapshot as a JSON object — the `--stats-json` sidecar
    /// an offline trace analysis reconciles a capture against. Oracle time
    /// is carried as integer nanoseconds so the round trip is exact.
    pub fn to_json_value(&self) -> Value {
        let per_scope = self
            .per_scope
            .iter()
            .map(|(label, c)| {
                Value::Obj(vec![
                    ("scope".to_string(), Value::str(label)),
                    ("requested".to_string(), Value::num_u64(c.requested)),
                    ("cache_hits".to_string(), Value::num_u64(c.cache_hits)),
                    ("underlying".to_string(), Value::num_u64(c.underlying)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("requested".to_string(), Value::num_u64(self.requested)),
            ("cache_hits".to_string(), Value::num_u64(self.cache_hits)),
            ("underlying".to_string(), Value::num_u64(self.underlying)),
            ("batches".to_string(), Value::num_u64(self.batches)),
            ("retries".to_string(), Value::num_u64(self.retries)),
            (
                "injected_faults".to_string(),
                Value::num_u64(self.injected_faults),
            ),
            (
                "oracle_nanos".to_string(),
                Value::num_u64(self.oracle_time.as_nanos() as u64),
            ),
            (
                "histogram".to_string(),
                Value::Arr(self.histogram.iter().map(|&n| Value::num_u64(n)).collect()),
            ),
            ("per_scope".to_string(), Value::Arr(per_scope)),
            (
                "cache_evictions".to_string(),
                Value::num_u64(self.cache_evictions),
            ),
            ("cache_rows".to_string(), Value::num_u64(self.cache_rows)),
            ("cache_bytes".to_string(), Value::num_u64(self.cache_bytes)),
        ])
    }

    /// Decodes [`QueryStatsSnapshot::to_json_value`] output.
    pub fn from_json_value(doc: &Value) -> Result<QueryStatsSnapshot, String> {
        let field = |key: &str| {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let hist = doc
            .get("histogram")
            .and_then(Value::as_arr)
            .ok_or("missing 'histogram' array")?;
        if hist.len() != HISTOGRAM_BUCKETS {
            return Err(format!(
                "histogram has {} buckets, expected {HISTOGRAM_BUCKETS}",
                hist.len()
            ));
        }
        let mut histogram = [0u64; HISTOGRAM_BUCKETS];
        for (slot, v) in histogram.iter_mut().zip(hist) {
            *slot = v.as_u64().ok_or("non-integer histogram bucket")?;
        }
        let mut per_scope = Vec::new();
        for entry in doc
            .get("per_scope")
            .and_then(Value::as_arr)
            .ok_or("missing 'per_scope' array")?
        {
            let scope = entry
                .get("scope")
                .and_then(Value::as_str)
                .ok_or("missing or non-string scope label")?
                .to_string();
            let sub = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("scope '{scope}': missing field '{key}'"))
            };
            per_scope.push((
                scope.clone(),
                ScopeCounts {
                    requested: sub("requested")?,
                    cache_hits: sub("cache_hits")?,
                    underlying: sub("underlying")?,
                },
            ));
        }
        Ok(QueryStatsSnapshot {
            requested: field("requested")?,
            cache_hits: field("cache_hits")?,
            underlying: field("underlying")?,
            batches: field("batches")?,
            retries: field("retries")?,
            injected_faults: field("injected_faults")?,
            oracle_time: Duration::from_nanos(field("oracle_nanos")?),
            histogram,
            per_scope,
            cache_evictions: field("cache_evictions")?,
            cache_rows: field("cache_rows")?,
            cache_bytes: field("cache_bytes")?,
        })
    }
}

impl fmt::Display for QueryStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries: {} underlying / {} requested ({:.1}% cache hits, {} batches, mean {:.1} rows/batch)",
            self.underlying,
            self.requested,
            100.0 * self.cache_hit_rate(),
            self.batches,
            self.mean_batch_rows(),
        )?;
        write!(
            f,
            "oracle time: {:.3}s  retries: {}",
            self.oracle_time.as_secs_f64(),
            self.retries
        )?;
        if self.injected_faults > 0 {
            write!(f, "  injected faults: {}", self.injected_faults)?;
        }
        if self.cache_evictions > 0 {
            write!(
                f,
                "  cache: {} rows / {} B resident, {} evicted",
                self.cache_rows, self.cache_bytes, self.cache_evictions
            )?;
        }
        writeln!(f)?;
        write!(f, "batch-size histogram:")?;
        for (b, &n) in self.histogram.iter().enumerate() {
            if n > 0 {
                write!(f, "  {}:{}", bucket_label(b), n)?;
            }
        }
        writeln!(f)?;
        for (label, c) in &self.per_scope {
            writeln!(
                f,
                "  {:<24} {:>8} underlying  {:>8} hits  {:>8} requested",
                label, c.underlying, c.cache_hits, c.requested
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_sizes() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(64), 6);
        assert_eq!(bucket_of(128), 7);
        assert_eq!(bucket_of(1_000_000), 7);
    }

    #[test]
    fn bucket_labels_match_their_edges() {
        assert_eq!(bucket_label(0), "1");
        assert_eq!(bucket_label(1), "2-3");
        assert_eq!(bucket_label(2), "4-7");
        assert_eq!(bucket_label(6), "64-127");
        assert_eq!(bucket_label(HISTOGRAM_BUCKETS - 1), ">=128");
    }

    #[test]
    fn scoped_accounting_splits_by_label() {
        let s = QueryStats::new();
        s.set_scope(Some("learning_attack"));
        s.record_batch(100, 0, 100, Duration::from_millis(5));
        s.set_scope(Some("key_vector_validation"));
        s.record_batch(4, 3, 1, Duration::from_millis(1));
        s.record_batch(2, 2, 0, Duration::ZERO);
        s.set_scope(None);
        let snap = s.snapshot();
        assert_eq!(snap.requested, 106);
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.underlying, 101);
        assert_eq!(snap.batches, 3);
        let validation = snap
            .per_scope
            .iter()
            .find(|(l, _)| l == "key_vector_validation")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(
            validation,
            ScopeCounts {
                requested: 6,
                cache_hits: 5,
                underlying: 1
            }
        );
        assert!((snap.cache_hit_rate() - 5.0 / 106.0).abs() < 1e-12);
        let rendered = snap.to_string();
        assert!(rendered.contains("learning_attack"));
        assert!(rendered.contains("cache hits"));
    }

    #[test]
    fn merge_accumulates_counters_scopes_and_histogram() {
        let a_stats = QueryStats::new();
        a_stats.set_scope(Some("learning_attack"));
        a_stats.record_batch(100, 10, 90, Duration::from_millis(4));
        a_stats.record_retries(2);
        a_stats.record_injected_faults(3);
        let mut a = a_stats.snapshot();

        let b_stats = QueryStats::new();
        b_stats.set_scope(Some("learning_attack"));
        b_stats.record_batch(50, 0, 50, Duration::from_millis(1));
        b_stats.set_scope(Some("error_correction"));
        b_stats.record_batch(1, 1, 0, Duration::ZERO);
        let b = b_stats.snapshot();

        a.merge(&b);
        assert_eq!(a.requested, 151);
        assert_eq!(a.cache_hits, 11);
        assert_eq!(a.underlying, 140);
        assert_eq!(a.batches, 3);
        assert_eq!(a.retries, 2);
        assert_eq!(a.injected_faults, 3);
        assert_eq!(a.oracle_time, Duration::from_millis(5));
        assert_eq!(a.histogram.iter().sum::<u64>(), 3);
        let learn = a
            .per_scope
            .iter()
            .find(|(l, _)| l == "learning_attack")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(learn.requested, 150);
        assert_eq!(learn.underlying, 140);
        assert!(a.per_scope.iter().any(|(l, _)| l == "error_correction"));
        // Labels stay sorted after the merge, matching snapshot() order.
        let labels: Vec<&str> = a.per_scope.iter().map(|(l, _)| l.as_str()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let stats = QueryStats::new();
        stats.set_scope(Some("learning_attack"));
        stats.record_batch(100, 10, 90, Duration::from_nanos(12_345_678));
        stats.set_scope(Some("key_vector_validation"));
        stats.record_batch(4, 3, 1, Duration::from_millis(1));
        stats.record_retries(2);
        stats.record_injected_faults(1);
        let mut snap = stats.snapshot();
        snap.cache_evictions = 7;
        snap.cache_rows = 11;
        snap.cache_bytes = 4096;
        let doc = snap.to_json_value();
        let back = QueryStatsSnapshot::from_json_value(&doc).unwrap();
        assert_eq!(back, snap);
        // Text round trip too — the sidecar crosses a file.
        let reparsed = Value::parse(&doc.to_pretty()).unwrap();
        assert_eq!(
            QueryStatsSnapshot::from_json_value(&reparsed).unwrap(),
            snap
        );
    }

    #[test]
    fn json_decode_rejects_malformed_documents() {
        assert!(QueryStatsSnapshot::from_json_value(&Value::Obj(vec![])).is_err());
        let mut doc = QueryStatsSnapshot::default().to_json_value();
        if let Value::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "histogram");
        }
        assert!(QueryStatsSnapshot::from_json_value(&doc).is_err());
    }
}
