//! Query-budget and deadline enforcement.
//!
//! The paper scores attacks by oracle query complexity (Table 1's `#Q`
//! column); a realistic adversary also has a wall-clock window on the
//! hardware. [`QueryBudget`] makes both limits first-class: every
//! *underlying* query must reserve budget before it is issued, cache hits
//! reserve nothing (they are free by the broker's accounting semantics),
//! and an exhausted budget surfaces as a typed
//! [`OracleError::BudgetExhausted`] the attack degrades on instead of
//! panicking.

use relock_locking::OracleError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A shared, thread-safe query/deadline budget.
#[derive(Debug)]
pub struct QueryBudget {
    limit: Option<u64>,
    spent: AtomicU64,
    started: Instant,
    deadline: Option<Duration>,
}

impl QueryBudget {
    /// A budget of `limit` underlying rows (`None` = unlimited) and an
    /// optional wall-clock deadline starting now.
    pub fn new(limit: Option<u64>, deadline: Option<Duration>) -> Self {
        QueryBudget {
            limit,
            spent: AtomicU64::new(0),
            started: Instant::now(),
            deadline,
        }
    }

    /// An unlimited budget.
    pub fn unlimited() -> Self {
        QueryBudget::new(None, None)
    }

    /// Underlying rows reserved so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Rows still affordable (`None` = unlimited).
    pub fn remaining(&self) -> Option<u64> {
        self.limit
            .map(|l| l.saturating_sub(self.spent.load(Ordering::Relaxed)))
    }

    /// Errors if the wall-clock deadline has passed.
    pub fn check_deadline(&self) -> Result<(), OracleError> {
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(OracleError::DeadlineExceeded { elapsed, deadline });
            }
        }
        Ok(())
    }

    /// Returns `rows` previously reserved queries to the budget. The broker
    /// refunds a reservation when the dispatch it paid for fails outright:
    /// rows the backend never answered must not count against `#Q`.
    /// Saturating, so a spurious refund can never underflow `spent`.
    pub fn refund(&self, rows: u64) {
        if rows == 0 {
            return;
        }
        let mut cur = self.spent.load(Ordering::Relaxed);
        loop {
            match self.spent.compare_exchange_weak(
                cur,
                cur.saturating_sub(rows),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically reserves `rows` underlying queries, or errors without
    /// reserving anything (all-or-nothing, so a partially affordable batch
    /// is never silently truncated — callers that can shrink their request
    /// consult [`QueryBudget::remaining`] first).
    pub fn try_reserve(&self, rows: u64) -> Result<(), OracleError> {
        self.check_deadline()?;
        let Some(limit) = self.limit else {
            self.spent.fetch_add(rows, Ordering::Relaxed);
            return Ok(());
        };
        // CAS loop: concurrent broker shards must not over-commit.
        let mut cur = self.spent.load(Ordering::Relaxed);
        loop {
            if cur.saturating_add(rows) > limit {
                return Err(OracleError::BudgetExhausted {
                    spent: cur,
                    budget: limit,
                    requested: rows,
                });
            }
            match self.spent.compare_exchange_weak(
                cur,
                cur + rows,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_reserves() {
        let b = QueryBudget::unlimited();
        b.try_reserve(1_000_000).unwrap();
        assert_eq!(b.spent(), 1_000_000);
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn reservation_is_all_or_nothing() {
        let b = QueryBudget::new(Some(10), None);
        b.try_reserve(7).unwrap();
        let err = b.try_reserve(4).unwrap_err();
        assert_eq!(
            err,
            OracleError::BudgetExhausted {
                spent: 7,
                budget: 10,
                requested: 4
            }
        );
        // The failed reservation charged nothing.
        assert_eq!(b.spent(), 7);
        b.try_reserve(3).unwrap();
        assert_eq!(b.remaining(), Some(0));
    }

    #[test]
    fn concurrent_reservations_never_over_commit() {
        let b = QueryBudget::new(Some(1000), None);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let b = &b;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let _ = b.try_reserve(1);
                    }
                });
            }
        });
        assert_eq!(b.spent(), 1000);
        assert_eq!(b.remaining(), Some(0));
    }

    #[test]
    fn refund_returns_reserved_rows() {
        let b = QueryBudget::new(Some(10), None);
        b.try_reserve(8).unwrap();
        b.refund(5);
        assert_eq!(b.spent(), 3);
        assert_eq!(b.remaining(), Some(7));
        // Saturating: refunding more than was spent clamps at zero.
        b.refund(100);
        assert_eq!(b.spent(), 0);
        assert_eq!(b.remaining(), Some(10));
    }

    #[test]
    fn expired_deadline_is_typed() {
        let b = QueryBudget::new(None, Some(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            b.try_reserve(1),
            Err(OracleError::DeadlineExceeded { .. })
        ));
    }
}
