//! Retry-with-backoff for flaky oracle transports.
//!
//! Hardened deployments drop or garble requests ([`relock_locking::UnreliableOracle`]
//! models the transport side of this); a broker that gave up on the first
//! `Backend` error would starve the attack. [`RetryPolicy`] retries
//! transient failures with exponential backoff; budget and deadline errors
//! are *not* retried (they are deterministic).

use relock_locking::{Oracle, OracleError};
use relock_tensor::Tensor;
use std::time::Duration;

/// Exponential-backoff retry policy for `Backend` errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_backoff: Duration,
    /// Backoff multiplier per further retry (saturating).
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(100),
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            multiplier: 1,
        }
    }

    /// Runs `f` under this policy. Returns the first success, the first
    /// non-retryable error, or the last `Backend` error with its `attempts`
    /// field set to the true total. Also reports the number of retries
    /// performed through `on_retry` (for metrics).
    pub fn run<T>(
        &self,
        mut f: impl FnMut() -> Result<T, OracleError>,
        mut on_retry: impl FnMut(),
    ) -> Result<T, OracleError> {
        let attempts = self.max_attempts.max(1);
        let mut backoff = self.base_backoff;
        let mut last_message = String::new();
        for attempt in 1..=attempts {
            match f() {
                Ok(v) => return Ok(v),
                Err(OracleError::Backend { message, .. }) => {
                    last_message = message;
                    if attempt < attempts {
                        on_retry();
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        backoff = backoff.saturating_mul(self.multiplier.max(1));
                    }
                }
                // Budget/deadline failures are deterministic — retrying
                // would just burn wall clock.
                Err(e) => return Err(e),
            }
        }
        Err(OracleError::Backend {
            message: last_message,
            attempts,
        })
    }
}

/// A standalone oracle wrapper applying a [`RetryPolicy`] to every
/// fallible query — for callers that want retries without the rest of the
/// broker machinery.
#[derive(Debug)]
pub struct RetryOracle<O> {
    inner: O,
    policy: RetryPolicy,
}

impl<O: Oracle> RetryOracle<O> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        RetryOracle { inner, policy }
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for RetryOracle<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.try_query_batch(x)
            .expect("retries exhausted; use try_query_batch to observe the failure")
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        self.policy.run(|| self.inner.try_query_batch(x), || {})
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.inner.remaining_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky(fail_first: u32) -> impl FnMut() -> Result<u32, OracleError> {
        let mut calls = 0u32;
        move || {
            calls += 1;
            if calls <= fail_first {
                Err(OracleError::Backend {
                    message: format!("drop {calls}"),
                    attempts: 1,
                })
            } else {
                Ok(calls)
            }
        }
    }

    #[test]
    fn retries_transient_failures() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
            multiplier: 1,
        };
        let mut retries = 0u32;
        let out = policy.run(flaky(2), || retries += 1).unwrap();
        assert_eq!(out, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn gives_up_with_true_attempt_count() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            multiplier: 1,
        };
        let err = policy.run(flaky(99), || {}).unwrap_err();
        assert_eq!(
            err,
            OracleError::Backend {
                message: "drop 3".to_string(),
                attempts: 3
            }
        );
    }

    #[test]
    fn budget_errors_are_not_retried() {
        let policy = RetryPolicy::default();
        let mut calls = 0u32;
        let err = policy
            .run(
                || {
                    calls += 1;
                    Err::<(), _>(OracleError::BudgetExhausted {
                        spent: 1,
                        budget: 1,
                        requested: 1,
                    })
                },
                || {},
            )
            .unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        assert_eq!(calls, 1);
    }
}
