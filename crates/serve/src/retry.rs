//! Retry-with-backoff for flaky oracle transports.
//!
//! Hardened deployments drop or garble requests ([`relock_locking::UnreliableOracle`]
//! models the transport side of this); a broker that gave up on the first
//! `Backend` error would starve the attack. [`RetryPolicy`] retries
//! transient failures with exponential backoff; budget and deadline errors
//! are *not* retried (they are deterministic).
//!
//! Backoffs carry **seeded jitter**: a pure exponential schedule makes
//! every caller that failed together retry together, so concurrent shards
//! hammer a recovering oracle in synchronized bursts. Each retry sleep is
//! shaved by a pseudo-random fraction drawn from a PRNG stream keyed on
//! `(jitter_seed, salt, attempt)` — deterministic for a given caller (the
//! broker salts with its dispatch sequence number), decorrelated across
//! callers. Jitter only changes *when* a retry fires, never its outcome.

use relock_locking::{Oracle, OracleError};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::time::Duration;

/// Default stream key for backoff jitter (see [`RetryPolicy::jitter_seed`]).
const DEFAULT_JITTER_SEED: u64 = 0x5eed_0ff5_e7b4_c0ff;

/// Exponential-backoff retry policy for `Backend` errors, with seeded
/// decorrelating jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_backoff: Duration,
    /// Backoff multiplier per further retry (saturating).
    pub multiplier: u32,
    /// Maximum percentage of each backoff shaved off by jitter
    /// (`0` = fully synchronized exponential schedule, `100` = sleeps
    /// anywhere in `(0, backoff]`).
    pub jitter_pct: u32,
    /// Key of the jitter PRNG stream. Two callers sharing a policy but
    /// salting [`RetryPolicy::run_salted`] differently draw decorrelated
    /// jitter; replaying the same seed + salt replays the same sleeps.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(100),
            multiplier: 2,
            jitter_pct: 50,
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            multiplier: 1,
            jitter_pct: 0,
            jitter_seed: 0,
        }
    }

    /// The sleep before the retry following failed attempt `attempt`
    /// (1-based): the exponential backoff `base · multiplier^(attempt-1)`,
    /// minus a seeded pseudo-random shave of up to `jitter_pct` percent.
    ///
    /// Deterministic in `(policy, attempt, salt)` — no global state, no
    /// wall clock — so tests can assert the exact schedule and a replayed
    /// run sleeps identically.
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let mut backoff = self.base_backoff;
        for _ in 1..attempt {
            backoff = backoff.saturating_mul(self.multiplier.max(1));
        }
        if backoff.is_zero() || self.jitter_pct == 0 {
            return backoff;
        }
        let span_nanos =
            (backoff.as_nanos() as u64).saturating_mul(self.jitter_pct.min(100) as u64) / 100;
        if span_nanos == 0 {
            return backoff;
        }
        // One throwaway stream per (seed, salt, attempt): splitmix64
        // seeding decorrelates even adjacent salts, so shards that failed
        // in the same instant spread out instead of thundering back.
        let mut rng =
            Prng::seed_from_u64(self.jitter_seed ^ salt ^ ((attempt as u64) << 48 | 0xb0ff));
        let shave = rng.next_u64() % (span_nanos + 1);
        backoff - Duration::from_nanos(shave)
    }

    /// Runs `f` under this policy. Returns the first success, the first
    /// non-retryable error, or the last `Backend` error with its `attempts`
    /// field set to the true total. Also reports the number of retries
    /// performed through `on_retry` (for metrics).
    ///
    /// Jitter is drawn with salt `0`; callers running many concurrent
    /// retry loops should use [`RetryPolicy::run_salted`] with distinct
    /// salts so their backoffs decorrelate.
    pub fn run<T>(
        &self,
        f: impl FnMut() -> Result<T, OracleError>,
        on_retry: impl FnMut(),
    ) -> Result<T, OracleError> {
        self.run_salted(f, on_retry, 0)
    }

    /// Like [`RetryPolicy::run`], with a caller-chosen jitter salt
    /// (typically a per-dispatch sequence number).
    pub fn run_salted<T>(
        &self,
        mut f: impl FnMut() -> Result<T, OracleError>,
        mut on_retry: impl FnMut(),
        salt: u64,
    ) -> Result<T, OracleError> {
        let attempts = self.max_attempts.max(1);
        let mut last_message = String::new();
        for attempt in 1..=attempts {
            match f() {
                Ok(v) => return Ok(v),
                Err(OracleError::Backend { message, .. }) => {
                    last_message = message;
                    if attempt < attempts {
                        on_retry();
                        let backoff = self.backoff_for(attempt, salt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                    }
                }
                // Budget/deadline failures are deterministic — retrying
                // would just burn wall clock.
                Err(e) => return Err(e),
            }
        }
        Err(OracleError::Backend {
            message: last_message,
            attempts,
        })
    }
}

/// A standalone oracle wrapper applying a [`RetryPolicy`] to every
/// fallible query — for callers that want retries without the rest of the
/// broker machinery.
#[derive(Debug)]
pub struct RetryOracle<O> {
    inner: O,
    policy: RetryPolicy,
}

impl<O: Oracle> RetryOracle<O> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        RetryOracle { inner, policy }
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for RetryOracle<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.try_query_batch(x)
            .expect("retries exhausted; use try_query_batch to observe the failure")
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        self.policy.run(|| self.inner.try_query_batch(x), || {})
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.inner.remaining_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky(fail_first: u32) -> impl FnMut() -> Result<u32, OracleError> {
        let mut calls = 0u32;
        move || {
            calls += 1;
            if calls <= fail_first {
                Err(OracleError::Backend {
                    message: format!("drop {calls}"),
                    attempts: 1,
                })
            } else {
                Ok(calls)
            }
        }
    }

    #[test]
    fn retries_transient_failures() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
            multiplier: 1,
            ..RetryPolicy::default()
        };
        let mut retries = 0u32;
        let out = policy.run(flaky(2), || retries += 1).unwrap();
        assert_eq!(out, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn gives_up_with_true_attempt_count() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            multiplier: 1,
            ..RetryPolicy::default()
        };
        let err = policy.run(flaky(99), || {}).unwrap_err();
        assert_eq!(
            err,
            OracleError::Backend {
                message: "drop 3".to_string(),
                attempts: 3
            }
        );
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_decorrelated() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            multiplier: 2,
            jitter_pct: 50,
            jitter_seed: 42,
        };
        for attempt in 1..=4u32 {
            let raw = Duration::from_millis(10 << (attempt - 1));
            let jittered = policy.backoff_for(attempt, 7);
            // Bounded: within [raw/2, raw] for jitter_pct = 50.
            assert!(jittered <= raw, "attempt {attempt}: {jittered:?} > {raw:?}");
            assert!(
                jittered >= raw / 2,
                "attempt {attempt}: {jittered:?} < {:?}",
                raw / 2
            );
            // Deterministic: same (seed, salt, attempt) ⇒ same sleep.
            assert_eq!(jittered, policy.backoff_for(attempt, 7));
        }
        // Decorrelated: distinct salts must not all agree — synchronized
        // retries across shards are exactly the thundering herd the
        // jitter exists to break up.
        let sleeps: Vec<Duration> = (0..16u64).map(|salt| policy.backoff_for(1, salt)).collect();
        assert!(
            sleeps.iter().any(|s| *s != sleeps[0]),
            "16 salts drew identical jitter: {sleeps:?}"
        );
    }

    #[test]
    fn zero_jitter_keeps_the_pure_exponential_schedule() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(3),
            multiplier: 2,
            jitter_pct: 0,
            jitter_seed: 9,
        };
        for salt in [0u64, 1, 99] {
            assert_eq!(policy.backoff_for(1, salt), Duration::from_millis(3));
            assert_eq!(policy.backoff_for(2, salt), Duration::from_millis(6));
            assert_eq!(policy.backoff_for(3, salt), Duration::from_millis(12));
        }
    }

    #[test]
    fn budget_errors_are_not_retried() {
        let policy = RetryPolicy::default();
        let mut calls = 0u32;
        let err = policy
            .run(
                || {
                    calls += 1;
                    Err::<(), _>(OracleError::BudgetExhausted {
                        spent: 1,
                        budget: 1,
                        requested: 1,
                    })
                },
                || {},
            )
            .unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        assert_eq!(calls, 1);
    }
}
