//! # relock-serve — the oracle query broker
//!
//! A serving layer between an attack and any [`relock_locking::Oracle`]:
//! the attack talks to a [`Broker`], the broker talks to the hardware.
//! Four concerns live here, factored out of the attack code:
//!
//! - **Batching** ([`Broker`] + its worker pool) — large batches shard
//!   across scoped threads and reassemble in order;
//! - **Memoization** ([`Broker`] with `memoize`) — responses are cached by
//!   the *bit-exact* bytes of the input row, so re-probing a validation
//!   witness is free;
//! - **Budgets** ([`QueryBudget`]) — underlying-query and wall-clock limits
//!   with typed [`relock_locking::OracleError`] failures the attack
//!   degrades on, plus [`RetryPolicy`] backoff for flaky transports;
//! - **Metrics** ([`QueryStats`]) — per-procedure query accounting, cache
//!   hit rate, batch-size histogram, backend latency.
//!
//! ## Query accounting semantics
//!
//! Cache hits are **free**: they never reach the backend, never reserve
//! budget, and never increment `query_count`. Underlying queries count
//! **per input row** — an N-row batch costs exactly N. `query_count()` on
//! a broker reports underlying rows, i.e. the paper's `#Q` column.
//!
//! ```
//! use relock_serve::{Broker, BrokerConfig};
//! use relock_locking::Oracle;
//! # use relock_locking::{CountingOracle, LockSpec};
//! # use relock_nn::{build_mlp, MlpSpec};
//! # use relock_tensor::rng::Prng;
//! # let mut rng = Prng::seed_from_u64(7);
//! # let model = build_mlp(
//! #     &MlpSpec { input: 4, hidden: vec![6], classes: 3 },
//! #     LockSpec::evenly(2),
//! #     &mut rng,
//! # ).unwrap();
//! let oracle = CountingOracle::new(&model);
//! let broker = Broker::with_config(&oracle, BrokerConfig {
//!     max_queries: Some(1_000),
//!     ..BrokerConfig::default()
//! });
//! let x = rng.normal_tensor([8, 4]);
//! let y = broker.query_batch(&x);     // 8 underlying queries
//! let y2 = broker.query_batch(&x);    // 0 — served from cache
//! assert_eq!(y.as_slice(), y2.as_slice());
//! assert_eq!(broker.query_count(), 8);
//! assert_eq!(broker.remaining_budget(), Some(992));
//! ```

mod broker;
mod budget;
mod cache;
mod chaos;
mod flight;
mod pool;
mod retry;
mod stats;

pub use broker::{Broker, BrokerConfig};
pub use budget::QueryBudget;
pub use cache::SharedCache;
pub use chaos::{ChaosConfig, ChaosCounters, ChaosCrash, ChaosOracle, Corruption};
pub use retry::{RetryOracle, RetryPolicy};
pub use stats::{
    bucket_label, bucket_of, QueryStats, QueryStatsSnapshot, ScopeCounts, HISTOGRAM_BUCKETS,
};
