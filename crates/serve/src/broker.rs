//! The query broker: one front door between an attack and any [`Oracle`].
//!
//! Every request flows through four stages:
//!
//! 1. **Memoization** — each input row is looked up by its bit-exact bytes;
//!    hits are served from cache and never touch the backend (or the
//!    budget). Duplicate rows *within* one batch are deduplicated too.
//! 2. **Budgeting** — the surviving miss rows reserve query budget
//!    all-or-nothing and check the wall-clock deadline; exhaustion surfaces
//!    as a typed [`OracleError`] instead of a panic.
//! 3. **Dispatch** — misses go to the backend as one batch, sharded across
//!    a scoped worker pool when large, retried with backoff on transient
//!    `Backend` failures.
//! 4. **Metrics** — [`QueryStats`] records requested/hit/underlying row
//!    counts (per procedure scope), batch shapes, retries, and backend
//!    latency.
//!
//! **Query accounting semantics:** cache hits are free; underlying queries
//! count per-input-row (an N-row batch costs N). `Oracle::query_count` on a
//! broker reports *underlying* rows — the paper's `#Q` metric — so a broker
//! can replace a bare [`CountingOracle`](relock_locking::CountingOracle) in
//! any harness without inflating Table 1.

use crate::budget::QueryBudget;
use crate::cache::{row_key, MemoCache, RowKey};
use crate::flight::{Claim, FlightEntry, FlightTable};
use crate::pool::evaluate_sharded;
use crate::retry::RetryPolicy;
use crate::stats::{QueryStats, QueryStatsSnapshot};
use relock_locking::{Oracle, OracleError};
use relock_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables of a [`Broker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// Worker threads for large underlying batches (1 = caller thread).
    pub workers: usize,
    /// Minimum rows per worker shard before fanning out.
    pub min_rows_per_shard: usize,
    /// Memoize responses by bit-exact input bytes.
    pub memoize: bool,
    /// Underlying-query budget (`None` = unlimited).
    pub max_queries: Option<u64>,
    /// Wall-clock deadline from broker construction (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Retry policy for transient backend failures.
    pub retry: RetryPolicy,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            workers: 1,
            min_rows_per_shard: 8,
            memoize: true,
            max_queries: None,
            deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// A batching, memoizing, budgeted, metered front-end over any [`Oracle`].
#[derive(Debug)]
pub struct Broker<O> {
    inner: O,
    config: BrokerConfig,
    cache: MemoCache,
    flights: Arc<FlightTable>,
    budget: QueryBudget,
    stats: QueryStats,
}

impl<O: Oracle> Broker<O> {
    /// Wraps `inner` with default configuration (memoization on, no budget).
    pub fn new(inner: O) -> Self {
        Broker::with_config(inner, BrokerConfig::default())
    }

    /// Wraps `inner` with explicit configuration. The deadline clock starts
    /// now.
    pub fn with_config(inner: O, config: BrokerConfig) -> Self {
        Broker {
            inner,
            cache: MemoCache::new(),
            flights: Arc::new(FlightTable::new()),
            budget: QueryBudget::new(config.max_queries, config.deadline),
            stats: QueryStats::new(),
            config,
        }
    }

    /// Tags subsequent traffic with a procedure label for per-scope
    /// accounting (`None` clears it).
    pub fn set_scope(&self, label: Option<&'static str>) {
        self.stats.set_scope(label);
    }

    /// Live metrics handle.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Point-in-time metrics copy.
    pub fn snapshot(&self) -> QueryStatsSnapshot {
        self.stats.snapshot()
    }

    /// Memoized rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }

    /// Unwraps the backend oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The brokered batch query (stages 1–4 of the module docs).
    fn serve_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let started = Instant::now();
        let rows = x.dims()[0];
        let _batch_span = relock_trace::span("broker.batch", rows as u64);
        let cols = x.dims()[1];
        let q = self.inner.output_dim();

        if !self.config.memoize {
            self.budget.try_reserve(rows as u64)?;
            let y = self.dispatch(x)?;
            self.stats
                .record_batch(rows as u64, 0, rows as u64, started.elapsed());
            return Ok(y);
        }

        // Stage 1: cache lookup, in-batch dedupe, and single-flight
        // coalescing against concurrent batches. Each round classifies the
        // still-unresolved rows as cache hits, in-batch duplicates (free,
        // like before), *owned* misses (this call claimed the row's flight
        // and will dispatch it), or *foreign* misses (another thread is
        // dispatching the same row right now — wait, then re-resolve; the
        // owner publishes to the cache before completing its flight, so a
        // successful flight turns the next round's lookup into a hit). The
        // round structure is deadlock-free because owned flights are always
        // completed (guards dropped) before any waiting happens.
        let mut resolved: Vec<Option<Box<[f64]>>> = (0..rows).map(|_| None).collect();
        let mut hits = 0u64;
        let mut underlying = 0u64;
        let mut pending: Vec<usize> = (0..rows).collect();
        while !pending.is_empty() {
            let mut miss_rows: Vec<f64> = Vec::new();
            let mut miss_keys: Vec<RowKey> = Vec::new();
            let mut owned_rows: Vec<usize> = Vec::new();
            let mut dups: Vec<(usize, usize)> = Vec::new();
            let mut slot_of: HashMap<RowKey, usize> = HashMap::new();
            let mut guards = Vec::new();
            let mut waiting: Vec<(usize, Arc<FlightEntry>)> = Vec::new();
            for &r in &pending {
                let row = &x.as_slice()[r * cols..(r + 1) * cols];
                let key = row_key(row);
                if let Some(hit) = self.cache.get(&key) {
                    hits += 1;
                    resolved[r] = Some(hit);
                    continue;
                }
                if let Some(&slot) = slot_of.get(&key) {
                    hits += 1;
                    dups.push((r, slot));
                    continue;
                }
                match self.flights.claim(key.clone()) {
                    Claim::Owner(guard) => {
                        guards.push(guard);
                        slot_of.insert(key.clone(), miss_keys.len());
                        owned_rows.push(r);
                        miss_rows.extend_from_slice(row);
                        miss_keys.push(key);
                    }
                    Claim::Waiter(entry) => waiting.push((r, entry)),
                }
            }

            // Stages 2–3: only owned unique misses are charged and
            // dispatched. An early return (budget, backend error) drops the
            // guards, releasing waiters to re-claim.
            let misses = miss_keys.len();
            if misses > 0 {
                self.budget.try_reserve(misses as u64)?;
                let mx = Tensor::from_vec(std::mem::take(&mut miss_rows), [misses, cols]);
                let my = self.dispatch(&mx)?;
                for (i, key) in miss_keys.into_iter().enumerate() {
                    self.cache.insert(key, my.row(i).into());
                }
                underlying += misses as u64;
                for (slot, &r) in owned_rows.iter().enumerate() {
                    resolved[r] = Some(my.row(slot).into());
                }
                for (r, slot) in dups {
                    resolved[r] = Some(my.row(slot).into());
                }
            }
            drop(guards); // publish completions before waiting on anyone

            for (_, entry) in &waiting {
                entry.wait();
            }
            pending = waiting.into_iter().map(|(r, _)| r).collect();
        }

        // Reassemble in request order.
        let mut out = Vec::with_capacity(rows * q);
        for source in &resolved {
            out.extend_from_slice(source.as_ref().expect("every row resolved"));
        }

        // Stage 4: hits = everything not sent to the backend by *this*
        // call — duplicate rows within the batch and rows dispatched by a
        // concurrent owner count as hits, exactly what a sequential
        // interleaving of the same batches would have recorded.
        self.stats
            .record_batch(rows as u64, hits, underlying, started.elapsed());
        Ok(Tensor::from_vec(out, [rows, q]))
    }

    /// Sends a miss batch to the backend under the retry policy and pool.
    fn dispatch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let mut retries = 0u64;
        let out = self.config.retry.run(
            || {
                evaluate_sharded(
                    &self.inner,
                    x,
                    self.config.workers,
                    self.config.min_rows_per_shard,
                )
            },
            || retries += 1,
        );
        if retries > 0 {
            self.stats.record_retries(retries);
        }
        out
    }
}

impl<O: Oracle> Oracle for Broker<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.try_query_batch(x)
            .expect("brokered query failed; use try_query_batch to degrade gracefully")
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        self.serve_batch(x)
    }

    /// Underlying query rows issued so far — the paper's `#Q`. Cache hits
    /// are not counted.
    fn query_count(&self) -> u64 {
        self.stats.underlying_queries()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.budget.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};
    use relock_tensor::rng::Prng;

    fn oracle() -> CountingOracle {
        let mut rng = Prng::seed_from_u64(50);
        let model = build_mlp(
            &MlpSpec {
                input: 5,
                hidden: vec![7],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        CountingOracle::new(&model)
    }

    #[test]
    fn cache_hits_are_free_and_bit_exact() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(51);
        let x = rng.normal_tensor([4, 5]);
        let first = broker.query_batch(&x);
        let second = broker.query_batch(&x);
        assert_eq!(first.as_slice(), second.as_slice());
        assert_eq!(o.query_count(), 4, "repeat batch served from cache");
        assert_eq!(broker.query_count(), 4);
        let snap = broker.snapshot();
        assert_eq!(snap.requested, 8);
        assert_eq!(snap.cache_hits, 4);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_batch_duplicates_are_deduplicated() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(52);
        let row = rng.normal_tensor([5]);
        let mut data = Vec::new();
        for _ in 0..6 {
            data.extend_from_slice(row.as_slice());
        }
        let x = Tensor::from_vec(data, [6, 5]);
        let y = broker.query_batch(&x);
        assert_eq!(o.query_count(), 1, "six identical rows → one real query");
        for r in 1..6 {
            assert_eq!(y.row(r), y.row(0));
        }
    }

    #[test]
    fn budget_is_enforced_and_cache_still_serves() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                max_queries: Some(3),
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(53);
        let x = rng.normal_tensor([3, 5]);
        broker.try_query_batch(&x).unwrap();
        assert_eq!(broker.remaining_budget(), Some(0));
        // Fresh rows are refused...
        let err = broker
            .try_query_batch(&rng.normal_tensor([1, 5]))
            .unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        // ...but cached rows still answer: hits are free.
        broker.try_query_batch(&x).unwrap();
        assert_eq!(o.query_count(), 3);
    }

    #[test]
    fn memoize_off_always_hits_backend() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                memoize: false,
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(54);
        let x = rng.normal_tensor([2, 5]);
        broker.query_batch(&x);
        broker.query_batch(&x);
        assert_eq!(o.query_count(), 4);
        assert_eq!(broker.snapshot().cache_hits, 0);
    }

    /// A deterministic backend that stalls each dispatch long enough to
    /// force concurrent misses to overlap, and optionally fails the first
    /// few dispatches outright.
    #[derive(Debug)]
    struct SlowOracle {
        calls: std::sync::atomic::AtomicU64,
        rows: std::sync::atomic::AtomicU64,
        fail_first: u64,
        stall: Duration,
    }

    impl SlowOracle {
        fn new(stall: Duration, fail_first: u64) -> Self {
            SlowOracle {
                calls: 0.into(),
                rows: 0.into(),
                fail_first,
                stall,
            }
        }
    }

    impl relock_locking::Oracle for SlowOracle {
        fn query_batch(&self, x: &Tensor) -> Tensor {
            self.try_query_batch(x).expect("scheduled failure")
        }

        fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
            use std::sync::atomic::Ordering;
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.stall);
            if call < self.fail_first {
                return Err(OracleError::Backend {
                    message: "scheduled failure".into(),
                    attempts: 1,
                });
            }
            let rows = x.dims()[0];
            self.rows.fetch_add(rows as u64, Ordering::SeqCst);
            // Echo the first element of each row so responses are checkable.
            let out: Vec<f64> = (0..rows).map(|r| x.get2(r, 0) + 1.0).collect();
            Ok(Tensor::from_vec(out, [rows, 1]))
        }

        fn query_count(&self) -> u64 {
            self.rows.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn input_dim(&self) -> usize {
            2
        }

        fn output_dim(&self) -> usize {
            1
        }
    }

    #[test]
    fn concurrent_identical_misses_coalesce_into_one_underlying_query() {
        let o = SlowOracle::new(Duration::from_millis(20), 0);
        let broker = Broker::new(&o);
        let x = Tensor::from_vec(vec![0.5, 0.25], [1, 2]);
        let n = 8;
        std::thread::scope(|scope| {
            for _ in 0..n {
                let broker = &broker;
                let x = &x;
                scope.spawn(move || {
                    let y = broker.query_batch(x);
                    assert_eq!(y.get2(0, 0), 1.5);
                });
            }
        });
        assert_eq!(
            o.query_count(),
            1,
            "eight concurrent identical misses → one real query"
        );
        let snap = broker.snapshot();
        assert_eq!(snap.requested, n);
        assert_eq!(snap.underlying, 1);
        assert_eq!(snap.cache_hits, n - 1, "waiters account as cache hits");
        assert!(snap.is_balanced());
    }

    #[test]
    fn failed_owner_releases_waiters_who_retake_the_flight() {
        // No retries at the broker level: the first owner's dispatch fails
        // outright, its waiters must wake, re-claim, and succeed.
        let o = SlowOracle::new(Duration::from_millis(10), 1);
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                retry: RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                },
                ..BrokerConfig::default()
            },
        );
        let x = Tensor::from_vec(vec![2.0, 0.0], [1, 2]);
        let n = 6;
        let failures = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..n {
                let broker = &broker;
                let x = &x;
                let failures = &failures;
                scope.spawn(move || match broker.try_query_batch(x) {
                    Ok(y) => assert_eq!(y.get2(0, 0), 3.0),
                    Err(OracleError::Backend { .. }) => {
                        failures.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                });
            }
        });
        assert_eq!(
            failures.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exactly the scheduled failure surfaced, to exactly one caller"
        );
        assert_eq!(o.query_count(), 1, "one successful underlying query");
        let snap = broker.snapshot();
        assert_eq!(snap.underlying, 1);
        assert!(snap.is_balanced());
    }

    #[test]
    fn single_query_round_trips_through_the_batch_path() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(55);
        let x = rng.normal_tensor([5]);
        let direct = o.query(&x);
        let brokered = broker.query(&x);
        assert_eq!(direct.as_slice(), brokered.as_slice());
    }
}
