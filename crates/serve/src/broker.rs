//! The query broker: one front door between an attack and any [`Oracle`].
//!
//! Every request flows through four stages:
//!
//! 1. **Memoization** — each input row is looked up by its bit-exact bytes;
//!    hits are served from cache and never touch the backend (or the
//!    budget). Duplicate rows *within* one batch are deduplicated too.
//! 2. **Budgeting** — the surviving miss rows reserve query budget
//!    all-or-nothing and check the wall-clock deadline; exhaustion surfaces
//!    as a typed [`OracleError`] instead of a panic.
//! 3. **Dispatch** — misses go to the backend as one batch, sharded across
//!    a scoped worker pool when large, retried with backoff on transient
//!    `Backend` failures.
//! 4. **Metrics** — [`QueryStats`] records requested/hit/underlying row
//!    counts (per procedure scope), batch shapes, retries, and backend
//!    latency.
//!
//! **Query accounting semantics:** cache hits are free; underlying queries
//! count per-input-row (an N-row batch costs N). `Oracle::query_count` on a
//! broker reports *underlying* rows — the paper's `#Q` metric — so a broker
//! can replace a bare [`CountingOracle`](relock_locking::CountingOracle) in
//! any harness without inflating Table 1.

use crate::budget::QueryBudget;
use crate::cache::{row_key, MemoCache};
use crate::pool::evaluate_sharded;
use crate::retry::RetryPolicy;
use crate::stats::{QueryStats, QueryStatsSnapshot};
use relock_locking::{Oracle, OracleError};
use relock_tensor::Tensor;
use std::time::{Duration, Instant};

/// Tunables of a [`Broker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// Worker threads for large underlying batches (1 = caller thread).
    pub workers: usize,
    /// Minimum rows per worker shard before fanning out.
    pub min_rows_per_shard: usize,
    /// Memoize responses by bit-exact input bytes.
    pub memoize: bool,
    /// Underlying-query budget (`None` = unlimited).
    pub max_queries: Option<u64>,
    /// Wall-clock deadline from broker construction (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Retry policy for transient backend failures.
    pub retry: RetryPolicy,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            workers: 1,
            min_rows_per_shard: 8,
            memoize: true,
            max_queries: None,
            deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// A batching, memoizing, budgeted, metered front-end over any [`Oracle`].
#[derive(Debug)]
pub struct Broker<O> {
    inner: O,
    config: BrokerConfig,
    cache: MemoCache,
    budget: QueryBudget,
    stats: QueryStats,
}

impl<O: Oracle> Broker<O> {
    /// Wraps `inner` with default configuration (memoization on, no budget).
    pub fn new(inner: O) -> Self {
        Broker::with_config(inner, BrokerConfig::default())
    }

    /// Wraps `inner` with explicit configuration. The deadline clock starts
    /// now.
    pub fn with_config(inner: O, config: BrokerConfig) -> Self {
        Broker {
            inner,
            cache: MemoCache::new(),
            budget: QueryBudget::new(config.max_queries, config.deadline),
            stats: QueryStats::new(),
            config,
        }
    }

    /// Tags subsequent traffic with a procedure label for per-scope
    /// accounting (`None` clears it).
    pub fn set_scope(&self, label: Option<&'static str>) {
        self.stats.set_scope(label);
    }

    /// Live metrics handle.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Point-in-time metrics copy.
    pub fn snapshot(&self) -> QueryStatsSnapshot {
        self.stats.snapshot()
    }

    /// Memoized rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }

    /// Unwraps the backend oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The brokered batch query (stages 1–4 of the module docs).
    fn serve_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let started = Instant::now();
        let rows = x.dims()[0];
        let cols = x.dims()[1];
        let q = self.inner.output_dim();

        if !self.config.memoize {
            self.budget.try_reserve(rows as u64)?;
            let y = self.dispatch(x)?;
            self.stats
                .record_batch(rows as u64, 0, rows as u64, started.elapsed());
            return Ok(y);
        }

        // Stage 1: cache lookup + in-batch dedupe. `plan[r]` says where row
        // r's response comes from: the cache, or miss slot i.
        enum Source {
            Cached(Box<[f64]>),
            Miss(usize),
        }
        let mut plan = Vec::with_capacity(rows);
        let mut miss_rows: Vec<f64> = Vec::new();
        let mut miss_keys = Vec::new();
        let mut miss_index = std::collections::HashMap::new();
        for r in 0..rows {
            let row = &x.as_slice()[r * cols..(r + 1) * cols];
            let key = row_key(row);
            if let Some(hit) = self.cache.get(&key) {
                plan.push(Source::Cached(hit));
            } else {
                let slot = *miss_index.entry(key.clone()).or_insert_with(|| {
                    miss_rows.extend_from_slice(row);
                    miss_keys.push(key);
                    miss_keys.len() - 1
                });
                plan.push(Source::Miss(slot));
            }
        }

        // Stages 2–3: only unique misses are charged and dispatched.
        let misses = miss_keys.len();
        let miss_out = if misses > 0 {
            self.budget.try_reserve(misses as u64)?;
            let mx = Tensor::from_vec(miss_rows, [misses, cols]);
            let my = self.dispatch(&mx)?;
            for (i, key) in miss_keys.into_iter().enumerate() {
                self.cache.insert(key, my.row(i).into());
            }
            Some(my)
        } else {
            None
        };

        // Reassemble in request order.
        let mut out = Vec::with_capacity(rows * q);
        for source in &plan {
            match source {
                Source::Cached(row) => out.extend_from_slice(row),
                Source::Miss(i) => {
                    out.extend_from_slice(miss_out.as_ref().expect("misses dispatched").row(*i));
                }
            }
        }

        // Stage 4: hits = everything not sent to the backend, so duplicate
        // rows within the batch count as hits too.
        self.stats.record_batch(
            rows as u64,
            (rows - misses) as u64,
            misses as u64,
            started.elapsed(),
        );
        Ok(Tensor::from_vec(out, [rows, q]))
    }

    /// Sends a miss batch to the backend under the retry policy and pool.
    fn dispatch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let mut retries = 0u64;
        let out = self.config.retry.run(
            || {
                evaluate_sharded(
                    &self.inner,
                    x,
                    self.config.workers,
                    self.config.min_rows_per_shard,
                )
            },
            || retries += 1,
        );
        if retries > 0 {
            self.stats.record_retries(retries);
        }
        out
    }
}

impl<O: Oracle> Oracle for Broker<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.try_query_batch(x)
            .expect("brokered query failed; use try_query_batch to degrade gracefully")
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        self.serve_batch(x)
    }

    /// Underlying query rows issued so far — the paper's `#Q`. Cache hits
    /// are not counted.
    fn query_count(&self) -> u64 {
        self.stats.underlying_queries()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.budget.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};
    use relock_tensor::rng::Prng;

    fn oracle() -> CountingOracle {
        let mut rng = Prng::seed_from_u64(50);
        let model = build_mlp(
            &MlpSpec {
                input: 5,
                hidden: vec![7],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        CountingOracle::new(&model)
    }

    #[test]
    fn cache_hits_are_free_and_bit_exact() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(51);
        let x = rng.normal_tensor([4, 5]);
        let first = broker.query_batch(&x);
        let second = broker.query_batch(&x);
        assert_eq!(first.as_slice(), second.as_slice());
        assert_eq!(o.query_count(), 4, "repeat batch served from cache");
        assert_eq!(broker.query_count(), 4);
        let snap = broker.snapshot();
        assert_eq!(snap.requested, 8);
        assert_eq!(snap.cache_hits, 4);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_batch_duplicates_are_deduplicated() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(52);
        let row = rng.normal_tensor([5]);
        let mut data = Vec::new();
        for _ in 0..6 {
            data.extend_from_slice(row.as_slice());
        }
        let x = Tensor::from_vec(data, [6, 5]);
        let y = broker.query_batch(&x);
        assert_eq!(o.query_count(), 1, "six identical rows → one real query");
        for r in 1..6 {
            assert_eq!(y.row(r), y.row(0));
        }
    }

    #[test]
    fn budget_is_enforced_and_cache_still_serves() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                max_queries: Some(3),
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(53);
        let x = rng.normal_tensor([3, 5]);
        broker.try_query_batch(&x).unwrap();
        assert_eq!(broker.remaining_budget(), Some(0));
        // Fresh rows are refused...
        let err = broker
            .try_query_batch(&rng.normal_tensor([1, 5]))
            .unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        // ...but cached rows still answer: hits are free.
        broker.try_query_batch(&x).unwrap();
        assert_eq!(o.query_count(), 3);
    }

    #[test]
    fn memoize_off_always_hits_backend() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                memoize: false,
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(54);
        let x = rng.normal_tensor([2, 5]);
        broker.query_batch(&x);
        broker.query_batch(&x);
        assert_eq!(o.query_count(), 4);
        assert_eq!(broker.snapshot().cache_hits, 0);
    }

    #[test]
    fn single_query_round_trips_through_the_batch_path() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(55);
        let x = rng.normal_tensor([5]);
        let direct = o.query(&x);
        let brokered = broker.query(&x);
        assert_eq!(direct.as_slice(), brokered.as_slice());
    }
}
