//! The query broker: one front door between an attack and any [`Oracle`].
//!
//! Every request flows through four stages:
//!
//! 1. **Memoization** — each input row is looked up by its bit-exact bytes;
//!    hits are served from cache and never touch the backend (or the
//!    budget). Duplicate rows *within* one batch are deduplicated too.
//! 2. **Budgeting** — the surviving miss rows reserve query budget
//!    all-or-nothing and check the wall-clock deadline; exhaustion surfaces
//!    as a typed [`OracleError`] instead of a panic.
//! 3. **Dispatch** — misses go to the backend as one batch, sharded across
//!    a scoped worker pool when large, retried with backoff on transient
//!    `Backend` failures.
//! 4. **Metrics** — [`QueryStats`] records requested/hit/underlying row
//!    counts (per procedure scope), batch shapes, retries, and backend
//!    latency.
//!
//! **Query accounting semantics:** cache hits are free; underlying queries
//! count per-input-row (an N-row batch costs N). `Oracle::query_count` on a
//! broker reports *underlying* rows — the paper's `#Q` metric — so a broker
//! can replace a bare [`CountingOracle`](relock_locking::CountingOracle) in
//! any harness without inflating Table 1.

use crate::budget::QueryBudget;
use crate::cache::{row_key_ns, MemoCache, RowKey, SharedCache};
use crate::flight::{Claim, FlightEntry, FlightTable};
use crate::pool::evaluate_sharded;
use crate::retry::RetryPolicy;
use crate::stats::{QueryStats, QueryStatsSnapshot};
use relock_locking::{Oracle, OracleError};
use relock_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables of a [`Broker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// Worker threads for large underlying batches (1 = caller thread).
    pub workers: usize,
    /// Minimum rows per worker shard before fanning out.
    pub min_rows_per_shard: usize,
    /// Memoize responses by bit-exact input bytes.
    pub memoize: bool,
    /// Underlying-query budget (`None` = unlimited).
    pub max_queries: Option<u64>,
    /// Wall-clock deadline from broker construction (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Retry policy for transient backend failures.
    pub retry: RetryPolicy,
    /// Byte cap on the private memo cache (`None` = unbounded, the
    /// one-shot attack default). Ignored by
    /// [`Broker::with_shared_cache`], where the shared cache brings its
    /// own cap.
    pub memo_byte_cap: Option<usize>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            workers: 1,
            min_rows_per_shard: 8,
            memoize: true,
            max_queries: None,
            deadline: None,
            retry: RetryPolicy::default(),
            memo_byte_cap: None,
        }
    }
}

/// A batching, memoizing, budgeted, metered front-end over any [`Oracle`].
#[derive(Debug)]
pub struct Broker<O> {
    inner: O,
    config: BrokerConfig,
    cache: Arc<MemoCache>,
    flights: Arc<FlightTable>,
    /// Namespace word prepended to every cache key (shared caches only):
    /// two brokers share entries iff they share both the cache *and* the
    /// namespace, so a process-global table can front different models
    /// without cross-serving their outputs.
    key_ns: Option<u64>,
    budget: QueryBudget,
    stats: QueryStats,
    /// Monotone dispatch counter, used only to salt retry-backoff jitter:
    /// concurrent dispatches that fail together must not retry together.
    dispatch_seq: AtomicU64,
    /// Online override of `min_rows_per_shard` (0 = use the config value).
    /// Sharding only spreads a miss batch across pool workers — results,
    /// accounting, and query counts are invariant to it by the
    /// backend-equivalence contract — so an adaptive controller may
    /// retune this mid-run without perturbing determinism.
    shard_hint: AtomicUsize,
}

impl<O: Oracle> Broker<O> {
    /// Wraps `inner` with default configuration (memoization on, no budget).
    pub fn new(inner: O) -> Self {
        Broker::with_config(inner, BrokerConfig::default())
    }

    /// Wraps `inner` with explicit configuration. The deadline clock starts
    /// now.
    pub fn with_config(inner: O, config: BrokerConfig) -> Self {
        let cache = match config.memo_byte_cap {
            Some(cap) => MemoCache::bounded(cap),
            None => MemoCache::new(),
        };
        Broker {
            inner,
            cache: Arc::new(cache),
            flights: Arc::new(FlightTable::new()),
            key_ns: None,
            budget: QueryBudget::new(config.max_queries, config.deadline),
            stats: QueryStats::new(),
            dispatch_seq: AtomicU64::new(0),
            shard_hint: AtomicUsize::new(0),
            config,
        }
    }

    /// Wraps `inner` on top of a process-global [`SharedCache`] instead of
    /// a private one. `namespace` isolates this broker's entries from
    /// other tenants of the cache: callers fronting the *same* backend
    /// must pass the same namespace (typically a content hash of the
    /// locked model) to share hits, and callers fronting different
    /// backends must pass different namespaces. Budget, deadline, stats,
    /// and retry behaviour stay per-broker.
    pub fn with_shared_cache(
        inner: O,
        config: BrokerConfig,
        shared: &SharedCache,
        namespace: u64,
    ) -> Self {
        Broker {
            inner,
            cache: Arc::clone(&shared.cache),
            flights: Arc::clone(&shared.flights),
            key_ns: Some(namespace),
            budget: QueryBudget::new(config.max_queries, config.deadline),
            stats: QueryStats::new(),
            dispatch_seq: AtomicU64::new(0),
            shard_hint: AtomicUsize::new(0),
            config,
        }
    }

    /// Sets the adaptive dispatch-sharding hint: underlying batches split
    /// into shards of at least `rows` rows instead of the configured
    /// `min_rows_per_shard`. `0` clears the hint. Because sharding never
    /// changes results or query counts, retuning this online keeps every
    /// run bit-identical (see the `shard_hint_*` tests).
    pub fn set_shard_rows(&self, rows: usize) {
        self.shard_hint.store(rows, Ordering::Relaxed);
    }

    /// The current dispatch-sharding hint (0 = none; the config applies).
    pub fn shard_rows_hint(&self) -> usize {
        self.shard_hint.load(Ordering::Relaxed)
    }

    /// Tags subsequent traffic with a procedure label for per-scope
    /// accounting (`None` clears it).
    pub fn set_scope(&self, label: Option<&'static str>) {
        self.stats.set_scope(label);
    }

    /// Live metrics handle.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Point-in-time metrics copy, enriched with the occupancy and
    /// eviction counters of the cache this broker fronts (which may be
    /// process-global and therefore larger than this broker's own
    /// traffic).
    pub fn snapshot(&self) -> QueryStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.cache_evictions = self.cache.evicted_rows();
        snap.cache_rows = self.cache.len() as u64;
        snap.cache_bytes = self.cache.bytes();
        snap
    }

    /// Memoized rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }

    /// Unwraps the backend oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The brokered batch query (stages 1–4 of the module docs).
    fn serve_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let started = Instant::now();
        let rows = x.dims()[0];
        let _batch_span = relock_trace::span("broker.batch", rows as u64);
        let cols = x.dims()[1];
        let q = self.inner.output_dim();

        if !self.config.memoize {
            self.budget.try_reserve(rows as u64)?;
            let y = match self.dispatch(x) {
                Ok(y) => y,
                Err(e) => {
                    // The backend never answered these rows: hand the
                    // reservation back so `#Q` counts answered rows only.
                    self.budget.refund(rows as u64);
                    return Err(e);
                }
            };
            self.stats
                .record_batch(rows as u64, 0, rows as u64, started.elapsed());
            return Ok(y);
        }

        // Stage 1: cache lookup, in-batch dedupe, and single-flight
        // coalescing against concurrent batches. Each round classifies the
        // still-unresolved rows as cache hits, in-batch duplicates (free,
        // like before), *owned* misses (this call claimed the row's flight
        // and will dispatch it), or *foreign* misses (another thread is
        // dispatching the same row right now — wait, then re-resolve; the
        // owner publishes to the cache before completing its flight, so a
        // successful flight turns the next round's lookup into a hit). The
        // round structure is deadlock-free because owned flights are always
        // completed (guards dropped) before any waiting happens.
        let mut resolved: Vec<Option<Box<[f64]>>> = (0..rows).map(|_| None).collect();
        let mut hits = 0u64;
        let mut underlying = 0u64;
        let mut pending: Vec<usize> = (0..rows).collect();
        let mut failure: Option<OracleError> = None;
        while !pending.is_empty() && failure.is_none() {
            let mut miss_rows: Vec<f64> = Vec::new();
            let mut miss_keys: Vec<RowKey> = Vec::new();
            let mut owned_rows: Vec<usize> = Vec::new();
            let mut dups: Vec<(usize, usize)> = Vec::new();
            let mut slot_of: HashMap<RowKey, usize> = HashMap::new();
            let mut guards = Vec::new();
            let mut waiting: Vec<(usize, Arc<FlightEntry>)> = Vec::new();
            // Duplicate rows that point at this round's miss slots are only
            // *served* (and only count as hits) if the round's dispatch
            // succeeds.
            let mut round_dup_hits = 0u64;
            for &r in &pending {
                let row = &x.as_slice()[r * cols..(r + 1) * cols];
                let key = row_key_ns(self.key_ns, row);
                if let Some(hit) = self.cache.get(&key) {
                    hits += 1;
                    resolved[r] = Some(hit);
                    continue;
                }
                if let Some(&slot) = slot_of.get(&key) {
                    round_dup_hits += 1;
                    dups.push((r, slot));
                    continue;
                }
                match self.flights.claim(key.clone()) {
                    Claim::Owner(guard) => {
                        guards.push(guard);
                        slot_of.insert(key.clone(), miss_keys.len());
                        owned_rows.push(r);
                        miss_rows.extend_from_slice(row);
                        miss_keys.push(key);
                    }
                    Claim::Waiter(entry) => waiting.push((r, entry)),
                }
            }

            // Stages 2–3: only owned unique misses are charged and
            // dispatched. On failure the guards drop (releasing waiters to
            // re-claim), any reservation the backend never answered is
            // refunded, and the rounds already served stay on the books —
            // the error is surfaced after partial accounting below.
            let misses = miss_keys.len();
            if misses > 0 {
                match self.budget.try_reserve(misses as u64) {
                    Ok(()) => match self.dispatch(&Tensor::from_vec(
                        std::mem::take(&mut miss_rows),
                        [misses, cols],
                    )) {
                        Ok(my) => {
                            for (i, key) in miss_keys.into_iter().enumerate() {
                                self.cache.insert(key, my.row(i).into());
                            }
                            underlying += misses as u64;
                            hits += round_dup_hits;
                            for (slot, &r) in owned_rows.iter().enumerate() {
                                resolved[r] = Some(my.row(slot).into());
                            }
                            for (r, slot) in dups {
                                resolved[r] = Some(my.row(slot).into());
                            }
                        }
                        Err(e) => {
                            self.budget.refund(misses as u64);
                            failure = Some(e);
                        }
                    },
                    Err(e) => failure = Some(e),
                }
            }
            drop(guards); // publish completions before waiting on anyone

            if failure.is_none() {
                for (_, entry) in &waiting {
                    entry.wait();
                }
                pending = waiting.into_iter().map(|(r, _)| r).collect();
            }
        }

        if let Some(e) = failure {
            // Partial accounting: rows this call *did* serve (cache hits)
            // or dispatch in earlier rounds are real traffic and must stay
            // balanced in the books; rows the failure left unserved are
            // charged to nobody.
            if hits + underlying > 0 {
                self.stats
                    .record_batch(hits + underlying, hits, underlying, started.elapsed());
            }
            return Err(e);
        }

        // Reassemble in request order.
        let mut out = Vec::with_capacity(rows * q);
        for source in &resolved {
            out.extend_from_slice(source.as_ref().expect("every row resolved"));
        }

        // Stage 4: hits = everything not sent to the backend by *this*
        // call — duplicate rows within the batch and rows dispatched by a
        // concurrent owner count as hits, exactly what a sequential
        // interleaving of the same batches would have recorded.
        self.stats
            .record_batch(rows as u64, hits, underlying, started.elapsed());
        Ok(Tensor::from_vec(out, [rows, q]))
    }

    /// Sends a miss batch to the backend under the retry policy and pool.
    fn dispatch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let mut retries = 0u64;
        // Each dispatch salts its own jitter stream: shards that hit the
        // same transient outage back off on decorrelated schedules
        // instead of thundering back at the oracle in lockstep.
        let salt = self.dispatch_seq.fetch_add(1, Ordering::Relaxed);
        let min_rows = match self.shard_hint.load(Ordering::Relaxed) {
            0 => self.config.min_rows_per_shard,
            hint => hint,
        };
        let out = self.config.retry.run_salted(
            || evaluate_sharded(&self.inner, x, self.config.workers, min_rows),
            || retries += 1,
            salt,
        );
        if retries > 0 {
            self.stats.record_retries(retries);
        }
        out
    }
}

impl<O: Oracle> Oracle for Broker<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.try_query_batch(x)
            .expect("brokered query failed; use try_query_batch to degrade gracefully")
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        self.serve_batch(x)
    }

    /// Underlying query rows issued so far — the paper's `#Q`. Cache hits
    /// are not counted.
    fn query_count(&self) -> u64 {
        self.stats.underlying_queries()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.budget.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};
    use relock_tensor::rng::Prng;

    fn oracle() -> CountingOracle {
        let mut rng = Prng::seed_from_u64(50);
        let model = build_mlp(
            &MlpSpec {
                input: 5,
                hidden: vec![7],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        CountingOracle::new(&model)
    }

    #[test]
    fn cache_hits_are_free_and_bit_exact() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(51);
        let x = rng.normal_tensor([4, 5]);
        let first = broker.query_batch(&x);
        let second = broker.query_batch(&x);
        assert_eq!(first.as_slice(), second.as_slice());
        assert_eq!(o.query_count(), 4, "repeat batch served from cache");
        assert_eq!(broker.query_count(), 4);
        let snap = broker.snapshot();
        assert_eq!(snap.requested, 8);
        assert_eq!(snap.cache_hits, 4);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_batch_duplicates_are_deduplicated() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(52);
        let row = rng.normal_tensor([5]);
        let mut data = Vec::new();
        for _ in 0..6 {
            data.extend_from_slice(row.as_slice());
        }
        let x = Tensor::from_vec(data, [6, 5]);
        let y = broker.query_batch(&x);
        assert_eq!(o.query_count(), 1, "six identical rows → one real query");
        for r in 1..6 {
            assert_eq!(y.row(r), y.row(0));
        }
    }

    #[test]
    fn budget_is_enforced_and_cache_still_serves() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                max_queries: Some(3),
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(53);
        let x = rng.normal_tensor([3, 5]);
        broker.try_query_batch(&x).unwrap();
        assert_eq!(broker.remaining_budget(), Some(0));
        // Fresh rows are refused...
        let err = broker
            .try_query_batch(&rng.normal_tensor([1, 5]))
            .unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        // ...but cached rows still answer: hits are free.
        broker.try_query_batch(&x).unwrap();
        assert_eq!(o.query_count(), 3);
    }

    #[test]
    fn memoize_off_always_hits_backend() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                memoize: false,
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(54);
        let x = rng.normal_tensor([2, 5]);
        broker.query_batch(&x);
        broker.query_batch(&x);
        assert_eq!(o.query_count(), 4);
        assert_eq!(broker.snapshot().cache_hits, 0);
    }

    /// A deterministic backend that stalls each dispatch long enough to
    /// force concurrent misses to overlap, and optionally fails the first
    /// few dispatches outright.
    #[derive(Debug)]
    struct SlowOracle {
        calls: std::sync::atomic::AtomicU64,
        rows: std::sync::atomic::AtomicU64,
        fail_first: u64,
        stall: Duration,
    }

    impl SlowOracle {
        fn new(stall: Duration, fail_first: u64) -> Self {
            SlowOracle {
                calls: 0.into(),
                rows: 0.into(),
                fail_first,
                stall,
            }
        }
    }

    impl relock_locking::Oracle for SlowOracle {
        fn query_batch(&self, x: &Tensor) -> Tensor {
            self.try_query_batch(x).expect("scheduled failure")
        }

        fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
            use std::sync::atomic::Ordering;
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.stall);
            if call < self.fail_first {
                return Err(OracleError::Backend {
                    message: "scheduled failure".into(),
                    attempts: 1,
                });
            }
            let rows = x.dims()[0];
            self.rows.fetch_add(rows as u64, Ordering::SeqCst);
            // Echo the first element of each row so responses are checkable.
            let out: Vec<f64> = (0..rows).map(|r| x.get2(r, 0) + 1.0).collect();
            Ok(Tensor::from_vec(out, [rows, 1]))
        }

        fn query_count(&self) -> u64 {
            self.rows.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn input_dim(&self) -> usize {
            2
        }

        fn output_dim(&self) -> usize {
            1
        }
    }

    #[test]
    fn concurrent_identical_misses_coalesce_into_one_underlying_query() {
        let o = SlowOracle::new(Duration::from_millis(20), 0);
        let broker = Broker::new(&o);
        let x = Tensor::from_vec(vec![0.5, 0.25], [1, 2]);
        let n = 8;
        std::thread::scope(|scope| {
            for _ in 0..n {
                let broker = &broker;
                let x = &x;
                scope.spawn(move || {
                    let y = broker.query_batch(x);
                    assert_eq!(y.get2(0, 0), 1.5);
                });
            }
        });
        assert_eq!(
            o.query_count(),
            1,
            "eight concurrent identical misses → one real query"
        );
        let snap = broker.snapshot();
        assert_eq!(snap.requested, n);
        assert_eq!(snap.underlying, 1);
        assert_eq!(snap.cache_hits, n - 1, "waiters account as cache hits");
        assert!(snap.is_balanced());
    }

    #[test]
    fn failed_owner_releases_waiters_who_retake_the_flight() {
        // No retries at the broker level: the first owner's dispatch fails
        // outright, its waiters must wake, re-claim, and succeed.
        let o = SlowOracle::new(Duration::from_millis(10), 1);
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                retry: RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                },
                ..BrokerConfig::default()
            },
        );
        let x = Tensor::from_vec(vec![2.0, 0.0], [1, 2]);
        let n = 6;
        let failures = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..n {
                let broker = &broker;
                let x = &x;
                let failures = &failures;
                scope.spawn(move || match broker.try_query_batch(x) {
                    Ok(y) => assert_eq!(y.get2(0, 0), 3.0),
                    Err(OracleError::Backend { .. }) => {
                        failures.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                });
            }
        });
        assert_eq!(
            failures.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exactly the scheduled failure surfaced, to exactly one caller"
        );
        assert_eq!(o.query_count(), 1, "one successful underlying query");
        let snap = broker.snapshot();
        assert_eq!(snap.underlying, 1);
        assert!(snap.is_balanced());
    }

    /// Satellite regression: a failed dispatch must refund its budget
    /// reservation — the backend never answered, so nothing was spent.
    #[test]
    fn failed_dispatch_refunds_its_reservation() {
        let o = SlowOracle::new(Duration::from_millis(1), 1);
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                max_queries: Some(10),
                retry: RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                },
                ..BrokerConfig::default()
            },
        );
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [4, 2]);
        let err = broker.try_query_batch(&x).unwrap_err();
        assert!(matches!(err, OracleError::Backend { .. }));
        // The failed call charged exactly zero queries.
        assert_eq!(broker.remaining_budget(), Some(10));
        assert_eq!(broker.query_count(), 0);
        assert_eq!(o.query_count(), 0);
        // The retry then charges exactly the four rows, no more.
        broker.try_query_batch(&x).unwrap();
        assert_eq!(broker.remaining_budget(), Some(6));
        assert_eq!(broker.query_count(), 4);
        assert!(broker.snapshot().is_balanced());
    }

    /// Satellite regression: `BudgetExhausted` mid-batch must not charge
    /// the unserved rows, and rows already served from cache stay on the
    /// books — the exact charged-query count is pinned.
    #[test]
    fn budget_exhaustion_mid_batch_charges_only_served_rows() {
        let o = oracle();
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                max_queries: Some(5),
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(56);
        let warm = rng.normal_tensor([2, 5]);
        broker.try_query_batch(&warm).unwrap(); // 2 charged, 2 cached
        assert_eq!(broker.remaining_budget(), Some(3));

        // A batch of the 2 cached rows + 4 fresh ones: the fresh rows
        // can't fit in the remaining budget of 3, so the batch fails — but
        // the 2 cache hits were served and the 4 unserved rows cost nothing.
        let fresh = rng.normal_tensor([4, 5]);
        let mut data = warm.as_slice().to_vec();
        data.extend_from_slice(fresh.as_slice());
        let x = Tensor::from_vec(data, [6, 5]);
        let err = broker.try_query_batch(&x).unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        assert_eq!(broker.query_count(), 2, "exactly the warm-up was charged");
        assert_eq!(broker.remaining_budget(), Some(3));
        assert_eq!(o.query_count(), 2);
        let snap = broker.snapshot();
        assert_eq!(snap.requested, 4, "2 warm-up rows + 2 hits served");
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.underlying, 2);
        assert!(snap.is_balanced());
        // A batch the budget does afford still goes through afterwards.
        broker.try_query_batch(&rng.normal_tensor([3, 5])).unwrap();
        assert_eq!(broker.remaining_budget(), Some(0));
        assert_eq!(broker.query_count(), 5);
    }

    #[test]
    fn shared_cache_is_shared_between_brokers_with_one_namespace() {
        let o = oracle();
        let shared = crate::SharedCache::unbounded();
        let a = Broker::with_shared_cache(&o, BrokerConfig::default(), &shared, 7);
        let b = Broker::with_shared_cache(&o, BrokerConfig::default(), &shared, 7);
        let mut rng = Prng::seed_from_u64(57);
        let x = rng.normal_tensor([3, 5]);
        let ya = a.query_batch(&x);
        let yb = b.query_batch(&x);
        assert_eq!(ya.as_slice(), yb.as_slice());
        assert_eq!(o.query_count(), 3, "second broker served from shared cache");
        assert_eq!(b.snapshot().cache_hits, 3);
        assert_eq!(shared.cached_rows(), 3);
        assert_eq!(shared.evicted_rows(), 0);
    }

    #[test]
    fn shared_cache_namespaces_isolate_different_backends() {
        // Two backends disagreeing on the same input bytes must not serve
        // each other's entries through the shared table.
        let o1 = SlowOracle::new(Duration::ZERO, 0);
        let o2 = SlowOracle::new(Duration::ZERO, 0);
        let shared = crate::SharedCache::unbounded();
        let a = Broker::with_shared_cache(&o1, BrokerConfig::default(), &shared, 1);
        let b = Broker::with_shared_cache(&o2, BrokerConfig::default(), &shared, 2);
        let x = Tensor::from_vec(vec![0.5, 0.25], [1, 2]);
        a.query_batch(&x);
        b.query_batch(&x);
        assert_eq!(o1.query_count(), 1);
        assert_eq!(
            o2.query_count(),
            1,
            "namespace 2 missed namespace 1's entry"
        );
        assert_eq!(shared.cached_rows(), 2);
        assert_eq!(b.snapshot().cache_hits, 0);
    }

    #[test]
    fn snapshot_surfaces_eviction_counters() {
        let o = oracle();
        // A cap far below the traffic forces evictions on the private
        // cache path too.
        let broker = Broker::with_config(
            &o,
            BrokerConfig {
                memo_byte_cap: Some(1024),
                ..BrokerConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(58);
        for _ in 0..8 {
            broker.query_batch(&rng.normal_tensor([8, 5]));
        }
        let snap = broker.snapshot();
        assert!(snap.cache_evictions > 0, "1 KiB cap must evict");
        assert!(snap.cache_rows > 0);
        assert!(snap.cache_bytes > 0);
        // With a sub-entry-size per-shard cap each shard retains exactly
        // its newest entry (self-eviction is forbidden).
        assert!(snap.cache_rows <= 16);
        assert!(snap.is_balanced());
    }

    /// The shard hint must never change results or accounting — only how
    /// a miss batch spreads across pool workers. Equal outputs and equal
    /// books across hint settings are what lets an adaptive controller
    /// retune it online without breaking bit-identical determinism.
    #[test]
    fn shard_hint_is_result_and_accounting_invariant() {
        let o1 = oracle();
        let o2 = oracle();
        let reference = Broker::with_config(
            &o1,
            BrokerConfig {
                workers: 4,
                ..BrokerConfig::default()
            },
        );
        let hinted = Broker::with_config(
            &o2,
            BrokerConfig {
                workers: 4,
                ..BrokerConfig::default()
            },
        );
        assert_eq!(hinted.shard_rows_hint(), 0);
        hinted.set_shard_rows(2);
        assert_eq!(hinted.shard_rows_hint(), 2);
        let mut rng = Prng::seed_from_u64(59);
        for rows in [1usize, 5, 16, 33] {
            let x = rng.normal_tensor([rows, 5]);
            let a = reference.query_batch(&x);
            let b = hinted.query_batch(&x);
            assert_eq!(a.as_slice(), b.as_slice(), "rows {rows}");
            // Retune mid-run: still invariant.
            hinted.set_shard_rows(64);
        }
        let ra = reference.snapshot();
        let mut rb = hinted.snapshot();
        rb.oracle_time = ra.oracle_time;
        assert_eq!(ra, rb, "books must not see the hint");
        assert_eq!(o1.query_count(), o2.query_count());
    }

    #[test]
    fn single_query_round_trips_through_the_batch_path() {
        let o = oracle();
        let broker = Broker::new(&o);
        let mut rng = Prng::seed_from_u64(55);
        let x = rng.normal_tensor([5]);
        let direct = o.query(&x);
        let brokered = broker.query(&x);
        assert_eq!(direct.as_slice(), brokered.as_slice());
    }
}
