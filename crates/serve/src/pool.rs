//! The broker's batched worker pool.
//!
//! Large harvest batches (the §3.6 learning attack pulls hundreds of rows
//! at once) are split into row shards and evaluated on scoped worker
//! threads, then reassembled in request order. Scoped threads
//! (`std::thread::scope`) let the pool borrow the oracle directly — no
//! `Arc`, no `'static` bound on the backend.

use relock_locking::{Oracle, OracleError};
use relock_tensor::compute::split_rows;
use relock_tensor::Tensor;
use std::sync::mpsc;

/// Evaluates a `(B, P)` batch against `inner`, sharding rows across up to
/// `workers` scoped threads when the batch is large enough to amortize the
/// spawn cost (`min_rows_per_shard` rows per shard). Row order of the
/// result matches the request. On any shard failure the first error (by
/// shard index) is returned; other shards may still have issued queries —
/// budget accounting remains exact because every shard reserved before
/// issuing.
pub(crate) fn evaluate_sharded<O: Oracle + ?Sized>(
    inner: &O,
    x: &Tensor,
    workers: usize,
    min_rows_per_shard: usize,
) -> Result<Tensor, OracleError> {
    let rows = x.dims()[0];
    let cols = x.dims()[1];
    // Same row partitioning as the tensor kernels' thread split — the pool
    // and the compute layer shard identically, so a backend that is itself
    // a planned-graph evaluation sees the same batch shapes either way.
    let ranges = split_rows(rows, workers, min_rows_per_shard);
    if ranges.len() <= 1 {
        return inner.try_query_batch(x);
    }
    let shards = ranges.len();

    let (tx, rx) = mpsc::channel::<(usize, Result<Tensor, OracleError>)>();
    std::thread::scope(|scope| {
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let shard =
                    Tensor::from_vec(x.as_slice()[lo * cols..hi * cols].to_vec(), [hi - lo, cols]);
                let _ = tx.send((s, inner.try_query_batch(&shard)));
            });
        }
    });
    drop(tx);

    let mut results: Vec<Option<Result<Tensor, OracleError>>> = (0..shards).map(|_| None).collect();
    for (s, r) in rx {
        results[s] = Some(r);
    }

    let mut out = Vec::with_capacity(rows * inner.output_dim());
    for r in results {
        let shard = r.expect("every shard reports exactly once")?;
        out.extend_from_slice(shard.as_slice());
    }
    let q = out.len() / rows.max(1);
    Ok(Tensor::from_vec(out, [rows, q]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};
    use relock_tensor::rng::Prng;

    fn oracle() -> CountingOracle {
        let mut rng = Prng::seed_from_u64(40);
        let model = build_mlp(
            &MlpSpec {
                input: 6,
                hidden: vec![8],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        CountingOracle::new(&model)
    }

    #[test]
    fn sharded_matches_direct_bit_exactly() {
        let o = oracle();
        let mut rng = Prng::seed_from_u64(41);
        let x = rng.normal_tensor([37, 6]);
        let direct = o.query_batch(&x);
        for workers in [1usize, 2, 4, 7] {
            let sharded = evaluate_sharded(&o, &x, workers, 2).unwrap();
            assert_eq!(sharded.dims(), direct.dims());
            assert_eq!(sharded.as_slice(), direct.as_slice(), "workers={workers}");
        }
    }

    #[test]
    fn small_batches_stay_on_the_caller_thread() {
        let o = oracle();
        let mut rng = Prng::seed_from_u64(42);
        // 3 rows with min 8 per shard → single direct call.
        let x = rng.normal_tensor([3, 6]);
        let y = evaluate_sharded(&o, &x, 8, 8).unwrap();
        assert_eq!(y.dims(), [3, 3]);
        assert_eq!(o.query_count(), 3);
    }

    #[test]
    fn every_row_is_counted_once() {
        let o = oracle();
        let mut rng = Prng::seed_from_u64(43);
        let x = rng.normal_tensor([50, 6]);
        evaluate_sharded(&o, &x, 4, 4).unwrap();
        assert_eq!(o.query_count(), 50);
    }
}
