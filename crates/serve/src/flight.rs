//! Single-flight coordination for concurrent identical cache misses.
//!
//! When the parallel attack shards a layer across workers, several workers
//! routinely miss the memo cache on the *same* input row at the same time
//! (e.g. the shared witness inputs of validation). Without coordination
//! each would dispatch its own underlying query, inflating the paper's
//! `#Q` metric relative to the sequential attack — and making query
//! accounting thread-count-dependent, which would break the determinism
//! contract of DESIGN.md §3e.
//!
//! A [`FlightTable`] fixes this: the first worker to miss a row **claims**
//! it and becomes the owner; everyone else missing the same row becomes a
//! waiter. The owner dispatches the row, publishes the response to the
//! memo cache, and *then* completes the flight; waiters wake, re-read the
//! cache, and account the row as a cache hit — exactly what a sequential
//! run would have recorded for the later of two identical queries.
//!
//! **Failure path:** completion happens in the owner's [`FlightGuard`]
//! drop, so a budget refusal, backend error, or panic still releases
//! waiters; they find no cache entry and re-enter the claim race, where
//! one of them becomes the new owner. Ownership therefore never leaks.
//!
//! **No deadlock:** a broker round first dispatches and completes every
//! flight it owns, and only then waits on flights owned by others, so a
//! wait can never form a cycle with a flight the waiter is obligated to
//! complete.

use crate::cache::RowKey;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight row: waiters block on the condvar until the owner's
/// guard marks it done.
#[derive(Debug, Default)]
pub(crate) struct FlightEntry {
    done: Mutex<bool>,
    signal: Condvar,
}

impl FlightEntry {
    /// Blocks until the owning worker completes (or abandons) the flight.
    /// On return the caller must re-check the memo cache: a completed
    /// flight guarantees a cache entry, an abandoned one does not.
    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().expect("flight entry poisoned");
        while !*done {
            done = self.signal.wait(done).expect("flight entry poisoned");
        }
    }

    fn complete(&self) {
        *self.done.lock().expect("flight entry poisoned") = true;
        self.signal.notify_all();
    }
}

/// The outcome of claiming a missed row.
pub(crate) enum Claim {
    /// This worker owns the row: it must dispatch it, publish the result
    /// to the cache, then drop the guard.
    Owner(FlightGuard),
    /// Another worker owns the row: wait on the entry, then re-resolve.
    Waiter(Arc<FlightEntry>),
}

/// A registry of rows currently being dispatched by some worker.
#[derive(Debug, Default)]
pub(crate) struct FlightTable {
    inflight: Mutex<HashMap<RowKey, Arc<FlightEntry>>>,
}

impl FlightTable {
    pub(crate) fn new() -> Self {
        FlightTable::default()
    }

    /// Claims a missed row: the first claimant becomes the owner, later
    /// claimants get the owner's entry to wait on.
    pub(crate) fn claim(self: &Arc<Self>, key: RowKey) -> Claim {
        let mut inflight = self.inflight.lock().expect("flight table poisoned");
        if let Some(entry) = inflight.get(&key) {
            return Claim::Waiter(Arc::clone(entry));
        }
        let entry = Arc::new(FlightEntry::default());
        inflight.insert(key.clone(), Arc::clone(&entry));
        Claim::Owner(FlightGuard {
            table: Arc::clone(self),
            key,
            entry,
        })
    }

    /// Rows currently owned by some worker (diagnostic; 0 when quiescent).
    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> usize {
        self.inflight.lock().expect("flight table poisoned").len()
    }
}

/// Ownership of one in-flight row; completing (dropping) it deregisters
/// the row and wakes every waiter.
#[derive(Debug)]
pub(crate) struct FlightGuard {
    table: Arc<FlightTable>,
    key: RowKey,
    entry: Arc<FlightEntry>,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        self.table
            .inflight
            .lock()
            .expect("flight table poisoned")
            .remove(&self.key);
        self.entry.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::row_key;

    #[test]
    fn first_claim_owns_later_claims_wait() {
        let table = Arc::new(FlightTable::new());
        let key = row_key(&[1.0, 2.0]);
        let owner = match table.claim(key.clone()) {
            Claim::Owner(g) => g,
            Claim::Waiter(_) => panic!("first claim must own"),
        };
        assert_eq!(table.in_flight(), 1);
        let waiter = match table.claim(key.clone()) {
            Claim::Owner(_) => panic!("second claim must wait"),
            Claim::Waiter(e) => e,
        };
        drop(owner);
        waiter.wait(); // must not block: owner completed
        assert_eq!(table.in_flight(), 0);
        // After completion the key is claimable again (failed-owner path).
        assert!(matches!(table.claim(key), Claim::Owner(_)));
    }

    #[test]
    fn panicking_owner_still_releases_waiters() {
        // The guard completes in Drop, which runs during unwinding too: a
        // leader that panics mid-dispatch must not strand its waiters, and
        // the key must be re-claimable afterwards.
        let table = Arc::new(FlightTable::new());
        let key = row_key(&[9.0, -9.0]);
        std::thread::scope(|scope| {
            let owner_panics = {
                let table = Arc::clone(&table);
                let key = key.clone();
                scope.spawn(move || {
                    let _guard = match table.claim(key) {
                        Claim::Owner(g) => g,
                        Claim::Waiter(_) => panic!("first claim must own"),
                    };
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    std::panic::panic_any("scheduled leader death");
                })
            };
            // Give the owner time to claim, then wait on its flight.
            std::thread::sleep(std::time::Duration::from_millis(2));
            if let Claim::Waiter(e) = table.claim(key.clone()) {
                e.wait(); // released by the unwinding owner's guard drop
            }
            assert!(owner_panics.join().is_err(), "owner really panicked");
        });
        assert_eq!(table.in_flight(), 0);
        assert!(
            matches!(table.claim(key), Claim::Owner(_)),
            "key is claimable again after the owner's panic"
        );
    }

    #[test]
    fn waiters_are_released_across_threads() {
        let table = Arc::new(FlightTable::new());
        let key = row_key(&[3.5]);
        let owner = match table.claim(key.clone()) {
            Claim::Owner(g) => g,
            Claim::Waiter(_) => panic!("first claim must own"),
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let table = &table;
                    let key = key.clone();
                    scope.spawn(move || match table.claim(key) {
                        Claim::Owner(_) => panic!("owner is still alive"),
                        Claim::Waiter(e) => e.wait(),
                    })
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(owner);
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(table.in_flight(), 0);
    }
}
