//! Deterministic fault injection for soak-testing attacks.
//!
//! A multi-hour oracle-bound attack has to survive flaky links, slow
//! backends, garbled responses, and outright process death. [`ChaosOracle`]
//! wraps any [`Oracle`] and injects exactly those faults on a *seeded,
//! reproducible schedule*, so a soak test can kill an attack at query
//! 1 000, resume it from a checkpoint, and still assert bit-identical
//! results — the schedule is a pure function of the seed and the call
//! sequence, never of wall clock or OS scheduling.
//!
//! Four fault kinds, all driven by one [`ChaosConfig`]:
//!
//! - **Transient errors** — a call fails with [`OracleError::Backend`]
//!   (the broker's retry policy is expected to absorb these);
//! - **Latency spikes** — a call sleeps before answering;
//! - **Response corruption** — outputs are quantized or get low mantissa
//!   bits flipped ([`Corruption`]), modelling a garbling link;
//! - **Crash-at-query-N** — when cumulative underlying rows reach a
//!   scheduled point the oracle panics with a [`ChaosCrash`] payload,
//!   simulating process death mid-flight. Soak harnesses catch the unwind
//!   (`std::panic::catch_unwind`) and resume from the last checkpoint.
//!
//! Injected-fault counts are tracked per kind ([`ChaosCounters`]) and can
//! be published into a broker's [`QueryStats`] with
//! [`ChaosOracle::sync_stats`], so attack reports show scheduled damage
//! next to organic retries.

use crate::stats::QueryStats;
use relock_locking::{Oracle, OracleError};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::sync::Mutex;
use std::time::Duration;

/// How a corrupted response is damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Round every output to this many decimal places (precision loss).
    Quantize {
        /// Decimal places kept.
        decimals: u32,
    },
    /// XOR this many low mantissa bits of every output with schedule-drawn
    /// random bits (a garbling transport; relative error ≈ 2^(bits−52)).
    PerturbMantissa {
        /// Low mantissa bits subject to flipping (1..=52).
        bits: u32,
    },
}

/// Tunables of the fault schedule. All rates are per `try_query_batch`
/// call and must be finite probabilities in `[0, 1]`; `transient_rate`
/// must stay below 1 so the infallible surface terminates.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the schedule; same seed ⇒ same fault sequence.
    pub seed: u64,
    /// Probability a call fails with a transient [`OracleError::Backend`].
    pub transient_rate: f64,
    /// Probability a call sleeps for [`ChaosConfig::latency_spike`].
    pub latency_spike_rate: f64,
    /// Length of an injected latency spike.
    pub latency_spike: Duration,
    /// Probability a call's response batch is corrupted.
    pub corrupt_rate: f64,
    /// Damage applied to corrupted responses.
    pub corruption: Corruption,
    /// Cumulative underlying-row counts at which the oracle "crashes"
    /// (panics with [`ChaosCrash`]). Sorted and deduplicated on
    /// construction; each point fires once.
    pub crash_at: Vec<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            transient_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::from_millis(1),
            corrupt_rate: 0.0,
            corruption: Corruption::Quantize { decimals: 6 },
            crash_at: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// A schedule that only crashes at the given cumulative row counts —
    /// the kill-and-resume soak configuration.
    pub fn crash_only(seed: u64, crash_at: Vec<u64>) -> Self {
        ChaosConfig {
            seed,
            crash_at,
            ..ChaosConfig::default()
        }
    }
}

/// Injected faults so far, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Calls failed with a transient backend error.
    pub transient_errors: u64,
    /// Calls delayed by a latency spike.
    pub latency_spikes: u64,
    /// Response batches corrupted.
    pub corrupted_batches: u64,
    /// Scheduled crashes fired.
    pub crashes: u64,
}

impl ChaosCounters {
    /// Total faults across all kinds.
    pub fn total(&self) -> u64 {
        self.transient_errors + self.latency_spikes + self.corrupted_batches + self.crashes
    }
}

/// Panic payload of a scheduled crash. Soak harnesses catch the unwind and
/// downcast to this to tell an injected crash from a genuine bug:
///
/// ```ignore
/// let crash = std::panic::catch_unwind(|| attack.run(...)).unwrap_err();
/// let crash = crash.downcast::<ChaosCrash>().expect("scheduled crash");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosCrash {
    /// The scheduled cumulative-row point that fired.
    pub at_rows: u64,
}

#[derive(Debug, Default)]
struct ChaosState {
    /// `try_query_batch` calls seen (indexes the per-call schedule).
    calls: u64,
    /// Cumulative underlying rows forwarded to the backend.
    rows: u64,
    /// Next entry of `crash_at` to fire.
    next_crash: usize,
    counters: ChaosCounters,
    /// Faults already published via `sync_stats`.
    published: u64,
}

/// Per-call fault decisions, resolved before any side effect.
struct CallPlan {
    transient: bool,
    spike: bool,
    corrupt: bool,
    rng: Prng,
}

/// An [`Oracle`] wrapper that injects faults on a deterministic, seeded
/// schedule. See the module docs for the fault catalogue.
///
/// The schedule is indexed by the call sequence: call `k`'s fate is drawn
/// from a generator seeded with `seed ⊕ f(k)`, so two runs issuing the
/// same calls see the same faults, independent of timing or threads.
#[derive(Debug)]
pub struct ChaosOracle<O> {
    inner: O,
    cfg: ChaosConfig,
    state: Mutex<ChaosState>,
}

impl<O: Oracle> ChaosOracle<O> {
    /// Wraps `inner` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any rate is not a finite probability in `[0, 1]`, if
    /// `transient_rate` is 1 (the infallible surface could never answer),
    /// or if the corruption mode is degenerate (0 decimals kept is fine;
    /// mantissa bits outside `1..=52` are not).
    pub fn new(inner: O, mut cfg: ChaosConfig) -> Self {
        for (name, rate) in [
            ("transient_rate", cfg.transient_rate),
            ("latency_spike_rate", cfg.latency_spike_rate),
            ("corrupt_rate", cfg.corrupt_rate),
        ] {
            assert!(
                rate.is_finite() && (0.0..=1.0).contains(&rate),
                "ChaosConfig::{name} must be a probability in [0, 1], got {rate}"
            );
        }
        assert!(
            cfg.transient_rate < 1.0,
            "ChaosConfig::transient_rate must be < 1 so queries can succeed"
        );
        if let Corruption::PerturbMantissa { bits } = cfg.corruption {
            assert!(
                (1..=52).contains(&bits),
                "PerturbMantissa bits must be in 1..=52, got {bits}"
            );
        }
        cfg.crash_at.sort_unstable();
        cfg.crash_at.dedup();
        ChaosOracle {
            inner,
            cfg,
            state: Mutex::new(ChaosState::default()),
        }
    }

    /// Unwraps the backend oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Injected-fault counts so far.
    pub fn counters(&self) -> ChaosCounters {
        self.state.lock().expect("chaos state poisoned").counters
    }

    /// Publishes the injected-fault total into `stats` (delta since the
    /// last sync, so repeated calls never double-count). Harnesses call
    /// this before snapshotting a broker so reports carry the
    /// `injected_faults` column.
    pub fn sync_stats(&self, stats: &QueryStats) {
        let mut state = self.state.lock().expect("chaos state poisoned");
        let total = state.counters.total();
        let delta = total - state.published;
        state.published = total;
        drop(state);
        if delta > 0 {
            stats.record_injected_faults(delta);
        }
    }

    /// Draws call `k`'s fate. SplitMix-style mixing keeps neighbouring
    /// call indices statistically independent.
    fn plan(&self, k: u64) -> CallPlan {
        let mut rng =
            Prng::seed_from_u64(self.cfg.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        // Fixed draw order — the schedule must not depend on which faults
        // are enabled.
        let u_transient = rng.uniform();
        let u_spike = rng.uniform();
        let u_corrupt = rng.uniform();
        CallPlan {
            transient: u_transient < self.cfg.transient_rate,
            spike: u_spike < self.cfg.latency_spike_rate,
            corrupt: u_corrupt < self.cfg.corrupt_rate,
            rng,
        }
    }

    fn corrupt(&self, y: &mut Tensor, rng: &mut Prng) {
        match self.cfg.corruption {
            Corruption::Quantize { decimals } => {
                let scale = 10f64.powi(decimals as i32);
                for v in y.as_mut_slice() {
                    *v = (*v * scale).round() / scale;
                }
            }
            Corruption::PerturbMantissa { bits } => {
                let mask = (1u64 << bits) - 1;
                for v in y.as_mut_slice() {
                    let flips = rng.next_u64() & mask;
                    *v = f64::from_bits(v.to_bits() ^ flips);
                }
            }
        }
    }
}

impl<O: Oracle> Oracle for ChaosOracle<O> {
    /// The infallible surface resubmits through transient faults (like a
    /// caller blindly retrying a dropped request); crashes and corruption
    /// still apply.
    fn query_batch(&self, x: &Tensor) -> Tensor {
        loop {
            match self.try_query_batch(x) {
                Ok(y) => return y,
                Err(OracleError::Backend { .. }) => continue,
                Err(e) => panic!("chaos oracle backend failed non-transiently: {e}"),
            }
        }
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let rows = x.dims()[0] as u64;
        let mut state = self.state.lock().expect("chaos state poisoned");
        let k = state.calls;
        state.calls += 1;
        let mut plan = self.plan(k);
        if plan.transient {
            state.counters.transient_errors += 1;
            return Err(OracleError::Backend {
                message: format!("chaos: injected transient fault (call {k})"),
                attempts: 1,
            });
        }
        // A scheduled crash fires when this batch would reach the point:
        // the process "dies" mid-flight, before any row is answered.
        if let Some(&point) = self.cfg.crash_at.get(state.next_crash) {
            if state.rows + rows >= point {
                state.next_crash += 1;
                state.counters.crashes += 1;
                // Release the lock before unwinding so the wrapper stays
                // usable after `catch_unwind` (the soak test resumes
                // against the same chaos session).
                drop(state);
                std::panic::panic_any(ChaosCrash { at_rows: point });
            }
        }
        if plan.spike {
            state.counters.latency_spikes += 1;
        }
        let corrupting = plan.corrupt;
        if corrupting {
            state.counters.corrupted_batches += 1;
        }
        state.rows += rows;
        drop(state);
        if plan.spike && !self.cfg.latency_spike.is_zero() {
            std::thread::sleep(self.cfg.latency_spike);
        }
        let mut y = self.inner.try_query_batch(x)?;
        if corrupting {
            self.corrupt(&mut y, &mut plan.rng);
        }
        Ok(y)
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.inner.remaining_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_graph::{GraphBuilder, KeySlot, Op, UnitLayout};
    use relock_locking::{CountingOracle, Key, LockedModel};

    fn model() -> LockedModel {
        let mut rng = Prng::seed_from_u64(600);
        let mut gb = GraphBuilder::new();
        let x = gb.input(3);
        let lin = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([4, 3]),
                    b: rng.normal_tensor([4]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let keyed = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(4),
                    slots: vec![Some(KeySlot(0)), None, None, None],
                },
                &[lin],
            )
            .unwrap();
        let relu = gb.add(Op::Relu, &[keyed]).unwrap();
        let out = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([2, 4]),
                    b: rng.normal_tensor([2]),
                    weight_locks: vec![],
                },
                &[relu],
            )
            .unwrap();
        LockedModel::new(gb.build(out).unwrap(), Key::from_bits(vec![true]))
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let m = model();
        let cfg = ChaosConfig {
            seed: 99,
            transient_rate: 0.4,
            corrupt_rate: 0.3,
            ..ChaosConfig::default()
        };
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let o = ChaosOracle::new(CountingOracle::new(&m), cfg.clone());
            let mut rng = Prng::seed_from_u64(601);
            let mut run: Vec<Result<Vec<u8>, String>> = Vec::new();
            for _ in 0..32 {
                let x = rng.normal_tensor([2, 3]);
                run.push(
                    o.try_query_batch(&x)
                        .map(|y| {
                            y.as_slice()
                                .iter()
                                .flat_map(|v| v.to_le_bytes())
                                .collect::<Vec<u8>>()
                        })
                        .map_err(|e| e.to_string()),
                );
            }
            outcomes.push((run, o.counters()));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(
            outcomes[0].1.transient_errors > 0,
            "schedule injected nothing"
        );
        assert!(outcomes[0].1.corrupted_batches > 0);
    }

    #[test]
    fn crash_fires_once_at_scheduled_rows_and_session_survives() {
        let m = model();
        let o = ChaosOracle::new(CountingOracle::new(&m), ChaosConfig::crash_only(1, vec![5]));
        let mut rng = Prng::seed_from_u64(602);
        let x1 = rng.normal_tensor([3, 3]);
        o.try_query_batch(&x1).unwrap();
        let x2 = rng.normal_tensor([3, 3]);
        let crash =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| o.try_query_batch(&x2)))
                .unwrap_err();
        let crash = crash.downcast::<ChaosCrash>().expect("chaos payload");
        assert_eq!(crash.at_rows, 5);
        assert_eq!(o.counters().crashes, 1);
        // The crashed batch was never answered or counted…
        assert_eq!(o.query_count(), 3);
        // …and the same session keeps serving after the "restart".
        o.try_query_batch(&x2).unwrap();
        assert_eq!(o.query_count(), 6);
        assert_eq!(o.counters().crashes, 1, "each point fires once");
    }

    #[test]
    fn corruption_modes_damage_but_preserve_shape() {
        let m = model();
        let base = CountingOracle::new(&m);
        let mut rng = Prng::seed_from_u64(603);
        let x = rng.normal_tensor([1, 3]);
        let clean = m.logits(&Tensor::from_slice(x.row(0)));
        for corruption in [
            Corruption::Quantize { decimals: 1 },
            Corruption::PerturbMantissa { bits: 20 },
        ] {
            let o = ChaosOracle::new(
                &base,
                ChaosConfig {
                    seed: 5,
                    corrupt_rate: 1.0,
                    corruption,
                    ..ChaosConfig::default()
                },
            );
            let y = o.try_query_batch(&x).unwrap();
            assert_eq!(y.dims(), [1, 2]);
            let diff = clean.max_abs_diff(&Tensor::from_slice(y.row(0)));
            assert!(diff > 0.0, "corruption {corruption:?} changed nothing");
            assert!(
                diff < 0.1,
                "corruption {corruption:?} diff {diff} too large"
            );
        }
    }

    #[test]
    fn sync_stats_publishes_deltas_once() {
        let m = model();
        let o = ChaosOracle::new(
            CountingOracle::new(&m),
            ChaosConfig {
                seed: 7,
                transient_rate: 0.5,
                ..ChaosConfig::default()
            },
        );
        let mut rng = Prng::seed_from_u64(604);
        for _ in 0..16 {
            let _ = o.try_query_batch(&rng.normal_tensor([1, 3]));
        }
        let stats = QueryStats::new();
        o.sync_stats(&stats);
        o.sync_stats(&stats);
        let faults = o.counters().total();
        assert!(faults > 0);
        assert_eq!(stats.snapshot().injected_faults, faults);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_out_of_range_rate() {
        let m = model();
        ChaosOracle::new(
            CountingOracle::new(&m),
            ChaosConfig {
                corrupt_rate: 1.5,
                ..ChaosConfig::default()
            },
        );
    }
}
