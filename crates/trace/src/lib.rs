//! Flight-recorder observability: a zero-dependency structured-event
//! layer (DESIGN.md §3f).
//!
//! Hot paths — gemm kernels, broker batches, sharded workers — call
//! [`counter`] and [`span`] unconditionally. When no recorder is
//! installed (the default, equivalent to [`NullRecorder`]) each call is
//! one relaxed atomic load and a predicted branch: no clock read, no
//! allocation, no lock. That is the *no-overhead-when-disabled contract*:
//! the planned-execution and parallel-equivalence property suites must
//! pass unchanged with instrumentation compiled in, and the engine's
//! bit-identical determinism contract is untouched because tracing never
//! feeds back into computation.
//!
//! The recorder is process-global, like the `log` crate's logger:
//! [`install`] a [`Recorder`] (typically a [`FlightRecorder`]), run the
//! workload, [`uninstall`] and drain. Events carry `&'static str` labels
//! from a fixed catalogue (see DESIGN.md §3f) and encode to JSONL via
//! [`Event::to_jsonl`]; a captured file parses back into typed events,
//! paired spans, and per-`(label, scope)` counter books via [`Trace`].
//!
//! ```
//! use std::sync::Arc;
//!
//! let flight = Arc::new(relock_trace::FlightRecorder::new());
//! relock_trace::install(flight.clone());
//! {
//!     let _span = relock_trace::span("example.work", 7);
//!     relock_trace::counter("example.items", 3);
//! }
//! relock_trace::uninstall();
//! assert_eq!(flight.counter_total("example.items"), 3);
//! assert_eq!(flight.span_count("example.work"), 1);
//! ```

pub mod json;

mod event;
mod flight;
mod reader;

pub use event::{Event, Label};
pub use flight::FlightRecorder;
pub use reader::{SpanRecord, Trace, TraceReadError};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A sink for structured events. Implementations must be cheap and
/// non-blocking enough to sit on the attack's hot paths while enabled,
/// and must never panic into the instrumented code.
pub trait Recorder: Send + Sync {
    /// Receives one event. Called from any thread.
    fn record(&self, event: Event);
}

/// Discards every event. Installing it still exercises the full event
/// construction path (ids, timestamps), which the instrumented-equivalence
/// tests use to prove tracing cannot perturb the attack.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// The disabled fast path is a single relaxed load of this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process's first event — the `t` field of every
/// event. Only read while a recorder is enabled.
fn now_nanos() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Installs `recorder` as the process-global event sink and enables the
/// instrumentation. Replaces any previous recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    let mut slot = RECORDER.write().expect("recorder slot poisoned");
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables the instrumentation and returns the previous recorder, if
/// any. In-flight span guards finish silently.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    let mut slot = RECORDER.write().expect("recorder slot poisoned");
    ENABLED.store(false, Ordering::SeqCst);
    slot.take()
}

/// Whether a recorder is installed. This is the hot-path gate: one
/// relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn emit(event: Event) {
    if let Some(recorder) = RECORDER.read().expect("recorder slot poisoned").as_ref() {
        recorder.record(event);
    }
}

/// Records a counter increment. A no-op (one atomic load) when disabled.
#[inline(always)]
pub fn counter(label: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    emit(Event::Counter {
        label: Label::Borrowed(label),
        scope: None,
        value,
        t: now_nanos(),
    });
}

/// Records a counter increment tagged with a procedure scope (the
/// broker's per-scope accounting labels). A no-op when disabled.
#[inline(always)]
pub fn scoped_counter(label: &'static str, scope: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    emit(Event::Counter {
        label: Label::Borrowed(label),
        scope: Some(Label::Borrowed(scope)),
        value,
        t: now_nanos(),
    });
}

/// Opens a span; the returned guard emits the matching end event on drop.
/// A no-op guard (no events, no clock reads) when disabled.
#[inline(always)]
#[must_use = "the span closes when the guard drops"]
pub fn span(label: &'static str, arg: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0, label };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    emit(Event::SpanBegin {
        id,
        label: Label::Borrowed(label),
        arg,
        t: now_nanos(),
    });
    SpanGuard { id, label }
}

/// RAII guard of an open span (see [`span`]). `id == 0` marks a guard
/// created while disabled, which stays silent on drop.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    label: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        emit(Event::SpanEnd {
            id: self.id,
            label: Label::Borrowed(self.label),
            t: now_nanos(),
        });
    }
}

/// Installs `recorder`, runs `f`, and uninstalls again — even if `f`
/// panics, so a poisoned test cannot leave the global recorder armed.
pub fn with_recorder<T>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            uninstall();
        }
    }
    install(recorder);
    let _disarm = Disarm;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The recorder slot is process-global, so tests that install one are
    /// serialized through this lock (the harness runs tests on threads of
    /// one process).
    static GLOBAL_RECORDER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_calls_record_nothing() {
        let _guard = GLOBAL_RECORDER_LOCK.lock().unwrap();
        assert!(!enabled());
        counter("test.counter", 1);
        scoped_counter("test.counter", "scope", 1);
        let _span = span("test.span", 0);
        drop(_span);
        // Nothing observable happened; installing now must start empty.
        let flight = Arc::new(FlightRecorder::new());
        install(flight.clone());
        uninstall();
        assert!(flight.is_empty());
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let _guard = GLOBAL_RECORDER_LOCK.lock().unwrap();
        let flight = Arc::new(FlightRecorder::new());
        with_recorder(flight.clone(), || {
            let _outer = span("test.outer", 1);
            {
                let _inner = span("test.inner", 2);
                counter("test.work", 5);
                counter("test.work", 7);
                scoped_counter("test.rows", "learning_attack", 3);
            }
        });
        assert!(!enabled());
        let events = flight.events();
        assert_eq!(events.len(), 7);
        assert_eq!(flight.counter_total("test.work"), 12);
        assert_eq!(flight.span_count("test.outer"), 1);
        assert_eq!(flight.span_count("test.inner"), 1);
        // Begin/end ids pair up and close innermost-first.
        let begin_id = |label: &str| {
            events
                .iter()
                .find_map(|e| match e {
                    Event::SpanBegin { id, label: l, .. } if l == label => Some(*id),
                    _ => None,
                })
                .unwrap()
        };
        let end_pos = |want: u64| {
            events
                .iter()
                .position(|e| matches!(e, Event::SpanEnd { id, .. } if *id == want))
                .unwrap()
        };
        assert!(end_pos(begin_id("test.inner")) < end_pos(begin_id("test.outer")));
        // Timestamps are monotone in arrival order.
        let stamps: Vec<u64> = events
            .iter()
            .map(|e| match e {
                Event::SpanBegin { t, .. }
                | Event::SpanEnd { t, .. }
                | Event::Counter { t, .. } => *t,
            })
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn with_recorder_uninstalls_on_panic() {
        let _guard = GLOBAL_RECORDER_LOCK.lock().unwrap();
        let result = std::panic::catch_unwind(|| {
            with_recorder(Arc::new(NullRecorder), || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!enabled(), "panic must not leave the recorder armed");
    }

    #[test]
    fn null_recorder_swallows_a_full_event_stream() {
        let _guard = GLOBAL_RECORDER_LOCK.lock().unwrap();
        with_recorder(Arc::new(NullRecorder), || {
            for i in 0..100 {
                let _span = span("test.null", i);
                counter("test.null.count", i);
            }
        });
        assert!(!enabled());
    }
}
