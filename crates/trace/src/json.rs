//! A minimal JSON document model shared by the trace JSONL encoding and
//! the bench report (`BENCH.json`): parse and byte-stable re-emit with no
//! dependencies.
//!
//! Two representation choices buy the round-trip guarantee the schema
//! tests pin down:
//!
//! * numbers are kept as verbatim source tokens ([`Value::Num`] holds the
//!   `String` as written) and are never reformatted, and
//! * objects preserve key insertion (= source) order.
//!
//! So any document *produced by this module's emitters* survives a
//! parse → re-emit cycle byte-for-byte. (Hand-written documents survive
//! too as long as they already use the emitters' formatting conventions:
//! minimal string escapes and canonical number tokens.)

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A number kept as its verbatim source token, never reformatted.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Key/value pairs in insertion (= source) order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number value with the canonical decimal token of `n`.
    pub fn num_u64(n: u64) -> Value {
        Value::Num(n.to_string())
    }

    /// A number value formatted with a fixed number of decimal places —
    /// the deterministic float formatting every emitted document uses.
    pub fn num_f64(v: f64, decimals: usize) -> Value {
        Value::Num(format!("{v:.decimals$}"))
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Single-line emission (no whitespace) — the JSONL form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        emit(self, None, 0, &mut out);
        out
    }

    /// Multi-line emission with two-space indentation and a trailing
    /// newline — the `BENCH.json` form.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        emit(self, Some(2), 0, &mut out);
        out.push('\n');
        out
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(v)
    }
}

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(tok) => out.push_str(tok),
        Value::Str(s) => emit_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Minimal escaping: the two mandatory escapes, the common whitespace
/// escapes, and `\u00XX` for remaining control characters. The parser
/// decodes all standard escapes, so emit(decode(s)) is stable.
fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Value::Num(tok))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain bytes (no escape, no quote, no control chars).
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.error("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.error("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.error("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            _ => return Err(self.error("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_is_byte_identical() {
        let doc = Value::Obj(vec![
            ("ev".into(), Value::str("count")),
            ("label".into(), Value::str("gemm.nn")),
            ("value".into(), Value::num_u64(3)),
            ("rate".into(), Value::num_f64(0.5, 4)),
            (
                "nested".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = doc.to_compact();
        let reparsed = Value::parse(&text).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.to_compact(), text);
    }

    #[test]
    fn pretty_round_trip_is_byte_identical() {
        let doc = Value::Obj(vec![
            ("schema_version".into(), Value::num_u64(1)),
            ("empty_obj".into(), Value::Obj(vec![])),
            ("empty_arr".into(), Value::Arr(vec![])),
            (
                "benchmarks".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("name".into(), Value::str("attack_mlp16")),
                    ("median".into(), Value::num_f64(20.733, 3)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        let reparsed = Value::parse(&text).unwrap();
        assert_eq!(reparsed.to_pretty(), text);
    }

    #[test]
    fn number_tokens_are_preserved_verbatim() {
        let text = "[1.50, 2e3, -0.125, 10]";
        let v = Value::parse(text).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Value::Num("1.50".into()));
        assert_eq!(items[1], Value::Num("2e3".into()));
        assert_eq!(items[0].as_f64(), Some(1.5));
        assert_eq!(items[3].as_u64(), Some(10));
    }

    #[test]
    fn string_escapes_decode_and_re_encode() {
        let v = Value::parse(r#""a\tb\n\"q\" \\ \u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\tb\n\"q\" \\ A \u{1F600}"));
        let emitted = Value::str("ctl\u{1}").to_compact();
        assert_eq!(emitted, r#""ctl\u0001""#);
        assert_eq!(Value::parse(&emitted).unwrap().as_str(), Some("ctl\u{1}"));
    }

    #[test]
    fn malformed_documents_are_rejected_with_position() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "{} x",
        ] {
            let err = Value::parse(bad).unwrap_err();
            assert!(err.pos <= bad.len(), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Value::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
    }
}
