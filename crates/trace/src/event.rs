//! The structured events a [`Recorder`](crate::Recorder) receives, and
//! their JSONL wire form.
//!
//! Three event shapes cover the whole instrumentation surface:
//!
//! * span begin/end pairs (matched by `id`) for nested work — layers,
//!   correction waves, worker lifetimes, broker batches;
//! * counters for monotone totals — gemm invocations, checkpoint bytes,
//!   workspace checkouts — optionally tagged with the broker's procedure
//!   scope so the trace books can be reconciled against
//!   `QueryStatsSnapshot` per-scope accounting.
//!
//! Every event encodes to exactly one JSON line with a fixed key order
//! and canonical integer tokens, so `from_jsonl(to_jsonl(e)) == e` and
//! re-encoding a parsed line reproduces it byte-for-byte.

use crate::json::Value;
use std::borrow::Cow;

/// An event label: a `&'static str` at recording sites, an owned string
/// after parsing a JSONL line back in.
pub type Label = Cow<'static, str>;

/// One structured trace event. Timestamps (`t`) are nanoseconds since the
/// first event-producing call in the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened: `id` is process-unique, `arg` is a label-specific
    /// payload (layer index, wave number, worker slot, batch rows…).
    SpanBegin {
        id: u64,
        label: Label,
        arg: u64,
        t: u64,
    },
    /// The matching close of span `id`.
    SpanEnd { id: u64, label: Label, t: u64 },
    /// A monotone counter increment, optionally tagged with the active
    /// broker procedure scope.
    Counter {
        label: Label,
        scope: Option<Label>,
        value: u64,
        t: u64,
    },
}

impl Event {
    /// The event's label.
    pub fn label(&self) -> &str {
        match self {
            Event::SpanBegin { label, .. }
            | Event::SpanEnd { label, .. }
            | Event::Counter { label, .. } => label,
        }
    }

    /// Encodes the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let fields = match self {
            Event::SpanBegin { id, label, arg, t } => vec![
                ("ev".to_string(), Value::str("begin")),
                ("id".to_string(), Value::num_u64(*id)),
                ("label".to_string(), Value::str(label.as_ref())),
                ("arg".to_string(), Value::num_u64(*arg)),
                ("t".to_string(), Value::num_u64(*t)),
            ],
            Event::SpanEnd { id, label, t } => vec![
                ("ev".to_string(), Value::str("end")),
                ("id".to_string(), Value::num_u64(*id)),
                ("label".to_string(), Value::str(label.as_ref())),
                ("t".to_string(), Value::num_u64(*t)),
            ],
            Event::Counter {
                label,
                scope,
                value,
                t,
            } => {
                let mut fields = vec![
                    ("ev".to_string(), Value::str("count")),
                    ("label".to_string(), Value::str(label.as_ref())),
                ];
                if let Some(scope) = scope {
                    fields.push(("scope".to_string(), Value::str(scope.as_ref())));
                }
                fields.push(("value".to_string(), Value::num_u64(*value)));
                fields.push(("t".to_string(), Value::num_u64(*t)));
                fields
            }
        };
        Value::Obj(fields).to_compact()
    }

    /// Decodes one JSON line produced by [`Event::to_jsonl`].
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let doc = Value::parse(line).map_err(|e| e.to_string())?;
        let field_u64 = |key: &str| {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let field_str = |key: &str| -> Result<Label, String> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(|s| Label::Owned(s.to_string()))
                .ok_or_else(|| format!("missing or non-string field '{key}'"))
        };
        match doc.get("ev").and_then(Value::as_str) {
            Some("begin") => Ok(Event::SpanBegin {
                id: field_u64("id")?,
                label: field_str("label")?,
                arg: field_u64("arg")?,
                t: field_u64("t")?,
            }),
            Some("end") => Ok(Event::SpanEnd {
                id: field_u64("id")?,
                label: field_str("label")?,
                t: field_u64("t")?,
            }),
            Some("count") => Ok(Event::Counter {
                label: field_str("label")?,
                scope: match doc.get("scope") {
                    Some(v) => Some(Label::Owned(
                        v.as_str().ok_or("non-string 'scope'")?.to_string(),
                    )),
                    None => None,
                },
                value: field_u64("value")?,
                t: field_u64("t")?,
            }),
            Some(other) => Err(format!("unknown event kind '{other}'")),
            None => Err("missing 'ev' field".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::SpanBegin {
                id: 1,
                label: Label::Borrowed("attack.layer"),
                arg: 0,
                t: 17,
            },
            Event::SpanEnd {
                id: 1,
                label: Label::Borrowed("attack.layer"),
                t: 912,
            },
            Event::Counter {
                label: Label::Borrowed("gemm.nn"),
                scope: None,
                value: 1,
                t: 44,
            },
            Event::Counter {
                label: Label::Borrowed("broker.underlying"),
                scope: Some(Label::Borrowed("key_bit_inference")),
                value: 96,
                t: 1_000_000_007,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        for event in samples() {
            let line = event.to_jsonl();
            let back = Event::from_jsonl(&line).unwrap();
            assert_eq!(back, event);
            assert_eq!(back.to_jsonl(), line, "re-emit must be byte-equal");
        }
    }

    #[test]
    fn wire_form_is_stable() {
        assert_eq!(
            samples()[0].to_jsonl(),
            r#"{"ev":"begin","id":1,"label":"attack.layer","arg":0,"t":17}"#
        );
        assert_eq!(
            samples()[3].to_jsonl(),
            r#"{"ev":"count","label":"broker.underlying","scope":"key_bit_inference","value":96,"t":1000000007}"#
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            r#"{"ev":"warp","t":1}"#,
            r#"{"ev":"count","label":"x","value":-1,"t":1}"#,
            r#"{"ev":"begin","id":1,"label":"x","t":1}"#,
        ] {
            assert!(Event::from_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }
}
