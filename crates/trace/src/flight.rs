//! The [`FlightRecorder`]: an in-memory event buffer that drains to
//! JSONL — install it, run the instrumented workload, write the trace.

use crate::{Event, Recorder};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Buffers every recorded event in arrival order behind one mutex.
///
/// Arrival order is the recorder's only ordering guarantee: events from
/// concurrent worker threads interleave as the lock admits them, while
/// each span's begin still precedes its end. Counter *totals* are exact
/// regardless of interleaving — that is what the accounting cross-checks
/// rely on.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    buf: Mutex<Vec<Event>>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("flight buffer poisoned").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the buffered events, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().expect("flight buffer poisoned").clone()
    }

    /// Removes and returns the buffered events.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.buf.lock().expect("flight buffer poisoned"))
    }

    /// Sum of all counter events with `label`, across every scope.
    pub fn counter_total(&self, label: &str) -> u64 {
        self.buf
            .lock()
            .expect("flight buffer poisoned")
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    label: l, value, ..
                } if l == label => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Per-`(label, scope)` counter totals; unscoped counters appear under
    /// scope `None`.
    #[allow(clippy::type_complexity)]
    pub fn counter_totals(&self) -> BTreeMap<(String, Option<String>), u64> {
        let mut totals = BTreeMap::new();
        for event in self.buf.lock().expect("flight buffer poisoned").iter() {
            if let Event::Counter {
                label,
                scope,
                value,
                ..
            } = event
            {
                *totals
                    .entry((label.to_string(), scope.as_ref().map(|s| s.to_string())))
                    .or_insert(0) += value;
            }
        }
        totals
    }

    /// Number of spans opened with `label` (begin events).
    pub fn span_count(&self, label: &str) -> usize {
        self.buf
            .lock()
            .expect("flight buffer poisoned")
            .iter()
            .filter(|e| matches!(e, Event::SpanBegin { label: l, .. } if l == label))
            .count()
    }

    /// The buffered events encoded as JSONL (one event per line, trailing
    /// newline when non-empty). The buffer is left intact.
    pub fn to_jsonl(&self) -> String {
        let buf = self.buf.lock().expect("flight buffer poisoned");
        let mut out = String::new();
        for event in buf.iter() {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Writes the buffered events as JSONL to `path`.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())?;
        file.flush()
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: Event) {
        self.buf.lock().expect("flight buffer poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Label;

    fn counter(label: &'static str, scope: Option<&'static str>, value: u64) -> Event {
        Event::Counter {
            label: Label::Borrowed(label),
            scope: scope.map(Label::Borrowed),
            value,
            t: 0,
        }
    }

    #[test]
    fn totals_sum_per_label_and_scope() {
        let rec = FlightRecorder::new();
        rec.record(counter("gemm.nn", None, 1));
        rec.record(counter("gemm.nn", None, 1));
        rec.record(counter("broker.underlying", Some("learning_attack"), 40));
        rec.record(counter("broker.underlying", Some("error_correction"), 2));
        rec.record(Event::SpanBegin {
            id: 1,
            label: Label::Borrowed("attack.layer"),
            arg: 0,
            t: 0,
        });
        assert_eq!(rec.counter_total("gemm.nn"), 2);
        assert_eq!(rec.counter_total("broker.underlying"), 42);
        assert_eq!(rec.counter_total("absent"), 0);
        assert_eq!(rec.span_count("attack.layer"), 1);
        let totals = rec.counter_totals();
        assert_eq!(
            totals[&(
                "broker.underlying".to_string(),
                Some("learning_attack".to_string())
            )],
            40
        );
        assert_eq!(totals[&("gemm.nn".to_string(), None)], 2);
    }

    #[test]
    fn jsonl_drain_round_trips_every_line() {
        let rec = FlightRecorder::new();
        rec.record(counter("checkpoint.write", None, 812));
        rec.record(Event::SpanBegin {
            id: 7,
            label: Label::Borrowed("broker.batch"),
            arg: 16,
            t: 5,
        });
        rec.record(Event::SpanEnd {
            id: 7,
            label: Label::Borrowed("broker.batch"),
            t: 9,
        });
        let text = rec.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let decoded: Vec<Event> = lines
            .iter()
            .map(|l| Event::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(decoded, rec.events());
        // Re-encoding the decoded events reproduces the file byte-for-byte.
        let reencoded: String = decoded.iter().map(|e| e.to_jsonl() + "\n").collect();
        assert_eq!(reencoded, text);
        assert_eq!(rec.drain().len(), 3);
        assert!(rec.is_empty());
    }
}
