//! Reading captured traces back in: the inverse of the flight recorder.
//!
//! A `--trace` capture is JSONL, one [`Event`] per line, in arrival
//! order. [`Trace::parse`] turns the text back into typed events with
//! line-numbered errors, and the model layer on top pairs span begin/end
//! events into [`SpanRecord`]s and re-derives the per-`(label, scope)`
//! counter books — the same totals a live [`FlightRecorder`] reports —
//! so an offline analysis pass can reconcile a capture against
//! `QueryStatsSnapshot` exactly.
//!
//! [`Trace::check`] is the schema gate CI runs on every capture: span
//! pairing, label agreement across a pair, and arrival-order timestamp
//! monotonicity are recorder invariants, so any violation means the
//! capture (or the writer) drifted from the wire contract.
//!
//! [`FlightRecorder`]: crate::FlightRecorder

use crate::Event;
use std::collections::BTreeMap;
use std::path::Path;

/// A parse failure, tagged with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReadError {
    /// 1-based line number of the offending line (0 for I/O failures).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.reason)
        } else {
            write!(f, "line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for TraceReadError {}

/// A span begin/end pair reconstructed from a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The process-unique span id shared by the begin and end events.
    pub id: u64,
    /// The span label (`attack.layer`, `broker.batch`, …).
    pub label: String,
    /// The begin event's label-specific payload (layer index, wave
    /// number, batch rows…).
    pub arg: u64,
    /// Begin timestamp (nanos since the process's first event).
    pub begin_t: u64,
    /// End timestamp.
    pub end_t: u64,
    /// Index of the begin event in [`Trace::events`].
    pub begin_index: usize,
    /// Index of the end event.
    pub end_index: usize,
}

impl SpanRecord {
    /// End minus begin, in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_t.saturating_sub(self.begin_t)
    }
}

/// A parsed capture: the typed event stream plus the derived span and
/// counter model.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Parses a JSONL capture. Every line must be one valid event; blank
    /// lines (other than the trailing newline) and malformed lines are
    /// rejected with their line number, because the recorder never writes
    /// them — their presence means the capture is corrupt.
    pub fn parse(text: &str) -> Result<Trace, TraceReadError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let event = Event::from_jsonl(line).map_err(|reason| TraceReadError {
                line: i + 1,
                reason,
            })?;
            events.push(event);
        }
        Ok(Trace { events })
    }

    /// Reads and parses a capture file.
    pub fn read_file(path: &Path) -> Result<Trace, TraceReadError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceReadError {
            line: 0,
            reason: format!("cannot read {path:?}: {e}"),
        })?;
        Trace::parse(&text)
    }

    /// The typed events, in capture order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of all counter events with `label`, across every scope — the
    /// offline twin of `FlightRecorder::counter_total`.
    pub fn counter_total(&self, label: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    label: l, value, ..
                } if l == label => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Per-`(label, scope)` counter totals; unscoped counters appear
    /// under scope `None`.
    #[allow(clippy::type_complexity)]
    pub fn counter_totals(&self) -> BTreeMap<(String, Option<String>), u64> {
        let mut totals = BTreeMap::new();
        for event in &self.events {
            if let Event::Counter {
                label,
                scope,
                value,
                ..
            } = event
            {
                *totals
                    .entry((label.to_string(), scope.as_ref().map(|s| s.to_string())))
                    .or_insert(0u64) += value;
            }
        }
        totals
    }

    /// Pairs every span begin with its end, in begin order. Errors on an
    /// end without a begin, a label mismatch within a pair, or a begin
    /// left open at the end of the capture — all writer-contract
    /// violations a truncated or corrupt file would exhibit.
    pub fn spans(&self) -> Result<Vec<SpanRecord>, TraceReadError> {
        let mut open: BTreeMap<u64, usize> = BTreeMap::new();
        let mut records = Vec::new();
        for (i, event) in self.events.iter().enumerate() {
            match event {
                Event::SpanBegin { id, .. } => {
                    if open.insert(*id, i).is_some() {
                        return Err(TraceReadError {
                            line: i + 1,
                            reason: format!("span id {id} opened twice"),
                        });
                    }
                }
                Event::SpanEnd { id, label, t } => {
                    let Some(begin_index) = open.remove(id) else {
                        return Err(TraceReadError {
                            line: i + 1,
                            reason: format!("span id {id} ended without a begin"),
                        });
                    };
                    let Event::SpanBegin {
                        label: begin_label,
                        arg,
                        t: begin_t,
                        ..
                    } = &self.events[begin_index]
                    else {
                        unreachable!("open table only holds begin indices");
                    };
                    if begin_label != label {
                        return Err(TraceReadError {
                            line: i + 1,
                            reason: format!(
                                "span id {id} began as '{begin_label}' but ended as '{label}'"
                            ),
                        });
                    }
                    records.push(SpanRecord {
                        id: *id,
                        label: label.to_string(),
                        arg: *arg,
                        begin_t: *begin_t,
                        end_t: *t,
                        begin_index,
                        end_index: i,
                    });
                }
                Event::Counter { .. } => {}
            }
        }
        if let Some((id, begin_index)) = open.iter().next() {
            return Err(TraceReadError {
                line: begin_index + 1,
                reason: format!("span id {id} never ended (truncated capture?)"),
            });
        }
        records.sort_by_key(|r| r.begin_index);
        Ok(records)
    }

    /// Runs every recorder-invariant check and returns the violations:
    /// span pairing (via [`Trace::spans`]) and arrival-order timestamp
    /// monotonicity. An empty result means the capture honours the wire
    /// contract end to end.
    pub fn check(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if let Err(e) = self.spans() {
            issues.push(e.to_string());
        }
        let mut last_t = 0u64;
        for (i, event) in self.events.iter().enumerate() {
            let t = match event {
                Event::SpanBegin { t, .. }
                | Event::SpanEnd { t, .. }
                | Event::Counter { t, .. } => *t,
            };
            if t < last_t {
                issues.push(format!(
                    "line {}: timestamp {t} precedes previous event's {last_t} (arrival order must be monotone)",
                    i + 1
                ));
            }
            last_t = t;
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlightRecorder, Label};
    use std::sync::Arc;

    fn capture() -> String {
        let flight = Arc::new(FlightRecorder::new());
        crate::with_recorder(flight.clone(), || {
            let _outer = crate::span("test.outer", 3);
            {
                let _inner = crate::span("test.inner", 9);
                crate::counter("test.items", 5);
                crate::scoped_counter("test.rows", "learning_attack", 40);
                crate::scoped_counter("test.rows", "error_correction", 2);
            }
            crate::counter("test.items", 7);
        });
        flight.to_jsonl()
    }

    #[test]
    fn parse_recovers_the_recorded_stream() {
        let text = capture();
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.counter_total("test.items"), 12);
        assert_eq!(trace.counter_total("test.rows"), 42);
        let totals = trace.counter_totals();
        assert_eq!(
            totals[&("test.rows".to_string(), Some("learning_attack".to_string()))],
            40
        );
        assert_eq!(totals[&("test.items".to_string(), None)], 12);
        assert!(trace.check().is_empty(), "{:?}", trace.check());
    }

    #[test]
    fn spans_pair_in_begin_order_with_durations() {
        let trace = Trace::parse(&capture()).unwrap();
        let spans = trace.spans().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "test.outer");
        assert_eq!(spans[0].arg, 3);
        assert_eq!(spans[1].label, "test.inner");
        assert_eq!(spans[1].arg, 9);
        // Inner nests inside outer: begins after, ends before.
        assert!(spans[1].begin_index > spans[0].begin_index);
        assert!(spans[1].end_index < spans[0].end_index);
        assert!(spans[0].duration_nanos() >= spans[1].duration_nanos());
    }

    #[test]
    fn malformed_lines_carry_their_line_number() {
        let mut text = capture();
        text.push_str("{\"ev\":\"warp\"}\n");
        let err = Trace::parse(&text).unwrap_err();
        assert_eq!(err.line, 9);
        assert!(err.to_string().contains("line 9"), "{err}");
        assert!(Trace::parse("not json\n").is_err());
        // Blank interior lines are a corruption signal, not padding.
        assert!(Trace::parse("\n").is_err());
    }

    #[test]
    fn truncated_and_mismatched_captures_fail_the_span_check() {
        let begin = Event::SpanBegin {
            id: 1,
            label: Label::Borrowed("test.only"),
            arg: 0,
            t: 1,
        };
        let dangling = Trace::parse(&(begin.to_jsonl() + "\n")).unwrap();
        let err = dangling.spans().unwrap_err();
        assert!(err.reason.contains("never ended"), "{err}");
        assert_eq!(dangling.check().len(), 1);

        let end = Event::SpanEnd {
            id: 2,
            label: Label::Borrowed("test.only"),
            t: 2,
        };
        let orphan = Trace::parse(&(end.to_jsonl() + "\n")).unwrap();
        assert!(orphan
            .spans()
            .unwrap_err()
            .reason
            .contains("without a begin"));

        let relabelled = Event::SpanEnd {
            id: 1,
            label: Label::Borrowed("test.other"),
            t: 2,
        };
        let mismatch =
            Trace::parse(&(begin.to_jsonl() + "\n" + &relabelled.to_jsonl() + "\n")).unwrap();
        assert!(mismatch.spans().unwrap_err().reason.contains("began as"));
    }

    #[test]
    fn non_monotone_timestamps_fail_the_check() {
        let a = Event::Counter {
            label: Label::Borrowed("test.a"),
            scope: None,
            value: 1,
            t: 10,
        };
        let b = Event::Counter {
            label: Label::Borrowed("test.b"),
            scope: None,
            value: 1,
            t: 5,
        };
        let trace = Trace::parse(&(a.to_jsonl() + "\n" + &b.to_jsonl() + "\n")).unwrap();
        let issues = trace.check();
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("monotone"), "{issues:?}");
    }
}
