//! Lock specification and the per-layer site allocator used while building
//! a network.
//!
//! The paper's §4.2 encryption protocol, which this module implements:
//!
//! 1. equally distribute the key bits to all designated hidden layers;
//! 2. embed key bits into a set of neurons selected uniformly at random
//!    within every such layer;
//! 3. assign every key bit a value uniformly at random (see
//!    [`crate::Key::random`]).
//!
//! Model builders call [`LockAllocator::lock_layer`] once per lockable layer
//! (in order) and receive the keyed operator to insert.

use relock_graph::{KeySlot, Op, UnitLayout};
use relock_tensor::rng::Prng;
use std::fmt;

/// Which locking operator protects the network.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum LockVariant {
    /// HPNN's original sign-flipping unit (paper Eq. 1).
    #[default]
    Sign,
    /// §3.9(a): multiply the pre-activation by `factor` when the bit is 1.
    Scale(f64),
}

/// How many key bits to embed and with which operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockSpec {
    /// Total number of key bits across the network.
    pub total_bits: usize,
    /// The locking operator.
    pub variant: LockVariant,
}

impl LockSpec {
    /// Sign locking with `total_bits` bits split evenly across layers.
    pub fn evenly(total_bits: usize) -> Self {
        LockSpec {
            total_bits,
            variant: LockVariant::Sign,
        }
    }

    /// Multiplicative locking (§3.9a) with the given factor.
    pub fn scale(total_bits: usize, factor: f64) -> Self {
        LockSpec {
            total_bits,
            variant: LockVariant::Scale(factor),
        }
    }

    /// An unlocked network (zero key bits).
    pub fn none() -> Self {
        LockSpec {
            total_bits: 0,
            variant: LockVariant::Sign,
        }
    }
}

/// Errors raised during lock allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// A layer was asked to hold more key bits than it has units.
    LayerTooSmall {
        /// Index of the offending layer.
        layer: usize,
        /// Units available.
        units: usize,
        /// Bits requested.
        requested: usize,
    },
    /// The builder declared `n_layers` but called `lock_layer` a different
    /// number of times.
    LayerCountMismatch {
        /// Declared layer count.
        declared: usize,
        /// Layers actually locked.
        locked: usize,
    },
    /// The architecture's lockable layers cannot hold the requested key.
    InsufficientCapacity {
        /// Total lockable units across all layers.
        capacity: usize,
        /// Key bits requested.
        requested: usize,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::LayerTooSmall {
                layer,
                units,
                requested,
            } => write!(
                f,
                "layer {layer} has {units} lockable units but {requested} bits were requested"
            ),
            LockError::LayerCountMismatch { declared, locked } => write!(
                f,
                "lock plan declared {declared} layers but {locked} were locked"
            ),
            LockError::InsufficientCapacity {
                capacity,
                requested,
            } => write!(
                f,
                "cannot embed {requested} key bits into {capacity} lockable units"
            ),
        }
    }
}

impl std::error::Error for LockError {}

/// Allocates key slots to lockable layers while a model is being built.
///
/// Create one with the number of lockable layers the architecture exposes,
/// then have the builder call [`lock_layer`](LockAllocator::lock_layer) once
/// per layer in network order. Call [`finish`](LockAllocator::finish) after
/// building to validate the plan was fully consumed and obtain the total
/// slot count.
#[derive(Debug)]
pub struct LockAllocator {
    spec: LockSpec,
    per_layer: Vec<usize>,
    next_layer: usize,
    next_slot: usize,
    rng: Prng,
}

impl LockAllocator {
    /// Plans `spec.total_bits` bits over `n_layers` lockable layers,
    /// distributing them as evenly as possible (earlier layers absorb the
    /// remainder, matching the paper's "equally distribute" protocol).
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0` while `spec.total_bits > 0`.
    pub fn new(spec: LockSpec, n_layers: usize, rng: Prng) -> Self {
        assert!(
            n_layers > 0 || spec.total_bits == 0,
            "cannot lock a network with no lockable layers"
        );
        let mut per_layer = vec![0usize; n_layers];
        if let Some(base) = spec.total_bits.checked_div(n_layers) {
            let extra = spec.total_bits % n_layers;
            for (i, p) in per_layer.iter_mut().enumerate() {
                *p = base + usize::from(i < extra);
            }
        }
        LockAllocator {
            spec,
            per_layer,
            next_layer: 0,
            next_slot: 0,
            rng,
        }
    }

    /// Like [`new`](LockAllocator::new), but respects per-layer unit
    /// capacities: the equal split is water-filled, so bits that would
    /// overflow a narrow layer (e.g. LeNet's 6-channel first convolution)
    /// spill into layers with spare room.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::InsufficientCapacity`] if the layers cannot
    /// hold `spec.total_bits` in total.
    pub fn with_capacities(
        spec: LockSpec,
        capacities: &[usize],
        rng: Prng,
    ) -> Result<Self, LockError> {
        let total_cap: usize = capacities.iter().sum();
        if total_cap < spec.total_bits {
            return Err(LockError::InsufficientCapacity {
                capacity: total_cap,
                requested: spec.total_bits,
            });
        }
        let n = capacities.len();
        let mut per_layer = vec![0usize; n];
        let mut remaining = spec.total_bits;
        // Water-fill: repeatedly hand each unsaturated layer an equal share.
        while remaining > 0 {
            let open: Vec<usize> = (0..n).filter(|&i| per_layer[i] < capacities[i]).collect();
            let share = (remaining / open.len()).max(1);
            for (rank, &i) in open.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                let extra = usize::from(rank < remaining % open.len() && remaining >= open.len());
                let want = (share + extra)
                    .min(capacities[i] - per_layer[i])
                    .min(remaining);
                per_layer[i] += want;
                remaining -= want;
            }
        }
        Ok(LockAllocator {
            spec,
            per_layer,
            next_layer: 0,
            next_slot: 0,
            rng,
        })
    }

    /// A zero-bit allocator producing pass-through keyed ops.
    pub fn unlocked(n_layers: usize) -> Self {
        LockAllocator::new(LockSpec::none(), n_layers.max(1), Prng::seed_from_u64(0))
    }

    /// Allocates this (next) layer's key bits over `layout.n_units` units
    /// selected uniformly at random, returning the keyed op to insert after
    /// the layer's pre-activation.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::LayerTooSmall`] if the layer cannot hold its
    /// share of bits and [`LockError::LayerCountMismatch`] if called more
    /// times than layers were declared.
    pub fn lock_layer(&mut self, layout: UnitLayout) -> Result<Op, LockError> {
        if self.next_layer >= self.per_layer.len() {
            return Err(LockError::LayerCountMismatch {
                declared: self.per_layer.len(),
                locked: self.next_layer + 1,
            });
        }
        let want = self.per_layer[self.next_layer];
        if want > layout.n_units {
            return Err(LockError::LayerTooSmall {
                layer: self.next_layer,
                units: layout.n_units,
                requested: want,
            });
        }
        self.next_layer += 1;
        let mut slots = vec![None; layout.n_units];
        let chosen = self.rng.choose_indices(layout.n_units, want);
        for u in chosen {
            slots[u] = Some(KeySlot(self.next_slot));
            self.next_slot += 1;
        }
        Ok(match self.spec.variant {
            LockVariant::Sign => Op::KeyedSign { layout, slots },
            LockVariant::Scale(factor) => Op::KeyedScale {
                layout,
                slots,
                factor,
            },
        })
    }

    /// Validates that every declared layer was locked and returns the total
    /// number of allocated key slots.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::LayerCountMismatch`] if some layers were never
    /// locked.
    pub fn finish(self) -> Result<usize, LockError> {
        if self.next_layer != self.per_layer.len() {
            return Err(LockError::LayerCountMismatch {
                declared: self.per_layer.len(),
                locked: self.next_layer,
            });
        }
        Ok(self.next_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_with_remainder() {
        let a = LockAllocator::new(LockSpec::evenly(10), 3, Prng::seed_from_u64(1));
        assert_eq!(a.per_layer, vec![4, 3, 3]);
    }

    #[test]
    fn lock_layer_allocates_distinct_slots() {
        let mut a = LockAllocator::new(LockSpec::evenly(4), 2, Prng::seed_from_u64(2));
        let op1 = a.lock_layer(UnitLayout::scalar(8)).unwrap();
        let op2 = a.lock_layer(UnitLayout::scalar(8)).unwrap();
        let slots: Vec<_> = op1.key_slots().into_iter().chain(op2.key_slots()).collect();
        assert_eq!(slots.len(), 4);
        let set: std::collections::HashSet<_> = slots.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(a.finish().unwrap(), 4);
    }

    #[test]
    fn water_filling_spills_overflow() {
        // 10 bits over capacities [2, 8, 8]: fair share 3/3/4 overflows the
        // first layer, so it saturates at 2 and the rest spills.
        let a = LockAllocator::with_capacities(
            LockSpec::evenly(10),
            &[2, 8, 8],
            Prng::seed_from_u64(6),
        )
        .unwrap();
        assert_eq!(a.per_layer.iter().sum::<usize>(), 10);
        assert_eq!(a.per_layer[0], 2);
        assert!(a.per_layer[1] <= 8 && a.per_layer[2] <= 8);
    }

    #[test]
    fn water_filling_exact_fit() {
        let a = LockAllocator::with_capacities(
            LockSpec::evenly(18),
            &[6, 6, 6],
            Prng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(a.per_layer, vec![6, 6, 6]);
    }

    #[test]
    fn water_filling_over_capacity_errors() {
        let err =
            LockAllocator::with_capacities(LockSpec::evenly(10), &[2, 3], Prng::seed_from_u64(8));
        assert!(matches!(err, Err(LockError::InsufficientCapacity { .. })));
    }

    #[test]
    fn layer_too_small_is_an_error() {
        let mut a = LockAllocator::new(LockSpec::evenly(9), 1, Prng::seed_from_u64(3));
        let err = a.lock_layer(UnitLayout::scalar(4)).unwrap_err();
        assert!(matches!(err, LockError::LayerTooSmall { .. }));
    }

    #[test]
    fn finish_detects_missing_layers() {
        let a = LockAllocator::new(LockSpec::evenly(2), 2, Prng::seed_from_u64(4));
        assert!(matches!(
            a.finish(),
            Err(LockError::LayerCountMismatch { .. })
        ));
    }

    #[test]
    fn unlocked_allocator_produces_passthrough() {
        let mut a = LockAllocator::unlocked(1);
        let op = a.lock_layer(UnitLayout::scalar(5)).unwrap();
        assert!(op.key_slots().is_empty());
    }

    #[test]
    fn scale_variant_produces_keyed_scale() {
        let mut a = LockAllocator::new(LockSpec::scale(2, 0.5), 1, Prng::seed_from_u64(5));
        let op = a.lock_layer(UnitLayout::scalar(4)).unwrap();
        assert!(matches!(op, Op::KeyedScale { factor, .. } if factor == 0.5));
    }
}
