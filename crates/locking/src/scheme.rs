//! Lock specification and the per-layer site allocator used while building
//! a network.
//!
//! The paper's §4.2 encryption protocol, which this module implements:
//!
//! 1. equally distribute the key bits to all designated hidden layers;
//! 2. embed key bits into a set of neurons selected uniformly at random
//!    within every such layer;
//! 3. assign every key bit a value uniformly at random (see
//!    [`crate::Key::random`]).
//!
//! Model builders call [`LockAllocator::lock_layer`] once per lockable layer
//! (in order) and receive the keyed operator to insert.

use crate::key::Key;
use relock_graph::{KeySlot, Op, TriggerKind, UnitLayout};
use relock_tensor::rng::Prng;
use std::fmt;
use std::str::FromStr;

/// Which locking operator protects the network.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum LockVariant {
    /// HPNN's original sign-flipping unit (paper Eq. 1).
    #[default]
    Sign,
    /// §3.9(a): multiply the pre-activation by `factor` when the bit is 1.
    Scale(f64),
    /// SARLock-style trigger lock: each locked layer gets one comparator
    /// guarding the whole pre-activation, fired by the sign pattern of a
    /// key-indexed input subspace. Corruption is confined to two of `2^d`
    /// signature patterns per wrong key.
    SarTrigger,
    /// Anti-SAT-style complementary-pair trigger lock: the layer's key
    /// bits split into halves `k1, k2`; any key with `k2 == k1` is correct
    /// and a wrong key corrupts a single signature pattern.
    AntiSatTrigger,
}

impl LockVariant {
    /// Whether this variant locks via an input-triggered comparator
    /// (builders must wire the raw network input as a second parent).
    pub fn is_trigger(&self) -> bool {
        matches!(self, LockVariant::SarTrigger | LockVariant::AntiSatTrigger)
    }

    /// Canonical short name (`sign`, `scale:<factor>`, `sar`, `antisat`) —
    /// the same spelling [`FromStr`] parses and the wire protocols carry.
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for LockVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockVariant::Sign => write!(f, "sign"),
            LockVariant::Scale(factor) => write!(f, "scale:{factor}"),
            LockVariant::SarTrigger => write!(f, "sar"),
            LockVariant::AntiSatTrigger => write!(f, "antisat"),
        }
    }
}

impl FromStr for LockVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sign" => Ok(LockVariant::Sign),
            "sar" => Ok(LockVariant::SarTrigger),
            "antisat" => Ok(LockVariant::AntiSatTrigger),
            _ => match s.strip_prefix("scale:") {
                Some(factor) => factor
                    .parse::<f64>()
                    .map(LockVariant::Scale)
                    .map_err(|_| format!("bad scale factor '{factor}'")),
                None => Err(format!(
                    "unknown lock variant '{s}' (sign|scale:<factor>|sar|antisat)"
                )),
            },
        }
    }
}

/// A constraint the lock construction imposes on the secret key.
///
/// Trigger locks do not admit arbitrary keys: a SAR comparator's correct
/// key *is* its baked-in mask, and an Anti-SAT pair is only correct when
/// its halves agree. The allocator records these while building; model
/// builders apply them to the randomly sampled key via
/// [`apply_key_constraints`] (a no-op for unconstrained variants, so the
/// rng stream of existing builders is untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyConstraint {
    /// Key bit `slot` must equal `value`.
    ForceBit {
        /// Key slot index.
        slot: usize,
        /// Required bit value.
        value: bool,
    },
    /// Key bit `b` must equal key bit `a` (`b := a`).
    EqualBits {
        /// Source slot index.
        a: usize,
        /// Forced slot index.
        b: usize,
    },
}

/// Rewrites `key` in place so it satisfies every constraint, in order.
pub fn apply_key_constraints(key: &mut Key, constraints: &[KeyConstraint]) {
    for c in constraints {
        match *c {
            KeyConstraint::ForceBit { slot, value } => key.set_bit(slot, value),
            KeyConstraint::EqualBits { a, b } => key.set_bit(b, key.bit(a)),
        }
    }
}

/// How many key bits to embed and with which operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockSpec {
    /// Total number of key bits across the network.
    pub total_bits: usize,
    /// The locking operator.
    pub variant: LockVariant,
}

impl LockSpec {
    /// Sign locking with `total_bits` bits split evenly across layers.
    pub fn evenly(total_bits: usize) -> Self {
        LockSpec {
            total_bits,
            variant: LockVariant::Sign,
        }
    }

    /// Multiplicative locking (§3.9a) with the given factor.
    pub fn scale(total_bits: usize, factor: f64) -> Self {
        LockSpec {
            total_bits,
            variant: LockVariant::Scale(factor),
        }
    }

    /// SARLock-style trigger locking with `total_bits` bits.
    pub fn sar(total_bits: usize) -> Self {
        LockSpec {
            total_bits,
            variant: LockVariant::SarTrigger,
        }
    }

    /// Anti-SAT-style trigger locking with `total_bits` bits (each layer's
    /// share must come out even — the bits pair up into `k1`/`k2` halves).
    pub fn antisat(total_bits: usize) -> Self {
        LockSpec {
            total_bits,
            variant: LockVariant::AntiSatTrigger,
        }
    }

    /// The given variant with `total_bits` bits split evenly across layers.
    pub fn with_variant(total_bits: usize, variant: LockVariant) -> Self {
        LockSpec {
            total_bits,
            variant,
        }
    }

    /// An unlocked network (zero key bits).
    pub fn none() -> Self {
        LockSpec {
            total_bits: 0,
            variant: LockVariant::Sign,
        }
    }
}

/// Errors raised during lock allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// A layer was asked to hold more key bits than it has units.
    LayerTooSmall {
        /// Index of the offending layer.
        layer: usize,
        /// Units available.
        units: usize,
        /// Bits requested.
        requested: usize,
    },
    /// The builder declared `n_layers` but called `lock_layer` a different
    /// number of times.
    LayerCountMismatch {
        /// Declared layer count.
        declared: usize,
        /// Layers actually locked.
        locked: usize,
    },
    /// The architecture's lockable layers cannot hold the requested key.
    InsufficientCapacity {
        /// Total lockable units across all layers.
        capacity: usize,
        /// Key bits requested.
        requested: usize,
    },
    /// A trigger layer's bit share cannot form its comparator.
    TriggerShape {
        /// Index of the offending layer.
        layer: usize,
        /// Bits the layer was asked to hold.
        bits: usize,
        /// Why the comparator cannot be built.
        reason: &'static str,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::LayerTooSmall {
                layer,
                units,
                requested,
            } => write!(
                f,
                "layer {layer} has {units} lockable units but {requested} bits were requested"
            ),
            LockError::LayerCountMismatch { declared, locked } => write!(
                f,
                "lock plan declared {declared} layers but {locked} were locked"
            ),
            LockError::InsufficientCapacity {
                capacity,
                requested,
            } => write!(
                f,
                "cannot embed {requested} key bits into {capacity} lockable units"
            ),
            LockError::TriggerShape {
                layer,
                bits,
                reason,
            } => write!(
                f,
                "layer {layer}: trigger lock cannot use {bits} bits ({reason})"
            ),
        }
    }
}

impl std::error::Error for LockError {}

/// Allocates key slots to lockable layers while a model is being built.
///
/// Create one with the number of lockable layers the architecture exposes,
/// then have the builder call [`lock_layer`](LockAllocator::lock_layer) once
/// per layer in network order. Call [`finish`](LockAllocator::finish) after
/// building to validate the plan was fully consumed and obtain the total
/// slot count.
#[derive(Debug)]
pub struct LockAllocator {
    spec: LockSpec,
    per_layer: Vec<usize>,
    next_layer: usize,
    next_slot: usize,
    rng: Prng,
    constraints: Vec<KeyConstraint>,
}

impl LockAllocator {
    /// Plans `spec.total_bits` bits over `n_layers` lockable layers,
    /// distributing them as evenly as possible (earlier layers absorb the
    /// remainder, matching the paper's "equally distribute" protocol).
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0` while `spec.total_bits > 0`.
    pub fn new(spec: LockSpec, n_layers: usize, rng: Prng) -> Self {
        assert!(
            n_layers > 0 || spec.total_bits == 0,
            "cannot lock a network with no lockable layers"
        );
        let mut per_layer = vec![0usize; n_layers];
        if let Some(base) = spec.total_bits.checked_div(n_layers) {
            let extra = spec.total_bits % n_layers;
            for (i, p) in per_layer.iter_mut().enumerate() {
                *p = base + usize::from(i < extra);
            }
        }
        LockAllocator {
            spec,
            per_layer,
            next_layer: 0,
            next_slot: 0,
            rng,
            constraints: Vec::new(),
        }
    }

    /// Like [`new`](LockAllocator::new), but respects per-layer unit
    /// capacities: the equal split is water-filled, so bits that would
    /// overflow a narrow layer (e.g. LeNet's 6-channel first convolution)
    /// spill into layers with spare room.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::InsufficientCapacity`] if the layers cannot
    /// hold `spec.total_bits` in total.
    pub fn with_capacities(
        spec: LockSpec,
        capacities: &[usize],
        rng: Prng,
    ) -> Result<Self, LockError> {
        let total_cap: usize = capacities.iter().sum();
        if total_cap < spec.total_bits {
            return Err(LockError::InsufficientCapacity {
                capacity: total_cap,
                requested: spec.total_bits,
            });
        }
        let n = capacities.len();
        let mut per_layer = vec![0usize; n];
        let mut remaining = spec.total_bits;
        // Water-fill: repeatedly hand each unsaturated layer an equal share.
        while remaining > 0 {
            let open: Vec<usize> = (0..n).filter(|&i| per_layer[i] < capacities[i]).collect();
            let share = (remaining / open.len()).max(1);
            for (rank, &i) in open.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                let extra = usize::from(rank < remaining % open.len() && remaining >= open.len());
                let want = (share + extra)
                    .min(capacities[i] - per_layer[i])
                    .min(remaining);
                per_layer[i] += want;
                remaining -= want;
            }
        }
        Ok(LockAllocator {
            spec,
            per_layer,
            next_layer: 0,
            next_slot: 0,
            rng,
            constraints: Vec::new(),
        })
    }

    /// Plans a *trigger* lock over `n_layers` layers: SAR shares split
    /// evenly like [`new`](LockAllocator::new); Anti-SAT shares split as
    /// complementary **pairs** so every layer's share is even. Validates
    /// that each layer's signature fits the raw input.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::TriggerShape`] for an odd Anti-SAT total or a
    /// signature wider than `input_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0` while `spec.total_bits > 0` (like
    /// [`new`](LockAllocator::new)).
    pub fn for_trigger(
        spec: LockSpec,
        n_layers: usize,
        input_dim: usize,
        rng: Prng,
    ) -> Result<Self, LockError> {
        let alloc = match spec.variant {
            LockVariant::AntiSatTrigger => {
                if !spec.total_bits.is_multiple_of(2) {
                    return Err(LockError::TriggerShape {
                        layer: 0,
                        bits: spec.total_bits,
                        reason: "anti-sat needs an even total bit count",
                    });
                }
                let pair_spec = LockSpec {
                    total_bits: spec.total_bits / 2,
                    ..spec
                };
                let mut a = LockAllocator::new(pair_spec, n_layers, rng);
                for p in &mut a.per_layer {
                    *p *= 2;
                }
                a.spec = spec;
                a
            }
            _ => LockAllocator::new(spec, n_layers, rng),
        };
        if spec.variant.is_trigger() {
            for (layer, &share) in alloc.per_layer.iter().enumerate() {
                let sig = match spec.variant {
                    LockVariant::AntiSatTrigger => share / 2,
                    _ => share,
                };
                if sig > input_dim {
                    return Err(LockError::TriggerShape {
                        layer,
                        bits: share,
                        reason: "more signature bits than input dimensions",
                    });
                }
            }
        }
        Ok(alloc)
    }

    /// A zero-bit allocator producing pass-through keyed ops.
    pub fn unlocked(n_layers: usize) -> Self {
        LockAllocator::new(LockSpec::none(), n_layers.max(1), Prng::seed_from_u64(0))
    }

    /// Allocates this (next) layer's key bits over `layout.n_units` units
    /// selected uniformly at random, returning the keyed op to insert after
    /// the layer's pre-activation.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::LayerTooSmall`] if the layer cannot hold its
    /// share of bits and [`LockError::LayerCountMismatch`] if called more
    /// times than layers were declared.
    pub fn lock_layer(&mut self, layout: UnitLayout) -> Result<Op, LockError> {
        if self.spec.variant.is_trigger() {
            return Err(LockError::TriggerShape {
                layer: self.next_layer,
                bits: self.per_layer.get(self.next_layer).copied().unwrap_or(0),
                reason: "trigger variants must be locked via lock_trigger_layer",
            });
        }
        if self.next_layer >= self.per_layer.len() {
            return Err(LockError::LayerCountMismatch {
                declared: self.per_layer.len(),
                locked: self.next_layer + 1,
            });
        }
        let want = self.per_layer[self.next_layer];
        if want > layout.n_units {
            return Err(LockError::LayerTooSmall {
                layer: self.next_layer,
                units: layout.n_units,
                requested: want,
            });
        }
        self.next_layer += 1;
        let mut slots = vec![None; layout.n_units];
        let chosen = self.rng.choose_indices(layout.n_units, want);
        for u in chosen {
            slots[u] = Some(KeySlot(self.next_slot));
            self.next_slot += 1;
        }
        Ok(match self.spec.variant {
            LockVariant::Sign => Op::KeyedSign { layout, slots },
            LockVariant::Scale(factor) => Op::KeyedScale {
                layout,
                slots,
                factor,
            },
            LockVariant::SarTrigger | LockVariant::AntiSatTrigger => {
                unreachable!("trigger variants are rejected above")
            }
        })
    }

    /// Allocates this (next) layer's key bits as a single input-triggered
    /// comparator guarding the whole pre-activation, returning the
    /// [`Op::KeyedTrigger`] to insert. `input_dim` is the raw network
    /// input's dimensionality — the signature coordinates are sampled from
    /// it uniformly at random, and the builder must wire the raw input as
    /// the op's second parent.
    ///
    /// For non-trigger variants this delegates to
    /// [`lock_layer`](LockAllocator::lock_layer), so builders can call it
    /// unconditionally if they branch only on the wiring. A zero-bit share
    /// degenerates to a pass-through `KeyedSign` with no slots.
    ///
    /// # Errors
    ///
    /// All errors of [`lock_layer`](LockAllocator::lock_layer), plus
    /// [`LockError::TriggerShape`] when the layer's share cannot form the
    /// comparator (more signature bits than input dims, or an odd Anti-SAT
    /// share).
    pub fn lock_trigger_layer(
        &mut self,
        layout: UnitLayout,
        input_dim: usize,
    ) -> Result<Op, LockError> {
        if !self.spec.variant.is_trigger() {
            return self.lock_layer(layout);
        }
        if self.next_layer >= self.per_layer.len() {
            return Err(LockError::LayerCountMismatch {
                declared: self.per_layer.len(),
                locked: self.next_layer + 1,
            });
        }
        let layer = self.next_layer;
        let want = self.per_layer[layer];
        if want == 0 {
            self.next_layer += 1;
            return Ok(Op::KeyedSign {
                layout,
                slots: vec![None; layout.n_units],
            });
        }
        let (sig_len, n_slots) = match self.spec.variant {
            LockVariant::SarTrigger => (want, want),
            LockVariant::AntiSatTrigger => {
                if !want.is_multiple_of(2) {
                    return Err(LockError::TriggerShape {
                        layer,
                        bits: want,
                        reason: "anti-sat pairs need an even share",
                    });
                }
                (want / 2, want)
            }
            _ => unreachable!("non-trigger variants delegate to lock_layer"),
        };
        if sig_len > input_dim {
            return Err(LockError::TriggerShape {
                layer,
                bits: want,
                reason: "more signature bits than input dimensions",
            });
        }
        self.next_layer += 1;
        let trigger_dims = self.rng.choose_indices(input_dim, sig_len);
        let slots: Vec<KeySlot> = (0..n_slots).map(|i| KeySlot(self.next_slot + i)).collect();
        self.next_slot += n_slots;
        let kind = match self.spec.variant {
            LockVariant::SarTrigger => {
                let mask: Vec<bool> = (0..sig_len).map(|_| self.rng.flip()).collect();
                for (s, &m) in slots.iter().zip(&mask) {
                    self.constraints.push(KeyConstraint::ForceBit {
                        slot: s.index(),
                        value: m,
                    });
                }
                TriggerKind::Sar { mask }
            }
            LockVariant::AntiSatTrigger => {
                for i in 0..sig_len {
                    self.constraints.push(KeyConstraint::EqualBits {
                        a: slots[i].index(),
                        b: slots[sig_len + i].index(),
                    });
                }
                TriggerKind::AntiSat
            }
            _ => unreachable!(),
        };
        Ok(Op::KeyedTrigger {
            trigger_dims,
            slots,
            kind,
        })
    }

    /// The key constraints accumulated so far, surrendering ownership.
    /// Builders call this once after the last `lock_*` call and apply the
    /// result to the sampled key via [`apply_key_constraints`].
    pub fn take_constraints(&mut self) -> Vec<KeyConstraint> {
        std::mem::take(&mut self.constraints)
    }

    /// Validates that every declared layer was locked and returns the total
    /// number of allocated key slots.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::LayerCountMismatch`] if some layers were never
    /// locked.
    pub fn finish(self) -> Result<usize, LockError> {
        if self.next_layer != self.per_layer.len() {
            return Err(LockError::LayerCountMismatch {
                declared: self.per_layer.len(),
                locked: self.next_layer,
            });
        }
        Ok(self.next_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_with_remainder() {
        let a = LockAllocator::new(LockSpec::evenly(10), 3, Prng::seed_from_u64(1));
        assert_eq!(a.per_layer, vec![4, 3, 3]);
    }

    #[test]
    fn lock_layer_allocates_distinct_slots() {
        let mut a = LockAllocator::new(LockSpec::evenly(4), 2, Prng::seed_from_u64(2));
        let op1 = a.lock_layer(UnitLayout::scalar(8)).unwrap();
        let op2 = a.lock_layer(UnitLayout::scalar(8)).unwrap();
        let slots: Vec<_> = op1.key_slots().into_iter().chain(op2.key_slots()).collect();
        assert_eq!(slots.len(), 4);
        let set: std::collections::HashSet<_> = slots.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(a.finish().unwrap(), 4);
    }

    #[test]
    fn water_filling_spills_overflow() {
        // 10 bits over capacities [2, 8, 8]: fair share 3/3/4 overflows the
        // first layer, so it saturates at 2 and the rest spills.
        let a = LockAllocator::with_capacities(
            LockSpec::evenly(10),
            &[2, 8, 8],
            Prng::seed_from_u64(6),
        )
        .unwrap();
        assert_eq!(a.per_layer.iter().sum::<usize>(), 10);
        assert_eq!(a.per_layer[0], 2);
        assert!(a.per_layer[1] <= 8 && a.per_layer[2] <= 8);
    }

    #[test]
    fn water_filling_exact_fit() {
        let a = LockAllocator::with_capacities(
            LockSpec::evenly(18),
            &[6, 6, 6],
            Prng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(a.per_layer, vec![6, 6, 6]);
    }

    #[test]
    fn water_filling_over_capacity_errors() {
        let err =
            LockAllocator::with_capacities(LockSpec::evenly(10), &[2, 3], Prng::seed_from_u64(8));
        assert!(matches!(err, Err(LockError::InsufficientCapacity { .. })));
    }

    #[test]
    fn layer_too_small_is_an_error() {
        let mut a = LockAllocator::new(LockSpec::evenly(9), 1, Prng::seed_from_u64(3));
        let err = a.lock_layer(UnitLayout::scalar(4)).unwrap_err();
        assert!(matches!(err, LockError::LayerTooSmall { .. }));
    }

    #[test]
    fn finish_detects_missing_layers() {
        let a = LockAllocator::new(LockSpec::evenly(2), 2, Prng::seed_from_u64(4));
        assert!(matches!(
            a.finish(),
            Err(LockError::LayerCountMismatch { .. })
        ));
    }

    #[test]
    fn unlocked_allocator_produces_passthrough() {
        let mut a = LockAllocator::unlocked(1);
        let op = a.lock_layer(UnitLayout::scalar(5)).unwrap();
        assert!(op.key_slots().is_empty());
    }

    #[test]
    fn variant_names_round_trip() {
        for v in [
            LockVariant::Sign,
            LockVariant::Scale(0.25),
            LockVariant::SarTrigger,
            LockVariant::AntiSatTrigger,
        ] {
            assert_eq!(v.name().parse::<LockVariant>().unwrap(), v);
        }
        assert!("nonsense".parse::<LockVariant>().is_err());
        assert!("scale:abc".parse::<LockVariant>().is_err());
    }

    #[test]
    fn sar_trigger_forces_key_to_mask() {
        let mut a = LockAllocator::new(LockSpec::sar(4), 1, Prng::seed_from_u64(9));
        let op = a.lock_trigger_layer(UnitLayout::scalar(6), 12).unwrap();
        let Op::KeyedTrigger {
            trigger_dims,
            slots,
            kind,
        } = &op
        else {
            panic!("expected a trigger op, got {}", op.kind());
        };
        assert_eq!(trigger_dims.len(), 4);
        assert_eq!(slots.len(), 4);
        let TriggerKind::Sar { mask } = kind else {
            panic!("expected SAR kind");
        };
        let constraints = a.take_constraints();
        assert_eq!(constraints.len(), 4);
        let mut key = Key::zeros(a.finish().unwrap());
        apply_key_constraints(&mut key, &constraints);
        for (s, &m) in slots.iter().zip(mask) {
            assert_eq!(key.bit(s.index()), m);
        }
    }

    #[test]
    fn antisat_trigger_equalizes_halves() {
        let mut a = LockAllocator::new(LockSpec::antisat(6), 1, Prng::seed_from_u64(10));
        let op = a.lock_trigger_layer(UnitLayout::scalar(5), 9).unwrap();
        let Op::KeyedTrigger {
            trigger_dims,
            slots,
            kind,
        } = &op
        else {
            panic!("expected a trigger op, got {}", op.kind());
        };
        assert_eq!(*kind, TriggerKind::AntiSat);
        assert_eq!(trigger_dims.len(), 3);
        assert_eq!(slots.len(), 6);
        let constraints = a.take_constraints();
        let mut key = Key::random(a.finish().unwrap(), &mut Prng::seed_from_u64(11));
        apply_key_constraints(&mut key, &constraints);
        for i in 0..3 {
            assert_eq!(key.bit(slots[i].index()), key.bit(slots[3 + i].index()));
        }
    }

    #[test]
    fn antisat_rejects_odd_share() {
        let mut a = LockAllocator::new(LockSpec::antisat(5), 1, Prng::seed_from_u64(12));
        let err = a.lock_trigger_layer(UnitLayout::scalar(8), 16).unwrap_err();
        assert!(matches!(err, LockError::TriggerShape { .. }));
    }

    #[test]
    fn lock_layer_rejects_trigger_variants() {
        let mut a = LockAllocator::new(LockSpec::sar(4), 1, Prng::seed_from_u64(13));
        let err = a.lock_layer(UnitLayout::scalar(8)).unwrap_err();
        assert!(matches!(err, LockError::TriggerShape { .. }));
    }

    #[test]
    fn non_trigger_spec_delegates_through_trigger_entry_point() {
        let mut a = LockAllocator::new(LockSpec::evenly(2), 1, Prng::seed_from_u64(14));
        let op = a.lock_trigger_layer(UnitLayout::scalar(4), 16).unwrap();
        assert!(matches!(op, Op::KeyedSign { .. }));
        assert_eq!(a.finish().unwrap(), 2);
    }

    #[test]
    fn scale_variant_produces_keyed_scale() {
        let mut a = LockAllocator::new(LockSpec::scale(2, 0.5), 1, Prng::seed_from_u64(5));
        let op = a.lock_layer(UnitLayout::scalar(4)).unwrap();
        assert!(matches!(op, Op::KeyedScale { factor, .. } if factor == 0.5));
    }
}
