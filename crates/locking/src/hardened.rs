//! Hardened oracle wrappers: cheap countermeasures an IP owner might bolt
//! onto the accelerator's output path, used to study the attack's
//! robustness (the paper's conclusion asks what *would* make DNN locking
//! safe; these wrappers let the test suite quantify how little the obvious
//! tweaks help).
//!
//! - [`QuantizedOracle`] rounds outputs to a fixed number of decimals
//!   (e.g. a display-precision API);
//! - [`NoisyOracle`] adds i.i.d. Gaussian noise to every logit;
//! - [`LabelOnlyOracle`] reveals nothing but the argmax class (one-hot);
//! - [`UnreliableOracle`] drops a fraction of requests on the floor,
//!   modelling a flaky accelerator link — the failure mode the
//!   `relock-serve` broker's retry policy exists for.

use crate::oracle::{Oracle, OracleError};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::sync::Mutex;

/// Rounds every output to `decimals` decimal places.
#[derive(Debug)]
pub struct QuantizedOracle<O> {
    inner: O,
    scale: f64,
}

impl<O: Oracle> QuantizedOracle<O> {
    /// Wraps `inner`, rounding outputs to `decimals` decimals.
    pub fn new(inner: O, decimals: u32) -> Self {
        QuantizedOracle {
            inner,
            scale: 10f64.powi(decimals as i32),
        }
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for QuantizedOracle<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.inner
            .query_batch(x)
            .map(|v| (v * self.scale).round() / self.scale)
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }
}

/// Adds i.i.d. Gaussian noise to every output component.
#[derive(Debug)]
pub struct NoisyOracle<O> {
    inner: O,
    sigma: f64,
    rng: Mutex<Prng>,
}

impl<O: Oracle> NoisyOracle<O> {
    /// Wraps `inner`, adding `N(0, sigma²)` noise per output element.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or non-finite — a silently
    /// accepted `NaN` sigma would poison every logit the oracle returns.
    pub fn new(inner: O, sigma: f64, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "NoisyOracle sigma must be finite and non-negative, got {sigma}"
        );
        NoisyOracle {
            inner,
            sigma,
            rng: Mutex::new(Prng::seed_from_u64(seed)),
        }
    }
}

impl<O: Oracle> Oracle for NoisyOracle<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        let mut out = self.inner.query_batch(x);
        let mut rng = self.rng.lock().expect("rng poisoned");
        for v in out.as_mut_slice() {
            *v += self.sigma * rng.normal();
        }
        out
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }
}

/// Reveals only the predicted class, as a one-hot vector — the weakest
/// observation model (decision-only access).
#[derive(Debug)]
pub struct LabelOnlyOracle<O> {
    inner: O,
}

impl<O: Oracle> LabelOnlyOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        LabelOnlyOracle { inner }
    }
}

impl<O: Oracle> Oracle for LabelOnlyOracle<O> {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        let y = self.inner.query_batch(x);
        let (b, q) = (y.dims()[0], y.dims()[1]);
        let mut out = Tensor::zeros([b, q]);
        for s in 0..b {
            let row = Tensor::from_slice(y.row(s));
            out.row_mut(s)[row.argmax()] = 1.0;
        }
        out
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }
}

/// Fails a deterministic pseudo-random fraction of requests with
/// [`OracleError::Backend`] — a fault-injection double for a lossy
/// hardware link. Only the fallible surface observes the failures; pair
/// it with the `relock-serve` broker (or its `RetryOracle`) to study
/// retry-with-backoff behaviour.
#[derive(Debug)]
pub struct UnreliableOracle<O> {
    inner: O,
    failure_rate: f64,
    rng: Mutex<Prng>,
}

impl<O: Oracle> UnreliableOracle<O> {
    /// Wraps `inner`; each `try_query_batch` fails independently with
    /// probability `failure_rate`.
    ///
    /// # Panics
    ///
    /// Panics when `failure_rate` is outside `[0, 1]` or non-finite. A
    /// rate of exactly `1.0` is accepted for the fallible surface but
    /// internally capped just below it so [`Oracle::query_batch`]'s
    /// resubmit loop cannot spin forever.
    pub fn new(inner: O, failure_rate: f64, seed: u64) -> Self {
        assert!(
            failure_rate.is_finite() && (0.0..=1.0).contains(&failure_rate),
            "UnreliableOracle failure_rate must be within [0, 1], got {failure_rate}"
        );
        UnreliableOracle {
            inner,
            failure_rate: failure_rate.min(0.999_999),
            rng: Mutex::new(Prng::seed_from_u64(seed)),
        }
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    fn roll_failure(&self) -> bool {
        let mut rng = self.rng.lock().expect("rng poisoned");
        rng.uniform() < self.failure_rate
    }
}

impl<O: Oracle> Oracle for UnreliableOracle<O> {
    /// The infallible surface retries internally until the link succeeds —
    /// a dropped request costs nothing but time, so this models a caller
    /// that blindly resubmits. Budgeted callers should use
    /// [`Oracle::try_query_batch`] and a broker retry policy instead.
    fn query_batch(&self, x: &Tensor) -> Tensor {
        while self.roll_failure() {}
        self.inner.query_batch(x)
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        if self.roll_failure() {
            return Err(OracleError::Backend {
                message: "injected transport failure".to_string(),
                attempts: 1,
            });
        }
        self.inner.try_query_batch(x)
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.inner.remaining_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingOracle, Key, LockedModel};
    use relock_graph::{GraphBuilder, KeySlot, Op, UnitLayout};

    fn model() -> LockedModel {
        let mut rng = Prng::seed_from_u64(800);
        let mut gb = GraphBuilder::new();
        let x = gb.input(3);
        let lin = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([4, 3]),
                    b: rng.normal_tensor([4]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let keyed = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(4),
                    slots: vec![Some(KeySlot(0)), None, None, None],
                },
                &[lin],
            )
            .unwrap();
        let relu = gb.add(Op::Relu, &[keyed]).unwrap();
        let out = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([2, 4]),
                    b: rng.normal_tensor([2]),
                    weight_locks: vec![],
                },
                &[relu],
            )
            .unwrap();
        LockedModel::new(gb.build(out).unwrap(), Key::from_bits(vec![true]))
    }

    #[test]
    fn quantized_outputs_are_on_the_grid() {
        let m = model();
        let o = QuantizedOracle::new(CountingOracle::new(&m), 2);
        let mut rng = Prng::seed_from_u64(801);
        let y = o.query(&rng.normal_tensor([3]));
        for &v in y.as_slice() {
            assert!(((v * 100.0).round() / 100.0 - v).abs() < 1e-12);
        }
        assert_eq!(o.query_count(), 1);
    }

    #[test]
    fn noisy_oracle_perturbs_but_tracks() {
        let m = model();
        let o = NoisyOracle::new(CountingOracle::new(&m), 0.01, 7);
        let mut rng = Prng::seed_from_u64(802);
        let x = rng.normal_tensor([3]);
        let clean = m.logits(&x);
        let noisy = o.query(&x);
        let diff = clean.max_abs_diff(&noisy);
        assert!(diff > 0.0 && diff < 0.1, "noise diff {diff}");
    }

    #[test]
    fn unreliable_oracle_fails_sometimes_but_never_corrupts() {
        let m = model();
        let o = UnreliableOracle::new(CountingOracle::new(&m), 0.5, 17);
        let mut rng = Prng::seed_from_u64(804);
        let x = rng.normal_tensor([1, 3]);
        let clean = m.logits(&Tensor::from_slice(x.row(0)));
        let (mut failures, mut successes) = (0u32, 0u32);
        for _ in 0..64 {
            match o.try_query_batch(&x) {
                Ok(y) => {
                    successes += 1;
                    assert_eq!(y.row(0), clean.as_slice(), "successes are bit-exact");
                }
                Err(OracleError::Backend { .. }) => failures += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failures > 5, "only {failures} injected failures");
        assert!(successes > 5, "only {successes} successes");
    }

    #[test]
    #[should_panic(expected = "failure_rate must be within [0, 1]")]
    fn unreliable_oracle_rejects_rate_above_one() {
        let _ = UnreliableOracle::new(CountingOracle::new(&model()), 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "failure_rate must be within [0, 1]")]
    fn unreliable_oracle_rejects_negative_rate() {
        let _ = UnreliableOracle::new(CountingOracle::new(&model()), -0.25, 0);
    }

    #[test]
    #[should_panic(expected = "failure_rate must be within [0, 1]")]
    fn unreliable_oracle_rejects_nan_rate() {
        let _ = UnreliableOracle::new(CountingOracle::new(&model()), f64::NAN, 0);
    }

    #[test]
    fn unreliable_oracle_accepts_certain_failure_without_spinning_try() {
        let o = UnreliableOracle::new(CountingOracle::new(&model()), 1.0, 3);
        let x = Tensor::zeros([1, 3]);
        for _ in 0..8 {
            assert!(o.try_query_batch(&x).is_err(), "rate 1.0 must always fail");
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be finite and non-negative")]
    fn noisy_oracle_rejects_negative_sigma() {
        let _ = NoisyOracle::new(CountingOracle::new(&model()), -0.1, 0);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite and non-negative")]
    fn noisy_oracle_rejects_nan_sigma() {
        let _ = NoisyOracle::new(CountingOracle::new(&model()), f64::NAN, 0);
    }

    #[test]
    fn label_only_reveals_one_hot() {
        let m = model();
        let o = LabelOnlyOracle::new(CountingOracle::new(&m));
        let mut rng = Prng::seed_from_u64(803);
        let y = o.query(&rng.normal_tensor([3]));
        assert_eq!(y.sum(), 1.0);
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}
