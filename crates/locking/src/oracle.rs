//! The locked model artifact and the adversary-facing oracle.
//!
//! Under the paper's adversary model (§2.3) the attacker holds the network
//! *architecture and parameters* (the white box) but not the key, and can
//! query a working hardware instance (the oracle) with arbitrary inputs,
//! observing logits. The oracle counts queries so experiments can report the
//! query-complexity column of Table 1.

use crate::key::Key;
use relock_graph::{Graph, KeyAssignment, SerialError, WorkspacePool};
use relock_tensor::Tensor;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Failures of the fallible oracle surface.
///
/// Bare hardware oracles never fail (their [`Oracle::try_query_batch`]
/// default forwards to the infallible path), but brokered or flaky
/// transports do: a query broker enforces budgets and deadlines, and a
/// real accelerator link can drop requests. Procedures that can degrade
/// gracefully (validation, error correction, the learning harvest) call
/// the `try_` surface and treat these as a signal to fall back rather
/// than panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The query budget is spent; `spent + requested` would exceed it.
    BudgetExhausted {
        /// Underlying query rows already issued.
        spent: u64,
        /// The configured budget.
        budget: u64,
        /// Rows the rejected request asked for.
        requested: u64,
    },
    /// The wall-clock deadline for the whole query session has passed.
    DeadlineExceeded {
        /// Time elapsed since the session started.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
    },
    /// The transport/backend failed (after any configured retries).
    Backend {
        /// Human-readable failure description.
        message: String,
        /// Attempts made before giving up (≥ 1).
        attempts: u32,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::BudgetExhausted {
                spent,
                budget,
                requested,
            } => write!(
                f,
                "query budget exhausted: {spent}/{budget} spent, {requested} more requested"
            ),
            OracleError::DeadlineExceeded { elapsed, deadline } => write!(
                f,
                "query deadline exceeded: {:.3}s elapsed of {:.3}s allowed",
                elapsed.as_secs_f64(),
                deadline.as_secs_f64()
            ),
            OracleError::Backend { message, attempts } => {
                write!(
                    f,
                    "oracle backend failed after {attempts} attempt(s): {message}"
                )
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// What the oracle reveals per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMode {
    /// Raw logits (the adversary model's stronger observation).
    #[default]
    Logits,
    /// Softmax probabilities.
    Softmax,
}

/// A trained network bundled with its secret key — the IP owner's artifact.
#[derive(Debug, Clone)]
pub struct LockedModel {
    graph: Graph,
    true_key: Key,
}

impl LockedModel {
    /// Bundles a locked graph with its key.
    ///
    /// # Panics
    ///
    /// Panics if the key length does not match the graph's slot count.
    pub fn new(graph: Graph, true_key: Key) -> Self {
        assert_eq!(
            graph.key_slot_count(),
            true_key.len(),
            "key length {} != graph slots {}",
            true_key.len(),
            graph.key_slot_count()
        );
        LockedModel { graph, true_key }
    }

    /// The network description an adversary downloads: architecture and all
    /// weights, but no key.
    pub fn white_box(&self) -> &Graph {
        &self.graph
    }

    /// The compiled execution plan of the model's graph (schedule, shapes,
    /// ancestor bitsets). Compiled on first use and cached; plan statistics
    /// (node count, per-node output sizes) are what harnesses report.
    pub fn plan(&self) -> &relock_graph::ExecPlan {
        self.graph.plan()
    }

    /// Mutable graph access (used by the trainer).
    pub fn white_box_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The secret key (ground truth; experiments only).
    pub fn true_key(&self) -> &Key {
        &self.true_key
    }

    /// Logits under the true key.
    pub fn logits(&self, x: &Tensor) -> Tensor {
        self.graph.logits(x, &self.true_key.to_assignment())
    }

    /// Logits under an arbitrary candidate key.
    pub fn logits_with(&self, x: &Tensor, key: &Key) -> Tensor {
        self.graph.logits(x, &key.to_assignment())
    }

    /// Classification accuracy on a labelled set under an arbitrary key.
    pub fn accuracy_with(&self, x: &Tensor, labels: &[usize], key: &Key) -> f64 {
        let logits = self.graph.logits_batch(x, &key.to_assignment());
        let q = logits.dims()[1];
        let mut correct = 0usize;
        for (s, &label) in labels.iter().enumerate() {
            let row = Tensor::from_slice(&logits.as_slice()[s * q..(s + 1) * q]);
            if row.argmax() == label {
                correct += 1;
            }
        }
        correct as f64 / labels.len().max(1) as f64
    }

    /// Accuracy under the true key.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        self.accuracy_with(x, labels, &self.true_key.clone())
    }

    /// Serializes the model (graph + key) into a writer — the IP owner's
    /// on-disk artifact, consumed by the workspace CLI.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        self.graph.save(w)?;
        let bits = self.true_key.bits();
        w.write_all(&(bits.len() as u64).to_le_bytes())?;
        for &b in bits {
            w.write_all(&[u8::from(b)])?;
        }
        Ok(())
    }

    /// Deserializes a model written by [`LockedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed bytes or a key that does not
    /// match the graph's slot count.
    pub fn load(r: &mut impl Read) -> Result<LockedModel, SerialError> {
        let graph = Graph::load(r)?;
        let mut len_buf = [0u8; 8];
        r.read_exact(&mut len_buf).map_err(SerialError::Io)?;
        let n = u64::from_le_bytes(len_buf) as usize;
        if n != graph.key_slot_count() {
            return Err(SerialError::Corrupt(format!(
                "key length {n} does not match graph slots {}",
                graph.key_slot_count()
            )));
        }
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            let mut b = [0u8; 1];
            r.read_exact(&mut b).map_err(SerialError::Io)?;
            bits.push(match b[0] {
                0 => false,
                1 => true,
                t => {
                    return Err(SerialError::Corrupt(format!("bad key bit byte {t}")));
                }
            });
        }
        Ok(LockedModel::new(graph, Key::from_bits(bits)))
    }
}

/// The adversary's I/O interface to a working locked instance.
pub trait Oracle: Sync {
    /// Queries a `(B, P)` batch, returning `(B, Q)` outputs.
    fn query_batch(&self, x: &Tensor) -> Tensor;

    /// Total input rows queried so far.
    fn query_count(&self) -> u64;

    /// Input dimensionality `P`.
    fn input_dim(&self) -> usize;

    /// Output dimensionality `Q`.
    fn output_dim(&self) -> usize;

    /// Queries a single input vector.
    fn query(&self, x: &Tensor) -> Tensor {
        let b = self.query_batch(&x.reshape([1, x.numel()]));
        Tensor::from_slice(b.row(0))
    }

    /// Fallible batch query. Bare oracles never fail; brokered oracles
    /// return [`OracleError::BudgetExhausted`] / `DeadlineExceeded`, and
    /// flaky transports [`OracleError::Backend`]. Budget-aware procedures
    /// must use this surface and degrade on `Err`.
    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        Ok(self.query_batch(x))
    }

    /// Fallible single query.
    fn try_query(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let b = self.try_query_batch(&x.reshape([1, x.numel()]))?;
        Ok(Tensor::from_slice(b.row(0)))
    }

    /// Underlying query rows still affordable, if this oracle enforces a
    /// budget (`None` = unlimited). Callers sizing a harvest (e.g. the
    /// learning attack's training set) clamp their request to this.
    fn remaining_budget(&self) -> Option<u64> {
        None
    }
}

/// References to oracles are oracles. This lets wrappers such as the
/// `relock-serve` broker hold `&dyn Oracle` without caring whether they
/// own the backend, and lets call sites stack wrappers without moves.
impl<O: Oracle + ?Sized> Oracle for &O {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        (**self).query_batch(x)
    }

    fn query_count(&self) -> u64 {
        (**self).query_count()
    }

    fn input_dim(&self) -> usize {
        (**self).input_dim()
    }

    fn output_dim(&self) -> usize {
        (**self).output_dim()
    }

    fn query(&self, x: &Tensor) -> Tensor {
        (**self).query(x)
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        (**self).try_query_batch(x)
    }

    fn try_query(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        (**self).try_query(x)
    }

    fn remaining_budget(&self) -> Option<u64> {
        (**self).remaining_budget()
    }
}

/// The standard oracle: a [`LockedModel`] evaluated under its true key,
/// with an atomic query counter.
///
/// Evaluation runs through the graph's planned engine: each query checks a
/// [`Workspace`] out of an internal pool, so the per-node buffers of the
/// forward pass are reused across the attack's hundreds of thousands of
/// queries instead of reallocated. The pool grows to the peak number of
/// concurrently querying threads and no further.
#[derive(Debug)]
pub struct CountingOracle {
    graph: Graph,
    keys: KeyAssignment,
    mode: OutputMode,
    counter: AtomicU64,
    pool: WorkspacePool,
}

impl CountingOracle {
    /// Builds the oracle from a locked model (logit output).
    pub fn new(model: &LockedModel) -> Self {
        CountingOracle {
            graph: model.white_box().clone(),
            keys: model.true_key().to_assignment(),
            mode: OutputMode::Logits,
            counter: AtomicU64::new(0),
            pool: WorkspacePool::new(),
        }
    }

    /// Builds the oracle with an explicit output mode.
    pub fn with_mode(model: &LockedModel, mode: OutputMode) -> Self {
        CountingOracle {
            mode,
            ..CountingOracle::new(model)
        }
    }

    /// Resets the query counter (between experiment phases).
    ///
    /// Callers must not race this with in-flight queries; phases are
    /// separated by thread joins in every harness, which synchronize.
    pub fn reset_count(&self) {
        self.counter.store(0, Ordering::Relaxed);
    }

    /// Charges `rows` query rows to the counter in one atomic step — the
    /// batch-counting primitive used by [`Oracle::query_batch`] and by
    /// external accountants (e.g. a broker replaying a cached batch into a
    /// fresh counter). An N-row batch costs exactly N.
    ///
    /// `Relaxed` ordering is correct here and in [`Oracle::query_count`]:
    /// the counter is a statistic, not a synchronization point. Every
    /// reader that needs an exact total (the per-phase accounting in
    /// `Decryptor::run`, the broker's stats snapshots) reads after the
    /// worker threads that issued the queries have been joined, and
    /// `thread::scope`'s join provides the happens-before edge; `fetch_add`
    /// itself is a single atomic RMW, so no increments are lost even under
    /// concurrent batches from a worker pool.
    pub fn add_queries(&self, rows: u64) {
        self.counter.fetch_add(rows, Ordering::Relaxed);
    }

    /// Workspaces currently parked in the pool (diagnostics; equals the
    /// peak number of concurrent queriers once traffic quiesces).
    pub fn pooled_workspaces(&self) -> usize {
        self.pool.idle_count()
    }
}

impl Oracle for CountingOracle {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.add_queries(x.dims()[0] as u64);
        // The RAII guard returns the workspace to the shared pool on drop,
        // so the per-node buffers of the forward pass are reused across
        // the attack's queries (and its lock is held only for the
        // check-out/check-in, never across the pass).
        let mut ws = self.pool.acquire();
        let logits = self.graph.logits_batch_into(&mut ws, x, &self.keys);
        match self.mode {
            OutputMode::Logits => logits.clone(),
            OutputMode::Softmax => {
                let (b, q) = (logits.dims()[0], logits.dims()[1]);
                let mut out = Vec::with_capacity(b * q);
                for s in 0..b {
                    let row = Tensor::from_slice(logits.row(s)).softmax();
                    out.extend_from_slice(row.as_slice());
                }
                Tensor::from_vec(out, [b, q])
            }
        }
    }

    fn query_count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    fn input_dim(&self) -> usize {
        self.graph.input_size()
    }

    fn output_dim(&self) -> usize {
        self.graph.output_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_graph::{GraphBuilder, KeySlot, Op, UnitLayout};
    use relock_tensor::rng::Prng;

    fn tiny_locked_model() -> LockedModel {
        let mut rng = Prng::seed_from_u64(20);
        let mut gb = GraphBuilder::new();
        let x = gb.input(3);
        let l = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([4, 3]),
                    b: rng.normal_tensor([4]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let k = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(4),
                    slots: vec![Some(KeySlot(0)), Some(KeySlot(1)), None, None],
                },
                &[l],
            )
            .unwrap();
        let r = gb.add(Op::Relu, &[k]).unwrap();
        let out = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([2, 4]),
                    b: rng.normal_tensor([2]),
                    weight_locks: vec![],
                },
                &[r],
            )
            .unwrap();
        let g = gb.build(out).unwrap();
        LockedModel::new(g, Key::from_bits(vec![true, false]))
    }

    #[test]
    fn counter_is_exact_under_concurrent_batches() {
        // The broker's worker pool hits the counter from several threads
        // at once; every row must be counted exactly once (N per N-row
        // batch, not 1), and the post-join read must see the full total.
        let m = tiny_locked_model();
        let o = CountingOracle::new(&m);
        let threads = 8usize;
        let batches_per_thread = 25usize;
        let rows_per_batch = 3usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let o = &o;
                scope.spawn(move || {
                    let mut rng = Prng::seed_from_u64(900 + t as u64);
                    for _ in 0..batches_per_thread {
                        o.query_batch(&rng.normal_tensor([rows_per_batch, 3]));
                    }
                });
            }
        });
        assert_eq!(
            o.query_count(),
            (threads * batches_per_thread * rows_per_batch) as u64
        );
        // The workspace pool must not leak: it ends with at most one
        // workspace per peak-concurrent querier, and at least one overall.
        let pooled = o.pooled_workspaces();
        assert!(
            (1..=threads).contains(&pooled),
            "pool holds {pooled} workspaces after {threads} threads"
        );
    }

    #[test]
    fn reference_to_oracle_is_an_oracle() {
        let m = tiny_locked_model();
        let o = CountingOracle::new(&m);
        let by_ref: &dyn Oracle = &&o;
        let mut rng = Prng::seed_from_u64(901);
        let x = rng.normal_tensor([3]);
        assert_eq!(by_ref.input_dim(), 3);
        let direct = o.query(&x);
        let through_ref = by_ref.try_query(&x).unwrap();
        assert_eq!(direct.as_slice(), through_ref.as_slice());
        assert_eq!(by_ref.query_count(), 2);
        assert_eq!(by_ref.remaining_budget(), None);
    }

    #[test]
    fn oracle_counts_rows() {
        let m = tiny_locked_model();
        let o = CountingOracle::new(&m);
        let mut rng = Prng::seed_from_u64(21);
        o.query(&rng.normal_tensor([3]));
        o.query_batch(&rng.normal_tensor([5, 3]));
        assert_eq!(o.query_count(), 6);
        o.reset_count();
        assert_eq!(o.query_count(), 0);
    }

    #[test]
    fn oracle_matches_true_key_logits() {
        let m = tiny_locked_model();
        let o = CountingOracle::new(&m);
        let mut rng = Prng::seed_from_u64(22);
        let x = rng.normal_tensor([3]);
        assert!(o.query(&x).max_abs_diff(&m.logits(&x)) < 1e-15);
    }

    #[test]
    fn wrong_key_changes_outputs() {
        let m = tiny_locked_model();
        let mut rng = Prng::seed_from_u64(23);
        // A wrong key must disagree with the oracle somewhere.
        let wrong = Key::from_bits(vec![false, false]);
        let mut differs = false;
        for _ in 0..10 {
            let x = rng.normal_tensor([3]);
            if m.logits(&x).max_abs_diff(&m.logits_with(&x, &wrong)) > 1e-9 {
                differs = true;
                break;
            }
        }
        assert!(differs, "flipping a key bit should change the function");
    }

    #[test]
    fn softmax_mode_normalizes() {
        let m = tiny_locked_model();
        let o = CountingOracle::with_mode(&m, OutputMode::Softmax);
        let mut rng = Prng::seed_from_u64(24);
        let y = o.query(&rng.normal_tensor([3]));
        assert!((y.sum() - 1.0).abs() < 1e-12);
    }
}
