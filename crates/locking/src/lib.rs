//! HPNN logic locking for deep neural networks, and the adversary's oracle.
//!
//! HPNN (Chakraborty et al., DAC'20) protects a DNN's intellectual property
//! by entangling its parameters with a secret binary key held in hardware
//! root-of-trust: each *key-protected neuron* gets a flipping unit that
//! negates its pre-activation when the key bit is 1 (paper Eq. 1), and the
//! network is **trained as a function of the key**, so a wrong key wrecks
//! accuracy.
//!
//! This crate provides:
//!
//! - [`Key`] — binary keys with the fidelity/Hamming metrics of §4.2;
//! - [`LockSpec`]/[`LockAllocator`] — the §4.2 encryption protocol (equal
//!   split across layers, uniformly random neurons and bits), plus the §3.9
//!   multiplicative variant;
//! - [`LockedModel`] — graph + secret key, the IP owner's artifact;
//! - [`Oracle`]/[`CountingOracle`] — the adversary's query-counted I/O
//!   interface (§2.3 adversary model).
//!
//! Model construction lives in `relock-nn`; this crate is deliberately
//! architecture-agnostic.

mod hardened;
mod key;
mod oracle;
mod scheme;

pub use hardened::{LabelOnlyOracle, NoisyOracle, QuantizedOracle, UnreliableOracle};
pub use key::Key;
pub use oracle::{CountingOracle, LockedModel, Oracle, OracleError, OutputMode};
pub use scheme::{
    apply_key_constraints, KeyConstraint, LockAllocator, LockError, LockSpec, LockVariant,
};
