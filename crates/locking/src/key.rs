//! Binary keys and key metrics.

use relock_graph::KeyAssignment;
use relock_tensor::rng::Prng;
use std::fmt;

/// A binary locking key: one bit per protected unit.
///
/// ```
/// use relock_locking::Key;
/// use relock_tensor::rng::Prng;
/// let mut rng = Prng::seed_from_u64(1);
/// let k = Key::random(8, &mut rng);
/// assert_eq!(k.len(), 8);
/// assert_eq!(k.fidelity(&k), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// A key of `n` zero bits.
    pub fn zeros(n: usize) -> Self {
        Key {
            bits: vec![false; n],
        }
    }

    /// A uniformly random key of `n` bits (the paper's §4.2 protocol
    /// assigns every bit uniformly at random).
    pub fn random(n: usize, rng: &mut Prng) -> Self {
        Key {
            bits: (0..n).map(|_| rng.flip()).collect(),
        }
    }

    /// Wraps explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Key { bits }
    }

    /// Key length.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// One bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets one bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_bit(&mut self, i: usize, b: bool) {
        self.bits[i] = b;
    }

    /// Flips one bit in place.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip_bit(&mut self, i: usize) {
        self.bits[i] = !self.bits[i];
    }

    /// Returns a copy with bit `i` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_flipped(&self, i: usize) -> Key {
        let mut k = self.clone();
        k.flip_bit(i);
        k
    }

    /// Hamming distance to another key.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &Key) -> usize {
        assert_eq!(self.len(), other.len(), "key length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Fidelity: the fraction of bits matching `reference` (the paper's
    /// key-recovery metric; 1.0 means an exactly recovered key).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn fidelity(&self, reference: &Key) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        1.0 - self.hamming(reference) as f64 / self.len() as f64
    }

    /// The continuous multiplier assignment for this key
    /// (`bit 0 → +1`, `bit 1 → −1`).
    pub fn to_assignment(&self) -> KeyAssignment {
        KeyAssignment::from_bits(&self.bits)
    }

    /// A key different from `self` in exactly `d` random positions.
    ///
    /// # Panics
    ///
    /// Panics if `d > len()`.
    pub fn random_within_hamming(&self, d: usize, rng: &mut Prng) -> Key {
        let idx = rng.choose_indices(self.len(), d);
        let mut k = self.clone();
        for i in idx {
            k.flip_bit(i);
        }
        k
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_and_fidelity() {
        let a = Key::from_bits(vec![true, false, true, true]);
        let b = Key::from_bits(vec![true, true, true, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.fidelity(&b), 0.5);
        assert_eq!(a.fidelity(&a), 1.0);
    }

    #[test]
    fn assignment_round_trip() {
        let a = Key::from_bits(vec![true, false]);
        let ka = a.to_assignment();
        assert_eq!(ka.to_bits(), a.bits());
    }

    #[test]
    fn random_within_hamming_is_exact() {
        let mut rng = Prng::seed_from_u64(3);
        let a = Key::random(32, &mut rng);
        for d in [0, 1, 5, 32] {
            let b = a.random_within_hamming(d, &mut rng);
            assert_eq!(a.hamming(&b), d);
        }
    }

    #[test]
    fn display_is_bitstring() {
        let a = Key::from_bits(vec![true, false, true]);
        assert_eq!(a.to_string(), "101");
    }
}
