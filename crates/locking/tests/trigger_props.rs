//! Property tests for the trigger locks (SARLock / Anti-SAT analogues).
//!
//! Each case builds a locked two-layer network and an *unlocked twin*
//! sharing the exact same weights, then checks the defining contract of
//! point-corruption locking across a Prng sweep of shapes, keys, and
//! inputs:
//!
//! * under the correct key the locked graph is **bit-identical** to the
//!   twin on random inputs (the trigger never fires);
//! * under a wrong key, a row is corrupted **iff** the comparator fires
//!   on that row's input signature — corruption is confined to the
//!   trigger subspace, which is why random critical-point sampling
//!   degrades against these schemes (DESIGN.md §3h);
//! * a minimally wrong key (one flipped bit) provably corrupts a crafted
//!   input inside the trigger subspace, so the sweep is never vacuous.

use relock_graph::{Graph, GraphBuilder, KeyAssignment, KeySlot, Op, TriggerKind, UnitLayout};
use relock_locking::{apply_key_constraints, Key, LockAllocator, LockSpec, LockVariant};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

struct TriggerVictim {
    locked: Graph,
    plain: Graph,
    /// A correct key (satisfies the allocator's constraints).
    key: Key,
    trigger_dims: Vec<usize>,
    slots: Vec<KeySlot>,
    kind: TriggerKind,
    input: usize,
}

/// The sweep grid: `(variant, bits, input_dim, hidden)`. Anti-SAT shares
/// must be even; SAR signatures need `input_dim >= bits`.
fn grid() -> Vec<(LockVariant, usize, usize, usize)> {
    let mut g = Vec::new();
    for variant in [LockVariant::SarTrigger, LockVariant::AntiSatTrigger] {
        for (bits, input, hidden) in [(4, 8, 6), (6, 12, 10), (8, 16, 5)] {
            g.push((variant, bits, input, hidden));
        }
    }
    g
}

fn victim(
    variant: LockVariant,
    bits: usize,
    input: usize,
    hidden: usize,
    seed: u64,
) -> TriggerVictim {
    let classes = 3;
    let mut rng = Prng::seed_from_u64(seed);
    let w1 = rng.kaiming_tensor([hidden, input], input);
    let b1 = rng.kaiming_tensor([hidden], input);
    let w2 = rng.kaiming_tensor([classes, hidden], hidden);
    let b2 = rng.kaiming_tensor([classes], hidden);

    let mut alloc =
        LockAllocator::for_trigger(LockSpec::with_variant(bits, variant), 1, input, rng.fork())
            .expect("grid shapes fit");
    let mut gb = GraphBuilder::new();
    let x = gb.input(input);
    let lin = gb
        .add(
            Op::Linear {
                w: w1.clone(),
                b: b1.clone(),
                weight_locks: vec![],
            },
            &[x],
        )
        .unwrap();
    let op = alloc
        .lock_trigger_layer(UnitLayout::scalar(hidden), input)
        .expect("grid shapes fit");
    let keyed = if op.arity() == 2 {
        gb.add(op, &[lin, x]).unwrap()
    } else {
        gb.add(op, &[lin]).unwrap()
    };
    let relu = gb.add(Op::Relu, &[keyed]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: w2.clone(),
                b: b2.clone(),
                weight_locks: vec![],
            },
            &[relu],
        )
        .unwrap();
    let constraints = alloc.take_constraints();
    let n_slots = alloc.finish().unwrap();
    let locked = gb.build(out).unwrap();
    let mut key = Key::random(n_slots, &mut rng);
    apply_key_constraints(&mut key, &constraints);

    let mut gb = GraphBuilder::new();
    let x = gb.input(input);
    let lin = gb
        .add(
            Op::Linear {
                w: w1,
                b: b1,
                weight_locks: vec![],
            },
            &[x],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[lin]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: w2,
                b: b2,
                weight_locks: vec![],
            },
            &[relu],
        )
        .unwrap();
    let plain = gb.build(out).unwrap();

    let node = locked
        .nodes()
        .iter()
        .find(|n| matches!(n.op, Op::KeyedTrigger { .. }))
        .expect("locked graph holds the trigger op");
    let Op::KeyedTrigger {
        trigger_dims,
        slots,
        kind,
    } = &node.op
    else {
        unreachable!()
    };
    TriggerVictim {
        trigger_dims: trigger_dims.clone(),
        slots: slots.clone(),
        kind: kind.clone(),
        locked,
        plain,
        key,
        input,
    }
}

fn rows_equal_bitwise(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl TriggerVictim {
    /// The comparator's input signature of one raw-input row (the exact
    /// rule the executor applies: sign at each sampled coordinate).
    fn signature(&self, row: &[f64]) -> Vec<bool> {
        self.trigger_dims.iter().map(|&d| row[d] >= 0.0).collect()
    }

    /// Key bits in comparator order under an assignment.
    fn comparator_bits(&self, keys: &KeyAssignment) -> Vec<bool> {
        self.slots
            .iter()
            .map(|&s| keys.multiplier(s) < 0.0)
            .collect()
    }

    /// A raw input whose signature is exactly `sig`, otherwise random.
    fn input_with_signature(&self, sig: &[bool], rng: &mut Prng) -> Tensor {
        let mut row: Vec<f64> = (0..self.input).map(|_| rng.normal() * 2.0).collect();
        for (&d, &s) in self.trigger_dims.iter().zip(sig) {
            row[d] = if s {
                row[d].abs().max(0.5)
            } else {
                -row[d].abs().max(0.5)
            };
        }
        Tensor::from_vec(row, [1, self.input])
    }
}

#[test]
fn correct_key_is_bit_identical_to_the_unlocked_twin() {
    let empty = KeyAssignment::from_bits(&[]);
    for (i, (variant, bits, input, hidden)) in grid().into_iter().enumerate() {
        let v = victim(variant, bits, input, hidden, 4100 + i as u64);
        let mut rng = Prng::seed_from_u64(5200 + i as u64);
        let x = rng.normal_tensor([48, input]).scale(2.0);
        let got = v.locked.logits_batch(&x, &v.key.to_assignment());
        let want = v.plain.logits_batch(&x, &empty);
        assert!(
            rows_equal_bitwise(got.as_slice(), want.as_slice()),
            "{variant} {bits}-bit on {input}→{hidden}: correct key must be a bit-exact pass-through"
        );
        // And the comparator itself agrees: a correct key never fires.
        let kb = v.comparator_bits(&v.key.to_assignment());
        for s in 0..x.dims()[0] {
            assert!(!v.kind.fires(&v.signature(x.row(s)), &kb));
        }
    }
}

#[test]
fn wrong_keys_corrupt_exactly_the_trigger_subspace() {
    let empty = KeyAssignment::from_bits(&[]);
    let mut fired_total = 0usize;
    for (i, (variant, bits, input, hidden)) in grid().into_iter().enumerate() {
        let v = victim(variant, bits, input, hidden, 4300 + i as u64);
        let mut rng = Prng::seed_from_u64(6400 + i as u64);
        let want = {
            let x = rng.normal_tensor([64, input]);
            (x.clone(), v.plain.logits_batch(&x, &empty))
        };
        for _ in 0..6 {
            let wrong = Key::random(bits, &mut rng);
            let aw = wrong.to_assignment();
            let kb = v.comparator_bits(&aw);
            let got = v.locked.logits_batch(&want.0, &aw);
            for s in 0..want.0.dims()[0] {
                let fires = v.kind.fires(&v.signature(want.0.row(s)), &kb);
                let differs = !rows_equal_bitwise(got.row(s), want.1.row(s));
                assert_eq!(
                    differs, fires,
                    "{variant} {bits}-bit row {s}: corruption must coincide with the comparator firing"
                );
                fired_total += fires as usize;
            }
        }
    }
    assert!(
        fired_total > 0,
        "the sweep must hit the trigger subspace at least once"
    );
}

#[test]
fn a_minimally_wrong_key_corrupts_a_crafted_trigger_input() {
    let empty = KeyAssignment::from_bits(&[]);
    for (i, (variant, bits, input, hidden)) in grid().into_iter().enumerate() {
        let v = victim(variant, bits, input, hidden, 4500 + i as u64);
        let mut rng = Prng::seed_from_u64(7600 + i as u64);

        // Flip one bit of the correct key. For SAR the comparator then
        // fires at sig == wrong-key; for Anti-SAT flip inside the k2 half
        // and it fires at sig == ¬k1 (the flipped coordinate matches).
        let mut wrong = v.key.clone();
        let flip_at = match variant {
            LockVariant::AntiSatTrigger => bits / 2,
            _ => 0,
        };
        wrong.flip_bit(flip_at);
        let aw = wrong.to_assignment();
        let kb = v.comparator_bits(&aw);

        let sig: Vec<bool> = match variant {
            LockVariant::SarTrigger => kb.clone(),
            LockVariant::AntiSatTrigger => kb[..bits / 2].iter().map(|b| !b).collect(),
            _ => unreachable!("trigger grid only"),
        };
        assert!(v.kind.fires(&sig, &kb), "crafted signature must fire");

        let x = v.input_with_signature(&sig, &mut rng);
        let got = v.locked.logits_batch(&x, &aw);
        let want = v.plain.logits_batch(&x, &empty);
        assert!(
            !rows_equal_bitwise(got.as_slice(), want.as_slice()),
            "{variant} {bits}-bit: a crafted in-subspace input must be corrupted"
        );
        // The same input under the correct key stays clean.
        let clean = v.locked.logits_batch(&x, &v.key.to_assignment());
        assert!(rows_equal_bitwise(clean.as_slice(), want.as_slice()));
    }
}
