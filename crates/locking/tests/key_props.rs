//! Property tests of key metrics and the lock allocator (randomized with
//! the in-tree `Prng`; no external test dependencies).

use relock_graph::UnitLayout;
use relock_locking::{Key, LockAllocator, LockSpec};
use relock_tensor::rng::Prng;

/// Hamming distance is a metric: symmetric, zero iff equal, triangle.
#[test]
fn hamming_is_a_metric() {
    let mut rng = Prng::seed_from_u64(0xA11CE);
    for _ in 0..64 {
        let n = 1 + rng.below(48);
        let a: Vec<bool> = (0..n).map(|_| rng.flip()).collect();
        let flips1: Vec<bool> = (0..n).map(|_| rng.flip()).collect();
        let flips2: Vec<bool> = (0..n).map(|_| rng.flip()).collect();
        let ka = Key::from_bits(a);
        let kb = Key::from_bits(
            ka.bits()
                .iter()
                .zip(&flips1)
                .map(|(&x, &f)| x ^ f)
                .collect(),
        );
        let kc = Key::from_bits(
            kb.bits()
                .iter()
                .zip(&flips2)
                .map(|(&x, &f)| x ^ f)
                .collect(),
        );
        assert_eq!(ka.hamming(&kb), kb.hamming(&ka));
        assert_eq!(ka.hamming(&ka), 0);
        assert!(ka.hamming(&kc) <= ka.hamming(&kb) + kb.hamming(&kc));
    }
}

/// Water-filling allocates exactly the requested bits, never exceeding
/// any layer's capacity, and every slot index is used exactly once.
#[test]
fn water_filling_is_exact_and_capacity_safe() {
    let mut rng = Prng::seed_from_u64(0xB0B);
    for case in 0..64u64 {
        let n_layers = 1 + rng.below(7);
        let caps: Vec<usize> = (0..n_layers).map(|_| 1 + rng.below(19)).collect();
        let total: usize = caps.iter().sum();
        let bits = total / 2;
        let mut alloc = LockAllocator::with_capacities(
            LockSpec::evenly(bits),
            &caps,
            Prng::seed_from_u64(case),
        )
        .expect("fits");
        let mut seen = std::collections::HashSet::new();
        for &c in &caps {
            let op = alloc.lock_layer(UnitLayout::scalar(c)).expect("layer fits");
            let slots = op.key_slots();
            assert!(slots.len() <= c);
            for s in slots {
                assert!(seen.insert(s), "slot reused");
            }
        }
        assert_eq!(alloc.finish().expect("all layers locked"), bits);
        assert_eq!(seen.len(), bits);
        // Slot indices are dense 0..bits.
        for i in 0..bits {
            assert!(seen.contains(&relock_graph::KeySlot(i)));
        }
    }
}

/// `random_within_hamming` composed with fidelity is consistent.
#[test]
fn fidelity_of_bounded_perturbations() {
    let mut rng = Prng::seed_from_u64(0xC0DE);
    for _ in 0..64 {
        let len = 1 + rng.below(63);
        let d_frac = rng.uniform();
        let k = Key::random(len, &mut rng);
        let d = ((len as f64) * d_frac) as usize;
        let k2 = k.random_within_hamming(d, &mut rng);
        assert!((k.fidelity(&k2) - (1.0 - d as f64 / len as f64)).abs() < 1e-12);
    }
}
