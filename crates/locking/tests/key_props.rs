//! Property tests of key metrics and the lock allocator.

use proptest::prelude::*;
use relock_graph::UnitLayout;
use relock_locking::{Key, LockAllocator, LockSpec};
use relock_tensor::rng::Prng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hamming distance is a metric: symmetric, zero iff equal, triangle.
    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 1..48),
        flips1 in proptest::collection::vec(any::<bool>(), 1..48),
        flips2 in proptest::collection::vec(any::<bool>(), 1..48),
    ) {
        let n = a.len().min(flips1.len()).min(flips2.len());
        let ka = Key::from_bits(a[..n].to_vec());
        let kb = Key::from_bits(
            ka.bits().iter().zip(&flips1[..n]).map(|(&x, &f)| x ^ f).collect());
        let kc = Key::from_bits(
            kb.bits().iter().zip(&flips2[..n]).map(|(&x, &f)| x ^ f).collect());
        prop_assert_eq!(ka.hamming(&kb), kb.hamming(&ka));
        prop_assert_eq!(ka.hamming(&ka), 0);
        prop_assert!(ka.hamming(&kc) <= ka.hamming(&kb) + kb.hamming(&kc));
    }

    /// Water-filling allocates exactly the requested bits, never exceeding
    /// any layer's capacity, and every slot index is used exactly once.
    #[test]
    fn water_filling_is_exact_and_capacity_safe(
        caps in proptest::collection::vec(1usize..20, 1..8),
        seed in 0u64..1000,
    ) {
        let total: usize = caps.iter().sum();
        let bits = total / 2;
        let mut alloc = LockAllocator::with_capacities(
            LockSpec::evenly(bits),
            &caps,
            Prng::seed_from_u64(seed),
        ).expect("fits");
        let mut seen = std::collections::HashSet::new();
        for &c in &caps {
            let op = alloc.lock_layer(UnitLayout::scalar(c)).expect("layer fits");
            let slots = op.key_slots();
            prop_assert!(slots.len() <= c);
            for s in slots {
                prop_assert!(seen.insert(s), "slot reused");
            }
        }
        prop_assert_eq!(alloc.finish().expect("all layers locked"), bits);
        prop_assert_eq!(seen.len(), bits);
        // Slot indices are dense 0..bits.
        for i in 0..bits {
            prop_assert!(seen.contains(&relock_graph::KeySlot(i)));
        }
    }

    /// `random_within_hamming` composed with fidelity is consistent.
    #[test]
    fn fidelity_of_bounded_perturbations(len in 1usize..64, d_frac in 0.0f64..1.0, seed in 0u64..1000) {
        let mut rng = Prng::seed_from_u64(seed);
        let k = Key::random(len, &mut rng);
        let d = ((len as f64) * d_frac) as usize;
        let k2 = k.random_within_hamming(d, &mut rng);
        prop_assert!((k.fidelity(&k2) - (1.0 - d as f64 / len as f64)).abs() < 1e-12);
    }
}
