//! The unified bench report: one schema-versioned `BENCH.json` covering
//! the engine, parallel, soak, smoke, and campaign measurements, plus
//! the `benchdiff` comparison that CI gates on.
//!
//! Document shape (schema version [`BENCH_SCHEMA_VERSION`]):
//!
//! * machine info — `os`, `threads`, `git_rev`;
//! * one entry per benchmark — median and spread (max − min) over N
//!   repeats, and, where the workload queries an oracle, the exact
//!   underlying query count and cache-hit rate.
//!
//! Query counts are deterministic (fixed seeds, bit-identical engine at
//! any thread count), so [`diff`] compares them *exactly* and any change
//! is a failure. Wall-clock medians are noisy on shared runners, so time
//! regressions beyond a tolerance either fail or warn depending on the
//! caller (`--time-warn-only` in CI).
//!
//! The JSON is built on `relock_trace::json::Value`, whose emitters are
//! byte-stable under parse → re-emit — the schema round-trip tests below
//! pin that down.

use crate::{attack_config, bench_threads, prepare, Arch, Scale};
use relock_attack::{AttackState, CheckpointPolicy, DecryptionReport, Decryptor};
use relock_dist::{DistCoordinator, DistOptions};
use relock_locking::CountingOracle;
use relock_serve::{Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle};
use relock_tensor::rng::Prng;
use relock_tensor::{backend, BackendKind};
use relock_trace::json::Value;
use std::hint::black_box;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Version of the `BENCH.json` document shape. Bump on any field rename,
/// removal, or semantic change; `diff` refuses to compare across
/// versions. (Policy: additions of new *benchmarks* are not schema
/// changes; additions of new *fields* bump the version.)
///
/// v2: added the optional `evictions` field (campaign-soak LRU counter).
/// v3: added the optional `workers` field (worker-process count of the
/// distributed-attack section, e.g. `dist_mlp32_workers4`).
/// v4: added the optional `backend` field (resolved gemm-backend name of
/// kernel-pinned benchmarks, e.g. `scalar` / `simd-avx`), the
/// `forward_batch32_simd` comparison point, and the `monolithic_f32`
/// fast-path measurement.
/// v5: added the optional `lock_variant` field and the
/// `matrix_<variant>_<attack>` entries of the lock-variant × attack
/// matrix (unit `key_acc`, higher is better). `key_acc` medians are
/// deterministic fidelities, so `diff` compares them exactly like query
/// counts.
/// v6: added the optional `adaptive` boolean field (entries measured with
/// the online `AdaptiveController` enabled, DESIGN.md §3i) and the
/// `attack_mlp32_adaptive_*` entries; adaptive query counts are gated
/// exactly like static ones.
pub const BENCH_SCHEMA_VERSION: u64 = 6;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    /// `"ms"` (lower is better) or `"rows_per_sec"` (higher is better).
    pub unit: String,
    /// Median over the repeats.
    pub median: f64,
    /// Max − min over the repeats (0 for a single repeat).
    pub spread: f64,
    pub repeats: u64,
    /// Exact underlying oracle query count — deterministic, diffed
    /// bit-for-bit.
    pub queries: Option<u64>,
    /// Broker cache-hit rate of the measured run.
    pub cache_hit_rate: Option<f64>,
    /// Rows evicted by the shared LRU cache during the run. Depends on
    /// concurrent interleaving, so `diff` reports changes as notes, never
    /// failures.
    pub evictions: Option<u64>,
    /// Worker *processes* used by a distributed-attack measurement
    /// (absent for in-process benchmarks).
    pub workers: Option<u64>,
    /// Resolved gemm-backend name a kernel-pinned benchmark ran on
    /// (`scalar`, `simd-avx`, `simd-portable`); absent for benchmarks
    /// that don't pin one. Machine-dependent, so `diff` reports changes
    /// as notes, never failures.
    pub backend: Option<String>,
    /// Full lock-variant spelling of a matrix entry (`sign`,
    /// `scale:0.25`, `sar`, `antisat`); absent for non-matrix
    /// benchmarks.
    pub lock_variant: Option<String>,
    /// Whether the measured run had the online [`AdaptiveController`]
    /// enabled (DESIGN.md §3i); absent for benchmarks where the knob
    /// doesn't apply. Adaptive decisions are count-driven and
    /// deterministic, so these entries' query counts are diffed exactly
    /// like static ones.
    ///
    /// [`AdaptiveController`]: relock_attack::AdaptiveController
    pub adaptive: Option<bool>,
}

/// The whole report document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    pub schema_version: u64,
    pub git_rev: String,
    pub os: String,
    pub threads: u64,
    pub entries: Vec<BenchEntry>,
}

impl BenchDoc {
    /// Serializes the document (pretty, two-space indent, trailing
    /// newline) — the exact bytes of `BENCH.json`.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_string(), Value::str(&e.name)),
                    ("unit".to_string(), Value::str(&e.unit)),
                    ("median".to_string(), Value::num_f64(e.median, 3)),
                    ("spread".to_string(), Value::num_f64(e.spread, 3)),
                    ("repeats".to_string(), Value::num_u64(e.repeats)),
                ];
                if let Some(q) = e.queries {
                    fields.push(("queries".to_string(), Value::num_u64(q)));
                }
                if let Some(r) = e.cache_hit_rate {
                    fields.push(("cache_hit_rate".to_string(), Value::num_f64(r, 4)));
                }
                if let Some(ev) = e.evictions {
                    fields.push(("evictions".to_string(), Value::num_u64(ev)));
                }
                if let Some(w) = e.workers {
                    fields.push(("workers".to_string(), Value::num_u64(w)));
                }
                if let Some(b) = &e.backend {
                    fields.push(("backend".to_string(), Value::str(b)));
                }
                if let Some(v) = &e.lock_variant {
                    fields.push(("lock_variant".to_string(), Value::str(v)));
                }
                if let Some(a) = e.adaptive {
                    fields.push(("adaptive".to_string(), Value::Bool(a)));
                }
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            (
                "schema_version".to_string(),
                Value::num_u64(self.schema_version),
            ),
            ("git_rev".to_string(), Value::str(&self.git_rev)),
            ("os".to_string(), Value::str(&self.os)),
            ("threads".to_string(), Value::num_u64(self.threads)),
            ("benchmarks".to_string(), Value::Arr(entries)),
        ])
        .to_pretty()
    }

    /// Parses a document produced by [`BenchDoc::to_json`].
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let doc = Value::parse(text).map_err(|e| e.to_string())?;
        let field_u64 = |v: &Value, key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let field_f64 = |v: &Value, key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-number field '{key}'"))
        };
        let field_str = |v: &Value, key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field '{key}'"))
        };
        let mut entries = Vec::new();
        for entry in doc
            .get("benchmarks")
            .and_then(Value::as_arr)
            .ok_or("missing 'benchmarks' array")?
        {
            entries.push(BenchEntry {
                name: field_str(entry, "name")?,
                unit: field_str(entry, "unit")?,
                median: field_f64(entry, "median")?,
                spread: field_f64(entry, "spread")?,
                repeats: field_u64(entry, "repeats")?,
                queries: match entry.get("queries") {
                    Some(v) => Some(v.as_u64().ok_or("non-integer 'queries'")?),
                    None => None,
                },
                cache_hit_rate: match entry.get("cache_hit_rate") {
                    Some(v) => Some(v.as_f64().ok_or("non-number 'cache_hit_rate'")?),
                    None => None,
                },
                evictions: match entry.get("evictions") {
                    Some(v) => Some(v.as_u64().ok_or("non-integer 'evictions'")?),
                    None => None,
                },
                workers: match entry.get("workers") {
                    Some(v) => Some(v.as_u64().ok_or("non-integer 'workers'")?),
                    None => None,
                },
                backend: match entry.get("backend") {
                    Some(v) => Some(v.as_str().ok_or("non-string 'backend'")?.to_string()),
                    None => None,
                },
                lock_variant: match entry.get("lock_variant") {
                    Some(v) => Some(v.as_str().ok_or("non-string 'lock_variant'")?.to_string()),
                    None => None,
                },
                adaptive: match entry.get("adaptive") {
                    Some(v) => Some(v.as_bool().ok_or("non-boolean 'adaptive'")?),
                    None => None,
                },
            });
        }
        Ok(BenchDoc {
            schema_version: field_u64(&doc, "schema_version")?,
            git_rev: field_str(&doc, "git_rev")?,
            os: field_str(&doc, "os")?,
            threads: field_u64(&doc, "threads")?,
            entries,
        })
    }
}

/// The outcome of a benchdiff: hard failures (exit non-zero), warnings
/// (reported but tolerated), and informational notes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DiffOutcome {
    pub failures: Vec<String>,
    pub warnings: Vec<String>,
    pub notes: Vec<String>,
}

impl DiffOutcome {
    /// Whether the comparison passed (warnings allowed).
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares a fresh run against a committed baseline.
///
/// * Query counts are deterministic: **any** difference (changed value,
///   appeared, disappeared) is a failure.
/// * A benchmark present in the baseline but missing from the current run
///   is a failure (coverage loss); new benchmarks are notes.
/// * A median worse than the baseline by more than `time_tolerance`
///   (fractional, e.g. `0.5` = 50%) fails — or warns when
///   `time_warn_only` is set, the CI mode for noisy shared runners.
pub fn diff(
    current: &BenchDoc,
    baseline: &BenchDoc,
    time_tolerance: f64,
    time_warn_only: bool,
) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if current.schema_version != baseline.schema_version {
        out.failures.push(format!(
            "schema version mismatch: current {} vs baseline {} — regenerate the baseline",
            current.schema_version, baseline.schema_version
        ));
        return out;
    }
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| e.name == base.name) else {
            out.failures
                .push(format!("{}: benchmark missing from current run", base.name));
            continue;
        };
        if cur.unit != base.unit {
            out.failures.push(format!(
                "{}: unit changed ({} -> {}) — regenerate the baseline",
                base.name, base.unit, cur.unit
            ));
            continue;
        }
        match (cur.queries, base.queries) {
            (Some(c), Some(b)) if c != b => out.failures.push(format!(
                "{}: query count changed {b} -> {c} (exact, deterministic — any drift is a regression or an intentional change that must update the baseline)",
                base.name
            )),
            (None, Some(b)) => out.failures.push(format!(
                "{}: query count ({b}) disappeared from current run",
                base.name
            )),
            (Some(c), None) => out.notes.push(format!(
                "{}: query count appeared ({c}); baseline has none",
                base.name
            )),
            _ => {}
        }
        // `key_acc` medians are deterministic bit fidelities, not noisy
        // wall-clock: any drift means an attack's behaviour changed, so
        // compare exactly (like query counts), skipping the tolerance path.
        if cur.unit == "key_acc" {
            if (cur.median - base.median).abs() > 1e-9 {
                out.failures.push(format!(
                    "{}: key-recovery accuracy changed {:.4} -> {:.4} (deterministic — any drift is a regression or an intentional change that must update the baseline)",
                    base.name, base.median, cur.median
                ));
            }
            continue;
        }
        if base.median > 0.0 {
            let lower_is_better = base.unit == "ms";
            let ratio = cur.median / base.median;
            let regressed = if lower_is_better {
                ratio > 1.0 + time_tolerance
            } else {
                ratio < 1.0 / (1.0 + time_tolerance)
            };
            let improved = if lower_is_better {
                ratio < 1.0 / (1.0 + time_tolerance)
            } else {
                ratio > 1.0 + time_tolerance
            };
            if regressed {
                let msg = format!(
                    "{}: {} {:.3} vs baseline {:.3} ({:+.1}%) beyond ±{:.0}% tolerance",
                    base.name,
                    base.unit,
                    cur.median,
                    base.median,
                    (ratio - 1.0) * 100.0,
                    time_tolerance * 100.0
                );
                if time_warn_only {
                    out.warnings.push(msg);
                } else {
                    out.failures.push(msg);
                }
            } else if improved {
                out.notes.push(format!(
                    "{}: improved to {:.3} {} from {:.3} ({:+.1}%)",
                    base.name,
                    cur.median,
                    base.unit,
                    base.median,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        if let (Some(c), Some(b)) = (cur.cache_hit_rate, base.cache_hit_rate) {
            if (c - b).abs() > 1e-9 {
                out.notes.push(format!(
                    "{}: cache-hit rate {:.4} vs baseline {:.4}",
                    base.name, c, b
                ));
            }
        }
        if let (Some(c), Some(b)) = (cur.evictions, base.evictions) {
            if c != b {
                out.notes.push(format!(
                    "{}: LRU evictions {c} vs baseline {b} (interleaving-dependent, informational)",
                    base.name
                ));
            }
        }
        if cur.backend != base.backend {
            out.notes.push(format!(
                "{}: gemm backend {:?} vs baseline {:?} (machine-dependent, informational)",
                base.name, cur.backend, base.backend
            ));
        }
    }
    for cur in &current.entries {
        if !baseline.entries.iter().any(|e| e.name == cur.name) {
            out.notes.push(format!(
                "{}: new benchmark (not in baseline); refresh the baseline to gate it",
                cur.name
            ));
        }
    }
    out
}

/// `git rev-parse --short=12 HEAD`, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn median_and_spread(samples: &mut [f64]) -> (f64, f64) {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = samples.len();
    let median = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    };
    (median, samples[n - 1] - samples[0])
}

fn entry(
    name: &str,
    unit: &str,
    mut samples: Vec<f64>,
    queries: Option<u64>,
    cache_hit_rate: Option<f64>,
) -> BenchEntry {
    let repeats = samples.len() as u64;
    let (median, spread) = median_and_spread(&mut samples);
    BenchEntry {
        name: name.to_string(),
        unit: unit.to_string(),
        median,
        spread,
        repeats,
        queries,
        cache_hit_rate,
        evictions: None,
        workers: None,
        backend: None,
        lock_variant: None,
        adaptive: None,
    }
}

/// Planned-path forward throughput (rows/sec) of the white-box MLP
/// through one reused workspace — the engine bin's measurement, repeated.
///
/// The gemm backend is pinned for the duration: the legacy
/// `forward_batch*_planned` entries run on `scalar` (so their baselines
/// keep their historical meaning on any machine), and
/// `forward_batch32_simd` runs the same workload on the auto-detected
/// SIMD backend — the pair is the report's headline speedup.
fn forward_entry(name: &str, batch: usize, repeats: usize, kind: BackendKind) -> BenchEntry {
    backend::set_backend_override(Some(kind));
    let p = prepare(Arch::Mlp, 16, Scale::Fast, 42);
    let g = p.model.white_box();
    let keys = p.model.true_key().to_assignment();
    let mut rng = Prng::seed_from_u64(7);
    let x = rng.normal_tensor([batch, g.input_size()]);
    let mut ws = relock_graph::Workspace::new();
    for _ in 0..50 {
        black_box(g.logits_batch_into(&mut ws, &x, &keys));
    }
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        let mut iters = 0u64;
        while t.elapsed().as_secs_f64() < 0.15 {
            for _ in 0..20 {
                black_box(g.logits_batch_into(&mut ws, &x, &keys));
            }
            iters += 20;
        }
        samples.push(iters as f64 * batch as f64 / t.elapsed().as_secs_f64());
    }
    backend::set_backend_override(None);
    BenchEntry {
        backend: Some(backend::backend_for(kind).name().to_string()),
        ..entry(name, "rows_per_sec", samples, None, None)
    }
}

/// The §4.3 monolithic learning attack on the MLP-16 victim with its
/// `Linear` products in single precision, on the SIMD backend — the
/// end-to-end payoff of the f32 fast path. The query count stays exact
/// and deterministic (one labelled training set up front), so `diff`
/// gates on it like any other attack entry.
fn monolithic_f32_entry(repeats: usize) -> BenchEntry {
    backend::set_backend_override(Some(BackendKind::Simd));
    let p = prepare(Arch::Mlp, 16, Scale::Fast, 42);
    let mut cfg = crate::monolithic_config(Scale::Fast);
    cfg.learning.precision = relock_graph::Precision::F32;
    let attack = relock_attack::MonolithicAttack::new(cfg);
    let oracle = CountingOracle::new(&p.model);
    let mut samples = Vec::with_capacity(repeats);
    let mut queries: Option<u64> = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let report = attack.run(p.model.white_box(), &oracle, &mut Prng::seed_from_u64(43));
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        if let Some(q) = queries {
            assert_eq!(q, report.queries, "repeats must replay identical traffic");
        }
        queries = Some(report.queries);
    }
    backend::set_backend_override(None);
    BenchEntry {
        backend: Some(backend::backend_for(BackendKind::Simd).name().to_string()),
        ..entry("monolithic_f32", "ms", samples, queries, None)
    }
}

/// End-to-end MLP-16 Fast attack (the smoke workload: prep seed 42,
/// attack seed 43), fresh broker per repeat so the memo cache never
/// carries over. Asserts exactness, balanced broker books, and identical
/// query counts across repeats — the determinism the diff gate relies on.
fn attack_mlp16_entry(repeats: usize) -> BenchEntry {
    let p = prepare(Arch::Mlp, 16, Scale::Fast, 42);
    let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
    cfg.threads = 1;
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();
    let oracle = CountingOracle::new(&p.model);
    let mut samples = Vec::with_capacity(repeats);
    let mut queries: Option<u64> = None;
    let mut hit_rate = None;
    for _ in 0..repeats {
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let t = Instant::now();
        let report = decryptor
            .run_brokered(g, &broker, &mut Prng::seed_from_u64(43))
            .expect("attack run");
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            report.fidelity(p.model.true_key()),
            1.0,
            "MLP-16 attack must stay exact while being timed"
        );
        let snap = broker.snapshot();
        assert!(snap.is_balanced(), "broker books must balance: {snap:?}");
        assert_eq!(report.queries, snap.underlying);
        if let Some(q) = queries {
            assert_eq!(q, report.queries, "repeats must replay identical traffic");
        }
        queries = Some(report.queries);
        hit_rate = Some(snap.cache_hit_rate());
    }
    entry("attack_mlp16", "ms", samples, queries, hit_rate)
}

/// Per-call latency of the simulated hardware oracle in the parallel
/// measurement — the regime where the sharded engine's pipelining wins
/// (see the engine bin's rationale).
const ORACLE_LATENCY: Duration = Duration::from_millis(3);

fn time_sharded(
    p: &crate::Prepared,
    threads: usize,
    reps: usize,
    adaptive: bool,
) -> (Vec<f64>, DecryptionReport) {
    let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
    cfg.threads = threads;
    cfg.adaptive = adaptive;
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();
    // `latency_spike_rate: 1.0` = a constant per-call delay, no faults.
    let oracle = ChaosOracle::new(
        CountingOracle::new(&p.model),
        ChaosConfig {
            seed: 1,
            latency_spike_rate: 1.0,
            latency_spike: ORACLE_LATENCY,
            ..ChaosConfig::default()
        },
    );
    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let t = Instant::now();
        let report = decryptor
            .run_brokered(g, &broker, &mut Prng::seed_from_u64(43))
            .expect("attack run");
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    (samples, last.expect("reps >= 1"))
}

/// Sequential vs 4-thread vs 4-process MLP-32 attack against the
/// fixed-latency oracle — the parallel and distributed sections. The
/// sharded engine and the dist coordinator are bit-identical by
/// contract, so keys and query counts are asserted equal before the
/// timings are reported. The adaptive pair runs the same workload with
/// the online controller on (DESIGN.md §3i): still bit-identical across
/// thread counts, still exact, and never more queries than the static
/// path (the ramped wave schedule validates a prefix of the static
/// wave's candidates).
fn mlp32_entries(reps: usize) -> Vec<BenchEntry> {
    let p = prepare(Arch::Mlp, 32, Scale::Fast, 42);
    let (seq_samples, seq) = time_sharded(&p, 1, reps, false);
    let (par_samples, par) = time_sharded(&p, 4, reps, false);
    assert_eq!(
        seq.fidelity(p.model.true_key()),
        1.0,
        "MLP-32 attack must stay exact while being timed"
    );
    assert_eq!(par.key, seq.key, "parallel run must stay bit-identical");
    assert_eq!(par.queries, seq.queries);
    let (adapt_seq_samples, adapt_seq) = time_sharded(&p, 1, reps, true);
    let (adapt_par_samples, adapt_par) = time_sharded(&p, 4, reps, true);
    assert_eq!(
        adapt_seq.key, seq.key,
        "adaptive run must recover the same key"
    );
    assert_eq!(
        adapt_par.key, adapt_seq.key,
        "adaptive parallel run must stay bit-identical"
    );
    assert_eq!(adapt_par.queries, adapt_seq.queries);
    assert!(
        adapt_seq.queries <= seq.queries,
        "adaptive path must not query more than static ({} > {})",
        adapt_seq.queries,
        seq.queries
    );
    let adaptive_entry = |name: &str, samples: Vec<f64>, queries: u64| BenchEntry {
        adaptive: Some(true),
        ..entry(name, "ms", samples, Some(queries), None)
    };
    vec![
        entry(
            "attack_mlp32_seq_latency3ms",
            "ms",
            seq_samples,
            Some(seq.queries),
            None,
        ),
        entry(
            "attack_mlp32_par4_latency3ms",
            "ms",
            par_samples,
            Some(par.queries),
            None,
        ),
        adaptive_entry(
            "attack_mlp32_adaptive_seq_latency3ms",
            adapt_seq_samples,
            adapt_seq.queries,
        ),
        adaptive_entry(
            "attack_mlp32_adaptive_par4_latency3ms",
            adapt_par_samples,
            adapt_par.queries,
        ),
        dist_mlp32_entry(&p, &seq, reps),
    ]
}

/// 4-worker-*process* MLP-32 attack against the same fixed-latency
/// oracle, through the `relock-dist` supervised coordinator (DESIGN.md
/// §4b). Worker processes are this bench binary re-invoked in its hidden
/// `dist-worker` mode (see [`crate::dist_worker_command`]); all oracle
/// traffic is proxied back to this process's broker, so the result must
/// be bit-identical to the sequential reference.
fn dist_mlp32_entry(p: &crate::Prepared, seq: &DecryptionReport, reps: usize) -> BenchEntry {
    const WORKERS: usize = 4;
    let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
    cfg.threads = 1;
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();
    let oracle = ChaosOracle::new(
        CountingOracle::new(&p.model),
        ChaosConfig {
            seed: 1,
            latency_spike_rate: 1.0,
            latency_spike: ORACLE_LATENCY,
            ..ChaosConfig::default()
        },
    );
    let model_path =
        std::env::temp_dir().join(format!("relock-dist-bench-{}.rlk", std::process::id()));
    let mut w = std::io::BufWriter::new(
        std::fs::File::create(&model_path).expect("create bench model file"),
    );
    p.model.save(&mut w).expect("save bench model");
    drop(w);
    let (program, worker_args) = crate::dist_worker_command();
    let mut samples = Vec::with_capacity(reps);
    let mut last: Option<DecryptionReport> = None;
    for _ in 0..reps {
        let mut opts = DistOptions::new(&program);
        opts.workers = WORKERS;
        opts.worker_args = worker_args.clone();
        let coord = DistCoordinator::new(&model_path, opts).expect("bind coordinator socket");
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let t = Instant::now();
        let report = decryptor
            .run_brokered_with(g, &broker, &mut Prng::seed_from_u64(43), &coord)
            .expect("attack run");
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        let d = coord.report();
        assert_eq!(
            d.fell_back, None,
            "clean bench run must not fall back: {d:?}"
        );
        last = Some(report);
    }
    let _ = std::fs::remove_file(&model_path);
    let dist = last.expect("reps >= 1");
    assert_eq!(dist.key, seq.key, "distributed run must stay bit-identical");
    assert_eq!(dist.queries, seq.queries);
    BenchEntry {
        workers: Some(WORKERS as u64),
        ..entry(
            "dist_mlp32_workers4",
            "ms",
            samples,
            Some(dist.queries),
            None,
        )
    }
}

/// Kill-and-resume soak (the soak bin's workload, MLP-12, 3 scheduled
/// kills): total wall clock across all segments, and the soaked session's
/// cumulative query count. Asserts the resumed key is bit-identical to
/// the uninterrupted reference.
fn soak_entry() -> BenchEntry {
    let kills = 3u64;
    let p = prepare(Arch::Mlp, 12, Scale::Fast, 42);
    let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
    cfg.threads = 1;
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();

    let clean_oracle = CountingOracle::new(&p.model);
    let broker = Broker::with_config(&clean_oracle, BrokerConfig::default());
    let reference = decryptor
        .run_brokered(g, &broker, &mut Prng::seed_from_u64(43))
        .expect("reference run");
    assert_eq!(reference.fidelity(p.model.true_key()), 1.0);

    let crash_at: Vec<u64> = (1..=kills)
        .map(|k| reference.queries * k / (kills + 1))
        .collect();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&p.model),
        ChaosConfig::crash_only(42, crash_at),
    );
    let sink = relock_attack::MemoryCheckpointSink::new();
    // The scheduled panics are the point of the exercise — keep them quiet.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let t = Instant::now();
    let soaked: DecryptionReport = loop {
        let broker = Broker::with_config(&chaos, BrokerConfig::default());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(43);
            decryptor.resume(g, &broker, &mut rng, &sink, CheckpointPolicy::EVERY_CUT)
        }));
        match attempt {
            Ok(Ok((report, _status))) => break report,
            Ok(Err(e)) => panic!("attack error during soak: {e}"),
            Err(payload) => {
                payload
                    .downcast::<ChaosCrash>()
                    .expect("only scheduled chaos crashes should unwind");
                // The checkpoint a resume will load must stay decodable.
                if let Some(bytes) = sink.contents() {
                    AttackState::decode(&bytes).expect("crash must leave a valid checkpoint");
                }
            }
        }
    };
    let ms = t.elapsed().as_secs_f64() * 1e3;
    std::panic::set_hook(prev_hook);
    assert_eq!(
        soaked.key, reference.key,
        "resumed key must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        chaos.counters().crashes,
        kills,
        "every scheduled kill must fire"
    );
    entry(
        "soak_mlp12_resume",
        "ms",
        vec![ms],
        Some(soaked.queries),
        None,
    )
}

/// Multi-tenant campaign soak (the campaign_soak bin's workload: 8
/// concurrent campaigns, 4 scheduler slots, a 256 KiB shared LRU cache,
/// one mid-flight pause → daemon-restart → resume migration). Key
/// identity vs the sequential references is asserted inside the soak;
/// the entry reports wall clock plus the cross-campaign cache-hit rate
/// and LRU eviction count. No query count: concurrent interleaving makes
/// the traffic nondeterministic by design, so there is nothing exact to
/// gate on.
fn campaign_entry() -> BenchEntry {
    let soak = crate::campaign::run_campaign_soak(8, 4, Some(256 * 1024))
        .expect("campaign soak must recover every reference key");
    BenchEntry {
        evictions: Some(soak.evicted),
        ..entry(
            "campaign_soak8_resume",
            "ms",
            vec![soak.elapsed_ms],
            None,
            Some(soak.hit_rate),
        )
    }
}

/// Runs every measurement and assembles the document. `repeats` drives
/// the cheap measurements; the latency-bound parallel section uses
/// `min(repeats, 2)` and the soaks run once (their determinism is
/// asserted, not sampled).
pub fn run_report(repeats: usize) -> BenchDoc {
    let repeats = repeats.max(1);
    let mut entries = vec![
        forward_entry("forward_batch1_planned", 1, repeats, BackendKind::Scalar),
        forward_entry("forward_batch32_planned", 32, repeats, BackendKind::Scalar),
        forward_entry("forward_batch32_simd", 32, repeats, BackendKind::Simd),
        attack_mlp16_entry(repeats),
        monolithic_f32_entry(repeats),
    ];
    entries.extend(mlp32_entries(repeats.min(2)));
    entries.push(soak_entry());
    entries.push(campaign_entry());
    entries.extend(crate::matrix::matrix_entries());
    BenchDoc {
        schema_version: BENCH_SCHEMA_VERSION,
        git_rev: git_rev(),
        os: format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH),
        threads: bench_threads() as u64,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> BenchDoc {
        BenchDoc {
            schema_version: BENCH_SCHEMA_VERSION,
            git_rev: "abc123def456".to_string(),
            os: "linux-x86_64".to_string(),
            threads: 4,
            entries: vec![
                BenchEntry {
                    name: "attack_mlp16".to_string(),
                    unit: "ms".to_string(),
                    median: 20.733,
                    spread: 1.25,
                    repeats: 5,
                    queries: Some(4242),
                    cache_hit_rate: Some(0.3125),
                    evictions: Some(17),
                    workers: Some(4),
                    backend: None,
                    lock_variant: None,
                    adaptive: Some(true),
                },
                BenchEntry {
                    name: "forward_batch1_planned".to_string(),
                    unit: "rows_per_sec".to_string(),
                    median: 125000.5,
                    spread: 300.0,
                    repeats: 3,
                    queries: None,
                    cache_hit_rate: None,
                    evictions: None,
                    workers: None,
                    backend: Some("scalar".to_string()),
                    lock_variant: None,
                    adaptive: None,
                },
            ],
        }
    }

    #[test]
    fn schema_round_trip_is_byte_identical() {
        let doc = sample_doc();
        let text = doc.to_json();
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), text, "re-emit must be byte-equal");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BenchDoc::parse("").is_err());
        assert!(BenchDoc::parse("{}").is_err());
        let mut doc = sample_doc();
        doc.entries.clear();
        // Valid JSON with a missing required field.
        let butchered = doc.to_json().replace("\"schema_version\"", "\"schema\"");
        assert!(BenchDoc::parse(&butchered).is_err());
    }

    #[test]
    fn query_count_drift_fails_exactly() {
        let base = sample_doc();
        let mut cur = base.clone();
        cur.entries[0].queries = Some(4243);
        let out = diff(&cur, &base, 0.5, true);
        assert_eq!(out.failures.len(), 1, "{out:?}");
        assert!(out.failures[0].contains("query count changed 4242 -> 4243"));
        // Same counts → clean.
        assert!(diff(&base, &base, 0.5, true).is_ok());
        // A disappeared count is a failure too.
        let mut gone = base.clone();
        gone.entries[0].queries = None;
        assert!(!diff(&gone, &base, 0.5, true).is_ok());
    }

    #[test]
    fn backend_drift_is_a_note_not_a_failure() {
        let base = sample_doc();
        let mut cur = base.clone();
        cur.entries[1].backend = Some("simd-avx".to_string());
        let out = diff(&cur, &base, 0.5, false);
        assert!(out.is_ok(), "{out:?}");
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("gemm backend") && n.contains("simd-avx")));
    }

    #[test]
    fn eviction_drift_is_a_note_not_a_failure() {
        let base = sample_doc();
        let mut cur = base.clone();
        cur.entries[0].evictions = Some(23);
        let out = diff(&cur, &base, 0.5, false);
        assert!(out.is_ok(), "{out:?}");
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("LRU evictions 23 vs baseline 17")));
    }

    #[test]
    fn missing_benchmark_is_a_failure_and_new_one_a_note() {
        let base = sample_doc();
        let mut cur = base.clone();
        cur.entries.remove(1);
        cur.entries.push(BenchEntry {
            name: "brand_new".to_string(),
            unit: "ms".to_string(),
            median: 1.0,
            spread: 0.0,
            repeats: 1,
            queries: None,
            cache_hit_rate: None,
            evictions: None,
            workers: None,
            backend: None,
            lock_variant: None,
            adaptive: None,
        });
        let out = diff(&cur, &base, 0.5, true);
        assert!(out.failures.iter().any(|f| f.contains("missing")));
        assert!(out.notes.iter().any(|n| n.contains("new benchmark")));
    }

    #[test]
    fn time_regressions_respect_direction_and_mode() {
        let base = sample_doc();
        // 2x slower attack (ms, lower is better) and 2x slower forward
        // (rows/sec, higher is better) both regress.
        let mut cur = base.clone();
        cur.entries[0].median *= 2.0;
        cur.entries[1].median /= 2.0;
        let warn = diff(&cur, &base, 0.5, true);
        assert!(warn.is_ok(), "warn-only mode must not fail: {warn:?}");
        assert_eq!(warn.warnings.len(), 2);
        let hard = diff(&cur, &base, 0.5, false);
        assert_eq!(hard.failures.len(), 2);
        // Within tolerance: clean both ways.
        let mut close = base.clone();
        close.entries[0].median *= 1.2;
        assert!(diff(&close, &base, 0.5, false).is_ok());
        // Improvements are notes, never failures.
        let mut faster = base.clone();
        faster.entries[0].median /= 4.0;
        let out = diff(&faster, &base, 0.5, false);
        assert!(out.is_ok());
        assert!(out.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn key_acc_drift_fails_exactly() {
        let mut base = sample_doc();
        base.entries.push(BenchEntry {
            name: "matrix_sar_decrypt".to_string(),
            unit: "key_acc".to_string(),
            median: 0.5,
            spread: 0.0,
            repeats: 1,
            queries: Some(64),
            cache_hit_rate: None,
            evictions: None,
            workers: None,
            backend: None,
            lock_variant: Some("sar".to_string()),
            adaptive: None,
        });
        // Identical → clean.
        assert!(diff(&base, &base, 0.5, true).is_ok());
        // A fidelity change fails even inside the time tolerance, and
        // even in warn-only mode — key_acc is deterministic.
        let mut cur = base.clone();
        cur.entries.last_mut().unwrap().median = 0.625;
        let out = diff(&cur, &base, 0.5, true);
        assert_eq!(out.failures.len(), 1, "{out:?}");
        assert!(out.failures[0].contains("key-recovery accuracy changed"));
    }

    #[test]
    fn schema_version_mismatch_refuses_comparison() {
        let base = sample_doc();
        let mut cur = base.clone();
        cur.schema_version += 1;
        let out = diff(&cur, &base, 0.5, true);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("schema version mismatch"));
    }
}
