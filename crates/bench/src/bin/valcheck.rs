//! Sanity: per-layer validation under the fully-true key, and single-flip detection.
use relock_attack::{key_vector_validation, AttackConfig, ValidationTarget};
use relock_bench::{attack_config, prepare, Arch, Scale};
use relock_locking::CountingOracle;
use relock_tensor::rng::Prng;

fn main() {
    let arch = match std::env::args().nth(1).as_deref() {
        Some("lenet") => Arch::Lenet,
        Some("resnet") => Arch::Resnet,
        Some("vit") => Arch::Vit,
        _ => Arch::Mlp,
    };
    let bits: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let seed: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let p = prepare(arch, bits, Scale::Fast, seed);
    let g = p.model.white_box();
    let oracle = CountingOracle::new(&p.model);
    let cfg: AttackConfig = attack_config(arch, Scale::Fast);
    let sites = g.lock_sites();
    let mut layers: Vec<(relock_graph::NodeId, Vec<relock_graph::LockSite>)> = Vec::new();
    for s in sites.clone() {
        match layers.last_mut() {
            Some((n, v)) if *n == s.keyed_node => v.push(s),
            _ => layers.push((s.keyed_node, vec![s])),
        }
    }
    for li in 0..layers.len().saturating_sub(1) {
        let next = &layers[li + 1].1;
        let layout = next[0].layout;
        // surface: follow keyed through Add
        let consumers = g.consumers();
        let mut surface = next[0].keyed_node;
        for _ in 0..3 {
            match consumers[surface.index()].iter().copied().find(|c| {
                matches!(
                    g.node(*c).op,
                    relock_graph::Op::Add | relock_graph::Op::Relu
                )
            }) {
                Some(c) if matches!(g.node(c).op, relock_graph::Op::Add) => surface = c,
                _ => break,
            }
        }
        let units: Vec<_> = (0..layout.n_units)
            .map(|u| (u, next.iter().find(|s| s.unit == u).map(|s| s.slot)))
            .collect();
        let t = ValidationTarget {
            surface_node: surface,
            layout,
            units,
        };
        let mut rng = Prng::seed_from_u64(5000 + li as u64);
        let ok_true = key_vector_validation(
            g,
            &p.model.true_key().to_assignment(),
            Some(&t),
            &oracle,
            &cfg,
            &mut rng,
        );
        let s0 = layers[li].1[0].slot;
        let mut wrong = p.model.true_key().clone();
        wrong.flip_bit(s0.index());
        let ok_flip =
            key_vector_validation(g, &wrong.to_assignment(), Some(&t), &oracle, &cfg, &mut rng);
        // Also a 3-flip candidate within this layer.
        let mut wrong3 = p.model.true_key().clone();
        for s in layers[li].1.iter().take(3) {
            wrong3.flip_bit(s.slot.index());
        }
        let ok_flip3 = key_vector_validation(
            g,
            &wrong3.to_assignment(),
            Some(&t),
            &oracle,
            &cfg,
            &mut rng,
        );
        println!(
            "layer {} (surface {}): val(true)={} val(flip {})={} val(3flip)={}",
            layers[li].0, surface, ok_true, s0, ok_flip, ok_flip3
        );
    }
}
