//! Distributed-attack soak bench: runs the multi-process attack under a
//! process-level chaos schedule — workers killed with SIGKILL mid-wave,
//! a stalled heartbeat, a truncated frame — and verifies the recovered
//! key and query count are bit-identical to an uninterrupted in-process
//! run. Exits non-zero on any divergence — CI runs this as the
//! `dist-soak` job with fixed seeds, fully offline.
//!
//! The binary doubles as its own worker: the coordinator respawns it
//! with the hidden `dist-worker <socket>` argument (or honours
//! `RELOCK_DIST_WORKER` when set).
//!
//! ```text
//! dist_soak [workers] [key_bits] [prep_seed] [attack_seed]
//! ```

use relock_attack::{DecryptionReport, Decryptor};
use relock_bench::{attack_config, dist_worker_command, maybe_dist_worker, prepare, Arch, Scale};
use relock_dist::{DistChaos, DistCoordinator, DistOptions, DistReport};
use relock_locking::CountingOracle;
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    if maybe_dist_worker() {
        return ExitCode::SUCCESS;
    }
    let workers: usize = arg_or(1, 4);
    let bits: usize = arg_or(2, 16);
    let prep_seed: u64 = arg_or(3, 42);
    let attack_seed: u64 = arg_or(4, 43);

    let scale = Scale::from_env();
    let p = prepare(Arch::Mlp, bits, scale, prep_seed);
    let cfg = attack_config(Arch::Mlp, scale);
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();

    // Uninterrupted in-process reference.
    let oracle = CountingOracle::new(&p.model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let t0 = Instant::now();
    let reference = decryptor
        .run_brokered(g, &broker, &mut Prng::seed_from_u64(attack_seed))
        .expect("reference run");
    println!(
        "mlp-{bits}: reference fidelity={:.3} rows={} in {:.1}s",
        reference.fidelity(p.model.true_key()),
        reference.queries,
        t0.elapsed().as_secs_f64()
    );

    let model_path =
        std::env::temp_dir().join(format!("relock-dist-soak-{}.rlk", std::process::id()));
    let mut w = std::io::BufWriter::new(
        std::fs::File::create(&model_path).expect("create soak model file"),
    );
    p.model.save(&mut w).expect("save soak model");
    drop(w);
    let (program, worker_args) = dist_worker_command();

    // Clean probe: how many rows actually flow through workers? Only the
    // sharded phases are proxied, so kill points must anchor to routed
    // traffic, not the broker's total.
    let (clean, probe) = dist_run(
        &decryptor,
        &p,
        &model_path,
        &program,
        &worker_args,
        workers,
        attack_seed,
        DistChaos::default(),
        None,
    );
    if clean.key != reference.key || clean.queries != reference.queries {
        eprintln!(
            "FAIL: clean {workers}-worker run diverged from reference\n  reference {} ({} rows)\n  dist      {} ({} rows)",
            reference.key, reference.queries, clean.key, clean.queries
        );
        cleanup(&model_path);
        return ExitCode::FAILURE;
    }
    println!(
        "clean {workers}-worker run: bit-identical, {} rows proxied",
        probe.routed_rows
    );

    // Chaos schedule: three SIGKILLs spread over the proxied traffic,
    // one stalled heartbeat, one truncated frame. Five potential
    // respawns, comfortably inside the default budget of 8.
    let chaos = DistChaos {
        kill_at_rows: vec![
            (probe.routed_rows / 6).max(1),
            (probe.routed_rows / 3).max(2),
            (probe.routed_rows / 2).max(3),
        ],
        stall_after_items: Some((0, 2)),
        truncate_after_items: Some((1.min(workers - 1), 5)),
    };
    println!(
        "chaos schedule: kills at proxied rows {:?}, stall {:?}, truncate {:?}",
        chaos.kill_at_rows, chaos.stall_after_items, chaos.truncate_after_items
    );
    let t1 = Instant::now();
    let (soaked, d) = dist_run(
        &decryptor,
        &p,
        &model_path,
        &program,
        &worker_args,
        workers,
        attack_seed,
        chaos,
        Some(Duration::from_millis(500)),
    );
    cleanup(&model_path);
    println!(
        "soaked run: {} respawns, {} lease expiries, {} duplicate discards, fidelity={:.3} in {:.1}s",
        d.respawns,
        d.lease_expiries,
        d.duplicate_discards,
        soaked.fidelity(p.model.true_key()),
        t1.elapsed().as_secs_f64()
    );

    if let Some(reason) = &d.fell_back {
        eprintln!("FAIL: circuit breaker tripped under a schedule within budget: {reason}");
        return ExitCode::FAILURE;
    }
    if soaked.key != reference.key {
        eprintln!(
            "FAIL: soaked key diverged\n  reference {}\n  soaked    {}",
            reference.key, soaked.key
        );
        return ExitCode::FAILURE;
    }
    if soaked.queries != reference.queries {
        eprintln!(
            "FAIL: underlying query count drifted: reference {} vs soaked {}",
            reference.queries, soaked.queries
        );
        return ExitCode::FAILURE;
    }
    if d.lease_expiries == 0 {
        eprintln!("FAIL: no lease expired — the chaos schedule proved nothing");
        return ExitCode::FAILURE;
    }
    println!("OK: bit-identical key and query count after process-level chaos");
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_arguments)]
fn dist_run(
    decryptor: &Decryptor,
    p: &relock_bench::Prepared,
    model_path: &std::path::Path,
    program: &std::path::Path,
    worker_args: &[String],
    workers: usize,
    attack_seed: u64,
    chaos: DistChaos,
    heartbeat: Option<Duration>,
) -> (DecryptionReport, DistReport) {
    let mut opts = DistOptions::new(program);
    opts.workers = workers;
    opts.worker_args = worker_args.to_vec();
    opts.chaos = chaos;
    if let Some(hb) = heartbeat {
        opts.heartbeat = hb;
    }
    let coord = DistCoordinator::new(model_path, opts).expect("bind coordinator socket");
    let oracle = CountingOracle::new(&p.model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let report = decryptor
        .run_brokered_with(
            p.model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
            &coord,
        )
        .expect("distributed run");
    let d = coord.report();
    (report, d)
}

fn cleanup(model_path: &std::path::Path) {
    let _ = std::fs::remove_file(model_path);
}

fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
