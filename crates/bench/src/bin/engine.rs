//! Execution-engine perf smoke: times the end-to-end MLP (and optionally
//! LeNet) decryption attacks at millisecond precision plus raw forward
//! throughput, and emits `BENCH_engine.json` so CI tracks the perf
//! trajectory of the planned execution engine. A second section times the
//! sharded recovery engine sequential-vs-parallel on a wider MLP-32
//! victim and emits `BENCH_parallel.json` (see DESIGN.md §3e).
//!
//! ```text
//! engine [--lenet] [--out BENCH_engine.json] [--parallel-out BENCH_parallel.json]
//! ```
//!
//! Seeds match the smoke bin (prep 42, attack 43) so the measured attack
//! is the same workload the correctness suites pin down.

use relock_attack::{DecryptionReport, Decryptor};
use relock_bench::{attack_config, prepare, Arch, Prepared, Scale};
use relock_locking::CountingOracle;
use relock_serve::{Broker, BrokerConfig, ChaosConfig, ChaosOracle};
use relock_tensor::rng::Prng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Times one full brokered decryption attack, returning (ms, queries).
fn time_attack(arch: Arch, prep_seed: u64, attack_seed: u64) -> (f64, u64) {
    let p = prepare(arch, 16, Scale::Fast, prep_seed);
    let cfg = attack_config(arch, Scale::Fast);
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();
    let oracle = CountingOracle::new(&p.model);
    // Fresh broker per run: the memo cache must not carry over between
    // repetitions, or later runs would measure cache hits instead of work.
    let mut best = f64::INFINITY;
    let mut queries = 0u64;
    let reps = if arch == Arch::Mlp { 5 } else { 1 };
    for _ in 0..reps {
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let t = Instant::now();
        let report = decryptor
            .run_brokered(g, &broker, &mut Prng::seed_from_u64(attack_seed))
            .expect("attack run");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report.fidelity(p.model.true_key()),
            1.0,
            "{} attack must stay exact while being timed",
            arch.name()
        );
        best = best.min(ms);
        queries = report.queries;
        if std::env::var_os("ENGINE_TIMING").is_some() {
            eprintln!("-- {} timing --\n{}", arch.name(), report.timing);
        }
    }
    (best, queries)
}

/// Raw forward throughput (rows/sec) of the white-box MLP.
///
/// `planned == false` times the retired allocate-per-call tree walk
/// (`forward_reference`); `planned == true` times the compiled-plan path
/// through one reused [`Workspace`]. Returns `(rows_per_sec, passes)`
/// where `passes` is the workspace pass counter — every pass after the
/// first ran entirely in reused buffers (0 for the reference path, which
/// allocates per node per call).
fn forward_throughput(batch: usize, planned: bool) -> (f64, u64) {
    let p = prepare(Arch::Mlp, 16, Scale::Fast, 42);
    let g = p.model.white_box();
    let keys = p.model.true_key().to_assignment();
    let mut rng = Prng::seed_from_u64(7);
    let x = rng.normal_tensor([batch, g.input_size()]);
    let mut ws = relock_graph::Workspace::new();
    // Warm up, then measure ~300ms.
    for _ in 0..50 {
        if planned {
            std::hint::black_box(g.logits_batch_into(&mut ws, &x, &keys));
        } else {
            std::hint::black_box(g.forward_reference(&x, &keys));
        }
    }
    let t = Instant::now();
    let mut iters = 0u64;
    while t.elapsed().as_secs_f64() < 0.3 {
        for _ in 0..20 {
            if planned {
                std::hint::black_box(g.logits_batch_into(&mut ws, &x, &keys));
            } else {
                std::hint::black_box(g.forward_reference(&x, &keys));
            }
        }
        iters += 20;
    }
    let rows = iters as f64 * batch as f64 / t.elapsed().as_secs_f64();
    (rows, ws.passes())
}

/// Per-call latency of the simulated hardware oracle in the parallel
/// bench. Under the paper's threat model the oracle is a locked hardware
/// instance on the other side of a link, so its per-query turnaround —
/// not attacker-side arithmetic — dominates the attack's wall clock. The
/// sharded engine's win is keeping several oracle queries in flight, which
/// is exactly what this workload measures; it is also the only regime a
/// single-core CI box can measure meaningfully.
const ORACLE_LATENCY: Duration = Duration::from_millis(3);

/// Times the sharded recovery engine on `p` at a given worker count,
/// returning the best-of-`reps` wall clock and the last report so the
/// caller can check the parallel run stayed bit-identical while timed.
fn time_sharded_attack(
    p: &Prepared,
    threads: usize,
    attack_seed: u64,
    reps: usize,
) -> (f64, DecryptionReport) {
    let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
    cfg.threads = threads;
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();
    // `latency_spike_rate: 1.0` turns the chaos wrapper into a constant
    // per-call delay with no faults — a deterministic stand-in for the
    // hardware oracle's turnaround.
    let oracle = ChaosOracle::new(
        CountingOracle::new(&p.model),
        ChaosConfig {
            seed: 1,
            latency_spike_rate: 1.0,
            latency_spike: ORACLE_LATENCY,
            ..ChaosConfig::default()
        },
    );
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let t = Instant::now();
        let report = decryptor
            .run_brokered(g, &broker, &mut Prng::seed_from_u64(attack_seed))
            .expect("attack run");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    (best, last.expect("reps >= 1"))
}

/// Sequential-vs-4-thread timing of the same attack against the fixed
/// per-call-latency oracle, written to `BENCH_parallel.json`. The parallel
/// engine is bit-identical by contract, so the recovered key and query
/// count are asserted equal here too — a speedup bought by divergence
/// would be meaningless.
fn parallel_section(out_path: &str) {
    let p = prepare(Arch::Mlp, 32, Scale::Fast, 42);
    let reps = 2;
    let (seq_ms, seq) = time_sharded_attack(&p, 1, 43, reps);
    let (par_ms, par) = time_sharded_attack(&p, 4, 43, reps);
    assert_eq!(
        seq.fidelity(p.model.true_key()),
        1.0,
        "MLP-32 attack must stay exact while being timed"
    );
    assert_eq!(par.key, seq.key, "parallel run must stay bit-identical");
    assert_eq!(par.queries, seq.queries);
    let speedup = seq_ms / par_ms;
    println!(
        "MLP-32 attack vs {}ms-latency oracle: sequential {seq_ms:.1} ms, 4 threads {par_ms:.1} ms ({speedup:.2}x, {} queries)",
        ORACLE_LATENCY.as_millis(),
        seq.queries
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"mlp32-fast-attack\",");
    let _ = writeln!(
        json,
        "  \"oracle_latency_ms\": {},",
        ORACLE_LATENCY.as_millis()
    );
    let _ = writeln!(json, "  \"sequential_ms\": {seq_ms:.2},");
    let _ = writeln!(json, "  \"parallel_ms\": {par_ms:.2},");
    let _ = writeln!(json, "  \"threads\": 4,");
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"queries\": {}", seq.queries);
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write BENCH_parallel.json");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let with_lenet = args.iter().any(|a| a == "--lenet");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let (ref1, _) = forward_throughput(1, false);
    let (ref32, _) = forward_throughput(32, false);
    let (fwd1, passes1) = forward_throughput(1, true);
    let (fwd32, passes32) = forward_throughput(32, true);
    println!(
        "forwards/sec (batch=1):  reference {ref1:.0}, planned {fwd1:.0} ({:.2}x)",
        fwd1 / ref1
    );
    println!(
        "forwards/sec (batch=32): reference {ref32:.0}, planned {fwd32:.0} ({:.2}x)",
        fwd32 / ref32
    );
    let reused = (passes1 - 1) + (passes32 - 1);
    println!(
        "workspace passes: {} total, {} served from reused buffers",
        passes1 + passes32,
        reused
    );

    let (mlp_ms, mlp_q) = time_attack(Arch::Mlp, 42, 43);
    println!("MLP-16 attack: {mlp_ms:.1} ms ({mlp_q} queries)");

    let lenet = if with_lenet {
        let (ms, q) = time_attack(Arch::Lenet, 42, 43);
        println!("LeNet-16 attack: {ms:.1} ms ({q} queries)");
        Some((ms, q))
    } else {
        None
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"forwards_per_sec_batch1\": {fwd1:.1},");
    let _ = writeln!(json, "  \"forwards_per_sec_batch32\": {fwd32:.1},");
    let _ = writeln!(json, "  \"reference_forwards_per_sec_batch1\": {ref1:.1},");
    let _ = writeln!(
        json,
        "  \"reference_forwards_per_sec_batch32\": {ref32:.1},"
    );
    let _ = writeln!(json, "  \"workspace_reused_passes\": {reused},");
    let _ = writeln!(json, "  \"mlp_attack_ms\": {mlp_ms:.2},");
    let _ = writeln!(json, "  \"mlp_attack_queries\": {mlp_q},");
    if let Some((ms, q)) = lenet {
        let _ = writeln!(json, "  \"lenet_attack_ms\": {ms:.2},");
        let _ = writeln!(json, "  \"lenet_attack_queries\": {q},");
    }
    let _ = writeln!(json, "  \"threads\": {}", relock_bench::bench_threads());
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");

    let parallel_out = args
        .iter()
        .position(|a| a == "--parallel-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    parallel_section(&parallel_out);
}
