//! The unified bench report: runs the engine, attack, parallel, and soak
//! measurements in one process, writes a schema-versioned `BENCH.json`,
//! and optionally diffs it against a committed baseline.
//!
//! ```text
//! report [--out BENCH.json] [--repeats N] [--diff BASELINE.json]
//!        [--time-tolerance FRACTION] [--time-warn-only]
//! report --analyze TRACE.jsonl [--stats STATS.json] [--out ANALYZE.json]
//! ```
//!
//! With `--diff`, the exit code is non-zero on any hard failure: schema
//! mismatch, a benchmark missing from the current run, or **any** change
//! in a query count (those are deterministic; drift means the engine's
//! traffic changed and the baseline must be deliberately refreshed).
//! Time regressions beyond the tolerance fail too, unless
//! `--time-warn-only` (the CI mode — shared runners are noisy).
//!
//! With `--analyze`, no benchmarks run: the given flight-recorder capture
//! (a `relock attack --trace` JSONL file) is mined for stall time per
//! phase, wasted queries, batch fill, cache-hit decay, and wave commit
//! efficiency; the human table goes to stdout and the machine-readable
//! document to `--out` (default `ANALYZE.json`). The exit code is
//! non-zero if the capture is structurally broken, internally
//! inconsistent, or — when a `--stats` sidecar (the run's `--stats-json`
//! output) is given — disagrees with the broker's own books in *any*
//! counter. Both books are written by the same code paths, so equality is
//! exact, never a tolerance.

use relock_bench::analyze::analyze;
use relock_bench::report::{diff, run_report, BenchDoc};
use relock_serve::QueryStatsSnapshot;
use relock_trace::Trace;
use std::process::ExitCode;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `report --analyze`: mine a capture, reconcile it against the optional
/// stats sidecar, and gate on any drift.
fn run_analyze(args: &[String], trace_path: &str) -> ExitCode {
    let out_path = flag_value(args, "--out").unwrap_or_else(|| "ANALYZE.json".to_string());
    let trace = match Trace::read_file(std::path::Path::new(trace_path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read trace {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = match analyze(&trace) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("FAIL: capture is structurally broken: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", analysis.render());
    std::fs::write(&out_path, analysis.to_json_value().to_pretty() + "\n")
        .expect("write ANALYZE.json");
    println!("wrote {out_path}");
    let mut failed = false;
    for p in &analysis.problems {
        eprintln!("FAIL: trace inconsistency: {p}");
        failed = true;
    }
    if let Some(stats_path) = flag_value(args, "--stats") {
        let snap = std::fs::read_to_string(&stats_path)
            .map_err(|e| e.to_string())
            .and_then(|text| relock_trace::json::Value::parse(&text).map_err(|e| e.to_string()))
            .and_then(|doc| QueryStatsSnapshot::from_json_value(&doc));
        let snap = match snap {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: cannot read stats sidecar {stats_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let drift = analysis.reconcile(&snap);
        for d in &drift {
            eprintln!("FAIL: accounting drift vs {stats_path}: {d}");
            failed = true;
        }
        if drift.is_empty() {
            println!("trace books reconcile exactly against {stats_path}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    // The distributed section spawns this binary as its worker process.
    if relock_bench::maybe_dist_worker() {
        return ExitCode::SUCCESS;
    }
    let args: Vec<String> = std::env::args().collect();
    if let Some(trace_path) = flag_value(&args, "--analyze") {
        return run_analyze(&args, &trace_path);
    }
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH.json".to_string());
    let repeats: usize = flag_value(&args, "--repeats")
        .map(|s| s.parse().expect("--repeats expects an integer"))
        .unwrap_or(3);
    let baseline_path = flag_value(&args, "--diff");
    let time_tolerance: f64 = flag_value(&args, "--time-tolerance")
        .map(|s| s.parse().expect("--time-tolerance expects a number"))
        .unwrap_or(0.5);
    let time_warn_only = args.iter().any(|a| a == "--time-warn-only");

    let doc = run_report(repeats);
    for e in &doc.entries {
        let extras = match (e.queries, e.cache_hit_rate) {
            (Some(q), Some(r)) => format!(", {q} queries, {:.1}% cache hits", r * 100.0),
            (Some(q), None) => format!(", {q} queries"),
            _ => String::new(),
        };
        println!(
            "{:<32} {:>12.3} {} (spread {:.3} over {} repeats{extras})",
            e.name, e.median, e.unit, e.spread, e.repeats
        );
    }
    std::fs::write(&out_path, doc.to_json()).expect("write BENCH.json");
    println!("wrote {out_path} (schema v{})", doc.schema_version);

    let Some(baseline_path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match BenchDoc::parse(&baseline_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = diff(&doc, &baseline, time_tolerance, time_warn_only);
    for note in &outcome.notes {
        println!("note: {note}");
    }
    for warning in &outcome.warnings {
        println!("WARN: {warning}");
    }
    for failure in &outcome.failures {
        eprintln!("FAIL: {failure}");
    }
    if outcome.is_ok() {
        println!(
            "benchdiff vs {baseline_path} (baseline rev {}): OK",
            baseline.git_rev
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "benchdiff vs {baseline_path}: {} failure(s) — if the query-count change is intentional, refresh the baseline (see README)",
            outcome.failures.len()
        );
        ExitCode::FAILURE
    }
}
