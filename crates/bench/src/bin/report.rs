//! The unified bench report: runs the engine, attack, parallel, and soak
//! measurements in one process, writes a schema-versioned `BENCH.json`,
//! and optionally diffs it against a committed baseline.
//!
//! ```text
//! report [--out BENCH.json] [--repeats N] [--diff BASELINE.json]
//!        [--time-tolerance FRACTION] [--time-warn-only]
//! ```
//!
//! With `--diff`, the exit code is non-zero on any hard failure: schema
//! mismatch, a benchmark missing from the current run, or **any** change
//! in a query count (those are deterministic; drift means the engine's
//! traffic changed and the baseline must be deliberately refreshed).
//! Time regressions beyond the tolerance fail too, unless
//! `--time-warn-only` (the CI mode — shared runners are noisy).

use relock_bench::report::{diff, run_report, BenchDoc};
use std::process::ExitCode;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    // The distributed section spawns this binary as its worker process.
    if relock_bench::maybe_dist_worker() {
        return ExitCode::SUCCESS;
    }
    let args: Vec<String> = std::env::args().collect();
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH.json".to_string());
    let repeats: usize = flag_value(&args, "--repeats")
        .map(|s| s.parse().expect("--repeats expects an integer"))
        .unwrap_or(3);
    let baseline_path = flag_value(&args, "--diff");
    let time_tolerance: f64 = flag_value(&args, "--time-tolerance")
        .map(|s| s.parse().expect("--time-tolerance expects a number"))
        .unwrap_or(0.5);
    let time_warn_only = args.iter().any(|a| a == "--time-warn-only");

    let doc = run_report(repeats);
    for e in &doc.entries {
        let extras = match (e.queries, e.cache_hit_rate) {
            (Some(q), Some(r)) => format!(", {q} queries, {:.1}% cache hits", r * 100.0),
            (Some(q), None) => format!(", {q} queries"),
            _ => String::new(),
        };
        println!(
            "{:<32} {:>12.3} {} (spread {:.3} over {} repeats{extras})",
            e.name, e.median, e.unit, e.spread, e.repeats
        );
    }
    std::fs::write(&out_path, doc.to_json()).expect("write BENCH.json");
    println!("wrote {out_path} (schema v{})", doc.schema_version);

    let Some(baseline_path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match BenchDoc::parse(&baseline_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = diff(&doc, &baseline, time_tolerance, time_warn_only);
    for note in &outcome.notes {
        println!("note: {note}");
    }
    for warning in &outcome.warnings {
        println!("WARN: {warning}");
    }
    for failure in &outcome.failures {
        eprintln!("FAIL: {failure}");
    }
    if outcome.is_ok() {
        println!(
            "benchdiff vs {baseline_path} (baseline rev {}): OK",
            baseline.git_rev
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "benchdiff vs {baseline_path}: {} failure(s) — if the query-count change is intentional, refresh the baseline (see README)",
            outcome.failures.len()
        );
        ExitCode::FAILURE
    }
}
