//! Micro-timing of the attack's hot components (baseline tree).

use relock_bench::{prepare, Arch, Scale};
use relock_locking::{CountingOracle, Oracle};
use relock_tensor::rng::Prng;
use std::time::Instant;

fn main() {
    let p = prepare(Arch::Mlp, 16, Scale::Fast, 42);
    let g = p.model.white_box();
    let keys = p.model.true_key().to_assignment();
    let mut rng = Prng::seed_from_u64(7);

    // 1. forward+backward on a learning-size batch.
    let xb = rng.normal_tensor([64, g.input_size()]);
    let grad = rng.normal_tensor([64, g.output_size()]);
    let t = Instant::now();
    for _ in 0..2000 {
        let acts = g.forward(&xb, &keys);
        let grads = g.backward(&acts, &grad, &keys);
        std::hint::black_box(&grads);
    }
    println!(
        "fwd+bwd b=64      {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 2000.0
    );

    // 2. forward only, line-search-size batch.
    let xs = rng.normal_tensor([25, g.input_size()]);
    let t = Instant::now();
    for _ in 0..20000 {
        std::hint::black_box(g.logits_batch(&xs, &keys));
    }
    println!(
        "logits b=25       {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 20000.0
    );

    // 3. oracle query path (pool + clone in new tree).
    let oracle = CountingOracle::new(&p.model);
    let t = Instant::now();
    for _ in 0..20000 {
        std::hint::black_box(oracle.query_batch(&xs));
    }
    println!(
        "oracle b=25       {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 20000.0
    );

    // 4. single-sample logits (critical-point probes).
    let x1 = rng.normal_tensor([g.input_size()]);
    let t = Instant::now();
    for _ in 0..50000 {
        std::hint::black_box(g.logits(&x1, &keys));
    }
    println!(
        "logits b=1        {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 50000.0
    );

    // 5. planned paths with a reused workspace (what the loops run).
    let mut ws = relock_graph::Workspace::new();
    let t = Instant::now();
    for _ in 0..2000 {
        g.forward_into(&mut ws, &xb, &keys);
        let grads = g.backward_into(&mut ws, &grad, &keys, false);
        std::hint::black_box(&grads);
    }
    println!(
        "fwd+bwd_into k-only {:6.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 2000.0
    );
    let t = Instant::now();
    for _ in 0..2000 {
        g.forward_into(&mut ws, &xb, &keys);
        let grads = g.backward_into(&mut ws, &grad, &keys, true);
        std::hint::black_box(&grads);
    }
    println!(
        "fwd+bwd_into full {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 2000.0
    );
    let t = Instant::now();
    for _ in 0..20000 {
        std::hint::black_box(g.logits_batch_into(&mut ws, &xs, &keys));
    }
    println!(
        "logits_into b=25  {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 20000.0
    );
    let t = Instant::now();
    for _ in 0..50000 {
        std::hint::black_box(g.logits_batch_into(&mut ws, &x1, &keys));
    }
    println!(
        "logits_into b=1   {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 50000.0
    );

    // 5b. learning-step shapes: batch 24 forward / forward+backward.
    let xb24 = rng.normal_tensor([24, g.input_size()]);
    let grad24 = rng.normal_tensor([24, g.output_size()]);
    let t = Instant::now();
    for _ in 0..20000 {
        g.forward_into(&mut ws, &xb24, &keys);
        std::hint::black_box(ws.value(g.output_id()));
    }
    println!(
        "fwd_into b=24     {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 20000.0
    );
    let t = Instant::now();
    for _ in 0..20000 {
        g.forward_into(&mut ws, &xb24, &keys);
        let grads = g.backward_into(&mut ws, &grad24, &keys, false);
        std::hint::black_box(&grads);
    }
    println!(
        "fwd+bwd b=24 k-o  {:8.2} us/iter",
        t.elapsed().as_secs_f64() * 1e6 / 20000.0
    );

    // 6. raw gemm kernels at the attack's layer shapes — one row per
    // shape, one column per (backend, precision). The per-backend columns
    // call the kernels directly (no global override), so the table always
    // shows every backend the machine can run, whatever RELOCK_BACKEND is.
    let backends = relock_tensor::backend::available_backends();
    print!("{:<18}", "gemm_nn (madd/ns)");
    for be in &backends {
        print!("{:>16} {:>13}", format!("{} f64", be.name()), "f32");
    }
    println!();
    for (m, k, n) in [
        (25usize, 48usize, 32usize),
        (25, 32, 16),
        (25, 16, 10),
        (24, 48, 32),
    ] {
        let a = rng.normal_tensor([m, k]);
        let b = rng.normal_tensor([k, n]);
        let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.as_slice().iter().map(|&v| v as f32).collect();
        let mut o = vec![0.0f64; m * n];
        let mut o32 = vec![0.0f32; m * n];
        let madds = (m * k * n) as f64;
        print!("{:<18}", format!("{m}x{k}x{n}"));
        for be in &backends {
            let t = Instant::now();
            for _ in 0..100000 {
                relock_tensor::compute::gemm_nn_into_backend(
                    *be,
                    a.as_slice(),
                    b.as_slice(),
                    &mut o,
                    m,
                    k,
                    n,
                    1,
                );
                std::hint::black_box(&o);
            }
            let us64 = t.elapsed().as_secs_f64() * 1e6 / 100000.0;
            let t = Instant::now();
            for _ in 0..100000 {
                relock_tensor::compute::gemm_nn_f32_into_backend(
                    *be, &a32, &b32, &mut o32, m, k, n, 1,
                );
                std::hint::black_box(&o32);
            }
            let us32 = t.elapsed().as_secs_f64() * 1e6 / 100000.0;
            print!("{:>16.2} {:>13.2}", madds / us64 / 1e3, madds / us32 / 1e3);
        }
        println!();
    }
}
