//! Prints the lock-variant × attack evaluation matrix: key-recovery
//! accuracy of the oracle-guided attack and the two oracle-less
//! baselines across the four locking schemes (see `relock_bench::matrix`
//! for the construction and the expected shape of the table).

fn main() {
    let cells = relock_bench::matrix::run_matrix();
    relock_bench::matrix::print_matrix(&cells);
}
