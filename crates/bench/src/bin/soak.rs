//! Kill-and-resume soak bench: runs the decryption attack under a
//! crash-only chaos schedule, resuming from checkpoints until it
//! completes, and verifies the recovered key is bit-identical to an
//! uninterrupted run. Exits non-zero on any divergence — CI runs this as
//! the `chaos-soak` job with fixed seeds, fully offline.
//!
//! ```text
//! soak [mlp|lenet|resnet|vit] [key_bits] [prep_seed] [attack_seed] [kills]
//! ```

use relock_attack::{
    AttackState, CheckpointPolicy, DecryptionReport, Decryptor, MemoryCheckpointSink,
};
use relock_bench::{attack_config, prepare, Arch, Scale};
use relock_locking::CountingOracle;
use relock_serve::{Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle};
use relock_tensor::rng::Prng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let arch = match std::env::args().nth(1).as_deref() {
        Some("lenet") => Arch::Lenet,
        Some("resnet") => Arch::Resnet,
        Some("vit") => Arch::Vit,
        _ => Arch::Mlp,
    };
    let bits: usize = arg_or(2, 16);
    let prep_seed: u64 = arg_or(3, 42);
    let attack_seed: u64 = arg_or(4, 43);
    let kills: u64 = arg_or(5, 3);

    let scale = Scale::from_env();
    let p = prepare(arch, bits, scale, prep_seed);
    let cfg = attack_config(arch, scale);
    let decryptor = Decryptor::new(cfg);
    let g = p.model.white_box();

    // Uninterrupted reference.
    let clean_oracle = CountingOracle::new(&p.model);
    let broker = Broker::with_config(&clean_oracle, BrokerConfig::default());
    let t0 = Instant::now();
    let reference = decryptor
        .run_brokered(g, &broker, &mut Prng::seed_from_u64(attack_seed))
        .expect("reference run");
    println!(
        "{}-{bits}: reference fidelity={:.3} rows={} in {:.1}s",
        arch.name(),
        reference.fidelity(p.model.true_key()),
        reference.queries,
        t0.elapsed().as_secs_f64()
    );

    // Crash points spread over the reference traffic.
    let crash_at: Vec<u64> = (1..=kills)
        .map(|k| reference.queries * k / (kills + 1))
        .collect();
    println!("scheduled kills at cumulative rows {crash_at:?}");
    let chaos = ChaosOracle::new(
        CountingOracle::new(&p.model),
        ChaosConfig::crash_only(prep_seed, crash_at),
    );
    let sink = MemoryCheckpointSink::new();
    let t1 = Instant::now();
    // The scheduled panics are the point of the exercise — keep them quiet.
    std::panic::set_hook(Box::new(|_| {}));
    let soaked: DecryptionReport = loop {
        let broker = Broker::with_config(&chaos, BrokerConfig::default());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(attack_seed);
            decryptor.resume(g, &broker, &mut rng, &sink, CheckpointPolicy::EVERY_CUT)
        }));
        match attempt {
            Ok(Ok((report, _status))) => break report,
            Ok(Err(e)) => {
                eprintln!("FAIL: attack error during soak: {e}");
                return ExitCode::FAILURE;
            }
            Err(payload) => match payload.downcast::<ChaosCrash>() {
                Ok(crash) => {
                    let phase = sink
                        .contents()
                        .and_then(|b| AttackState::decode(&b).ok())
                        .map(|st| format!("layer {} / {}", st.layer_index, st.phase_name()))
                        .unwrap_or_else(|| "no checkpoint yet".to_string());
                    println!("killed at {} rows; checkpoint: {phase}", crash.at_rows);
                }
                Err(_) => {
                    eprintln!("FAIL: non-chaos panic during soak");
                    return ExitCode::FAILURE;
                }
            },
        }
    };
    let _ = std::panic::take_hook();
    println!(
        "soaked run: {} kills survived, fidelity={:.3} rows={} in {:.1}s",
        chaos.counters().crashes,
        soaked.fidelity(p.model.true_key()),
        soaked.queries,
        t1.elapsed().as_secs_f64()
    );

    if soaked.key != reference.key {
        eprintln!(
            "FAIL: resumed key diverged\n  reference {}\n  soaked    {}",
            reference.key, soaked.key
        );
        return ExitCode::FAILURE;
    }
    if chaos.counters().crashes == 0 {
        eprintln!("FAIL: no scheduled kill fired — soak proved nothing");
        return ExitCode::FAILURE;
    }
    println!("OK: bit-identical key after kill-and-resume");
    ExitCode::SUCCESS
}

fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
