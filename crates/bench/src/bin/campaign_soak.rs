//! Campaign-daemon soak bench: N concurrent campaigns on one hub,
//! latency chaos on every oracle, fair-share scheduling across two
//! tenants, and a pause → daemon-restart → resume migration mid-flight.
//! Every recovered key must be bit-identical to its one-shot sequential
//! reference; exits non-zero on any divergence — CI runs this as the
//! `campaign-soak` job with fixed seeds, fully offline.
//!
//! ```text
//! campaign_soak [campaigns] [slots] [cache_kib]
//! ```
//!
//! `cache_kib 0` lifts the LRU byte cap entirely.

use relock_bench::campaign::run_campaign_soak;
use std::process::ExitCode;

fn main() -> ExitCode {
    let campaigns: usize = arg_or(1, 8);
    let slots: usize = arg_or(2, 4);
    let cache_kib: usize = arg_or(3, 256);
    let cap = if cache_kib == 0 {
        None
    } else {
        Some(cache_kib * 1024)
    };

    println!(
        "campaign soak: {campaigns} campaigns, {slots} slots, cache cap {}",
        cap.map(|b| format!("{} KiB", b / 1024))
            .unwrap_or_else(|| "unbounded".to_string())
    );
    match run_campaign_soak(campaigns, slots, cap) {
        Ok(outcome) => {
            println!(
                "soaked {} campaigns in {:.1}s: {} rows requested, {} cache hits ({:.1}%), \
                 {} evicted, {} rows / {} B resident, migration {}",
                outcome.campaigns,
                outcome.elapsed_ms / 1e3,
                outcome.requested,
                outcome.cache_hits,
                outcome.hit_rate * 100.0,
                outcome.evicted,
                outcome.cache_rows,
                outcome.cache_bytes,
                if outcome.migrated {
                    "exercised"
                } else {
                    "skipped (campaign 0 finished first)"
                },
            );
            println!("OK: every key bit-identical to its sequential reference");
            ExitCode::SUCCESS
        }
        Err(why) => {
            eprintln!("FAIL: {why}");
            ExitCode::FAILURE
        }
    }
}

fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
