//! Quick per-architecture smoke run of the decryption attack, with
//! ground-truth per-layer diagnostics.
use relock_attack::Decryptor;
use relock_bench::{attack_config, prepare, Arch, Scale};
use relock_locking::{CountingOracle, Oracle};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;
use std::time::Instant;

fn main() {
    let arch = match std::env::args().nth(1).as_deref() {
        Some("lenet") => Arch::Lenet,
        Some("resnet") => Arch::Resnet,
        Some("vit") => Arch::Vit,
        _ => Arch::Mlp,
    };
    let bits: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let prep_seed: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let attack_seed: u64 = std::env::args()
        .nth(4)
        .and_then(|s| s.parse().ok())
        .unwrap_or(43);
    let t0 = Instant::now();
    let p = prepare(arch, bits, Scale::Fast, prep_seed);
    println!(
        "{}-{}: trained acc={:.3} in {:.1}s",
        arch.name(),
        bits,
        p.original_accuracy,
        t0.elapsed().as_secs_f64()
    );
    let oracle = CountingOracle::new(&p.model);
    let cfg = attack_config(arch, Scale::Fast);
    let broker = Broker::with_config(
        &oracle,
        BrokerConfig {
            max_queries: cfg.query_budget,
            ..BrokerConfig::default()
        },
    );
    let t1 = Instant::now();
    let report = Decryptor::new(cfg)
        .run_brokered(
            p.model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
        )
        .unwrap();
    println!(
        "decrypt: fid={:.3} queries={} time={:.1}s",
        report.fidelity(p.model.true_key()),
        report.queries,
        t1.elapsed().as_secs_f64()
    );
    println!(
        "broker: underlying queries={} cache-hit rate={:.1}% ({} of {} requested rows served from cache)",
        report.stats.underlying,
        100.0 * report.stats.cache_hit_rate(),
        report.stats.cache_hits,
        report.stats.requested,
    );
    // Sanity: the backend saw exactly what the broker billed.
    assert_eq!(oracle.query_count(), report.stats.underlying);
    print!("{}", report.stats);
    // Per-layer ground truth.
    let sites = p.model.white_box().lock_sites();
    for lr in &report.layers {
        let layer_sites: Vec<_> = sites
            .iter()
            .filter(|s| s.keyed_node == lr.keyed_node)
            .collect();
        let wrong: Vec<String> = layer_sites
            .iter()
            .filter(|s| report.key.bit(s.slot.index()) != p.model.true_key().bit(s.slot.index()))
            .map(|s| s.slot.to_string())
            .collect();
        println!(
            "layer {}: bits={} algebraic={} learned={} val_rounds={} corrected={} validated={} wrong={:?}",
            lr.keyed_node, lr.bits, lr.algebraic, lr.learned, lr.validation_rounds, lr.corrected, lr.validated, wrong
        );
    }
    println!("{}", report.timing);
}
