//! Offline mining of a flight-recorder capture (`report --analyze`).
//!
//! A `--trace` run leaves a JSONL event stream behind; this module parses
//! it back through [`relock_trace::Trace`] and distils the run into the
//! questions an operator actually asks:
//!
//! - **Where did the run stall?** `broker.batch` spans bracket every
//!   oracle round trip; their durations, attributed to the procedure
//!   scope active inside them, give stall time per phase.
//! - **What was wasted?** Cache hits are requests the attack repeated
//!   (served free from the memo), retries are transport do-overs, and
//!   injected faults are the chaos schedule's contribution.
//! - **How full were the batches?** Span args re-bucket through the
//!   *same* [`bucket_of`] edges the broker's histogram uses, so the two
//!   books must agree bucket for bucket.
//! - **Did the cache decay?** The counter stream splits into
//!   event-ordered windows; each window's hit rate shows whether the memo
//!   kept earning its memory as the attack moved into fresh input space.
//! - **Did correction waves commit?** `attack.wave` spans count waves;
//!   `adapt.wave_commit` / `adapt.wave_discard` counters (present on
//!   adaptive runs) give the controller's commit efficiency.
//!
//! The books agree **by construction**: every trace counter is emitted by
//! the same code path that updates [`QueryStatsSnapshot`], so
//! [`Analysis::reconcile`] demands *exact* equality against a
//! `--stats-json` sidecar — any drift is a bug in the instrumentation,
//! never tolerance noise, and CI fails on it.

use relock_serve::{bucket_label, bucket_of, QueryStatsSnapshot, HISTOGRAM_BUCKETS};
use relock_trace::json::Value;
use relock_trace::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the `ANALYZE.json` document layout.
pub const ANALYZE_SCHEMA_VERSION: u64 = 1;

/// Scope label the broker books unscoped traffic under; mirrored here so
/// the per-phase ledgers line up with `QueryStatsSnapshot::per_scope`.
const UNTAGGED: &str = "(untagged)";

/// One procedure scope's ledger mined from the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseAccount {
    /// Scope label (a `Procedure` label, or `(untagged)`).
    pub scope: String,
    /// Rows requested while this scope was active.
    pub requested: u64,
    /// Rows served from the memo cache (free).
    pub cache_hits: u64,
    /// Rows that reached the underlying oracle (the paper's `#Q`).
    pub underlying: u64,
    /// Broker batches dispatched under this scope.
    pub batches: u64,
    /// Transport retries burned under this scope.
    pub retries: u64,
    /// Total `broker.batch` span time attributed to this scope — the
    /// phase's oracle-stall time.
    pub stall_nanos: u64,
}

/// One event-ordered window of the cache-decay series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitWindow {
    /// Rows requested inside the window.
    pub requested: u64,
    /// Rows the cache answered inside the window.
    pub cache_hits: u64,
}

impl HitWindow {
    /// The window's cache-hit rate (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requested as f64
        }
    }
}

/// Everything `report --analyze` mines out of one capture.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Events in the capture.
    pub events: u64,
    /// Total rows requested (`broker.requested` across scopes).
    pub requested: u64,
    /// Total rows served from the memo cache.
    pub cache_hits: u64,
    /// Total rows that reached the underlying oracle.
    pub underlying: u64,
    /// Broker batches (one `broker.requested` counter each).
    pub batches: u64,
    /// Transport retries.
    pub retries: u64,
    /// Chaos-injected faults.
    pub injected_faults: u64,
    /// Total oracle-stall time: the sum of `broker.batch` span durations.
    pub stall_nanos: u64,
    /// Batch-fill histogram rebuilt from span args with [`bucket_of`].
    pub histogram: [u64; HISTOGRAM_BUCKETS],
    /// Per-scope ledgers, sorted by scope label.
    pub phases: Vec<PhaseAccount>,
    /// Cache-hit decay over event-ordered windows.
    pub windows: Vec<HitWindow>,
    /// `attack.layer` spans.
    pub layers: u64,
    /// `attack.wave` spans (correction waves driven).
    pub waves: u64,
    /// Waves whose earliest Pass committed (`adapt.wave_commit`).
    pub wave_commits: u64,
    /// Waves fully validated and discarded (`adapt.wave_discard`).
    pub wave_discards: u64,
    /// Adaptive wave-width decisions recorded (`adapt.wave_width`).
    pub adapt_decisions: u64,
    /// Adaptive shard retunes recorded (`adapt.shard_rows`).
    pub shard_retunes: u64,
    /// Checkpoint frames persisted (`checkpoint.write` counters).
    pub checkpoint_writes: u64,
    /// Internal inconsistencies found in the trace alone (ledger
    /// imbalance, histogram drift against batch count). Empty on a
    /// healthy capture.
    pub problems: Vec<String>,
}

impl Analysis {
    /// Rows the attack asked for more than once (served by the memo).
    pub fn duplicated_rows(&self) -> u64 {
        self.cache_hits
    }

    /// Overall cache-hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requested as f64
        }
    }

    /// Wave commit efficiency, when the capture carries adaptive
    /// tallies (`None` on static runs, which record no verdict counters).
    pub fn commit_efficiency(&self) -> Option<f64> {
        let total = self.wave_commits + self.wave_discards;
        (total > 0).then(|| self.wave_commits as f64 / total as f64)
    }
}

/// Number of cache-decay windows the counter stream splits into.
const DECAY_WINDOWS: usize = 8;

/// Mines a parsed capture. Fails on structural trace problems (unpaired
/// or mislabelled spans) — those mean the capture is truncated or the
/// schema drifted, and no metric derived from it can be trusted.
pub fn analyze(trace: &Trace) -> Result<Analysis, String> {
    let spans = trace.spans().map_err(|e| e.to_string())?;
    let events = trace.events();

    // Counter ledgers, keyed by scope. Absent counters are zero: the
    // broker only emits cache_hits/underlying lines when non-zero.
    let mut phases: BTreeMap<String, PhaseAccount> = BTreeMap::new();
    let mut injected_faults = 0u64;
    let mut wave_commits = 0u64;
    let mut wave_discards = 0u64;
    let mut adapt_decisions = 0u64;
    let mut shard_retunes = 0u64;
    let mut checkpoint_writes = 0u64;
    // (event index, scope) of every `broker.requested` counter — the
    // anchor that attributes a `broker.batch` span to its phase.
    let mut request_marks: Vec<(usize, String)> = Vec::new();
    let mut windows = vec![HitWindow::default(); DECAY_WINDOWS.min(events.len().max(1))];

    for (idx, ev) in events.iter().enumerate() {
        let Event::Counter {
            label,
            scope,
            value,
            ..
        } = ev
        else {
            continue;
        };
        let scope_key = || scope.as_deref().unwrap_or(UNTAGGED).to_string();
        let window = idx * windows.len() / events.len();
        match label.as_ref() {
            "broker.requested" => {
                let p = phases.entry(scope_key()).or_default();
                p.requested += value;
                p.batches += 1;
                request_marks.push((idx, scope.as_deref().unwrap_or(UNTAGGED).to_string()));
                windows[window].requested += value;
            }
            "broker.cache_hits" => {
                phases.entry(scope_key()).or_default().cache_hits += value;
                windows[window].cache_hits += value;
            }
            "broker.underlying" => {
                phases.entry(scope_key()).or_default().underlying += value;
            }
            "broker.retry" => {
                phases.entry(scope_key()).or_default().retries += value;
            }
            "chaos.injected" => injected_faults += value,
            "adapt.wave_commit" => wave_commits += value,
            "adapt.wave_discard" => wave_discards += value,
            "adapt.wave_width" => adapt_decisions += 1,
            "adapt.shard_rows" => shard_retunes += 1,
            "checkpoint.write" => checkpoint_writes += 1,
            _ => {}
        }
    }

    // Span-derived metrics: stall per phase, batch fill, layer/wave
    // counts. Batches bucket by `requested.max(1)` exactly as
    // `QueryStats::record_batch` does.
    let mut histogram = [0u64; HISTOGRAM_BUCKETS];
    let mut stall_nanos = 0u64;
    let mut layers = 0u64;
    let mut waves = 0u64;
    for span in &spans {
        match span.label.as_str() {
            "broker.batch" => {
                histogram[bucket_of(span.arg.max(1))] += 1;
                let d = span.duration_nanos();
                stall_nanos += d;
                let scope = request_marks
                    .iter()
                    .find(|&&(idx, _)| span.begin_index < idx && idx < span.end_index)
                    .map(|(_, s)| s.as_str())
                    .unwrap_or(UNTAGGED);
                phases.entry(scope.to_string()).or_default().stall_nanos += d;
            }
            "attack.layer" => layers += 1,
            "attack.wave" => waves += 1,
            _ => {}
        }
    }

    let mut phases: Vec<PhaseAccount> = phases
        .into_iter()
        .map(|(scope, mut p)| {
            p.scope = scope;
            p
        })
        .collect();
    phases.sort_by(|a, b| a.scope.cmp(&b.scope));

    let requested: u64 = phases.iter().map(|p| p.requested).sum();
    let cache_hits: u64 = phases.iter().map(|p| p.cache_hits).sum();
    let underlying: u64 = phases.iter().map(|p| p.underlying).sum();
    let batches: u64 = phases.iter().map(|p| p.batches).sum();
    let retries: u64 = phases.iter().map(|p| p.retries).sum();

    // Trace-internal consistency: the ledger must balance per scope and
    // in total, and every batch must appear in exactly one histogram
    // bucket. These hold by construction; a violation is instrumentation
    // drift, not noise.
    let mut problems = Vec::new();
    if requested != cache_hits + underlying {
        problems.push(format!(
            "ledger imbalance: requested {requested} != cache_hits {cache_hits} + underlying {underlying}"
        ));
    }
    for p in &phases {
        if p.requested != p.cache_hits + p.underlying {
            problems.push(format!(
                "scope {:?} imbalance: requested {} != cache_hits {} + underlying {}",
                p.scope, p.requested, p.cache_hits, p.underlying
            ));
        }
    }
    let bucketed: u64 = histogram.iter().sum();
    if bucketed != batches {
        problems.push(format!(
            "histogram drift: {bucketed} bucketed batch spans vs {batches} broker.requested counters"
        ));
    }

    Ok(Analysis {
        events: events.len() as u64,
        requested,
        cache_hits,
        underlying,
        batches,
        retries,
        injected_faults,
        stall_nanos,
        histogram,
        phases,
        windows,
        layers,
        waves,
        wave_commits,
        wave_discards,
        adapt_decisions,
        shard_retunes,
        checkpoint_writes,
        problems,
    })
}

impl Analysis {
    /// Reconciles the trace books against a `QueryStatsSnapshot` sidecar
    /// (the run's `--stats-json` output). Every comparison is **exact**:
    /// both books are written by the same code paths, so any drift fails.
    /// Returns the list of discrepancies (empty = books agree).
    pub fn reconcile(&self, snap: &QueryStatsSnapshot) -> Vec<String> {
        let mut drift = Vec::new();
        let mut check = |what: &str, trace: u64, stats: u64| {
            if trace != stats {
                drift.push(format!("{what}: trace {trace} != stats {stats}"));
            }
        };
        check("requested", self.requested, snap.requested);
        check("cache_hits", self.cache_hits, snap.cache_hits);
        check("underlying", self.underlying, snap.underlying);
        check("batches", self.batches, snap.batches);
        check("retries", self.retries, snap.retries);
        check(
            "injected_faults",
            self.injected_faults,
            snap.injected_faults,
        );
        for (b, (&t, &s)) in self.histogram.iter().zip(&snap.histogram).enumerate() {
            if t != s {
                drift.push(format!(
                    "histogram[{}]: trace {t} != stats {s}",
                    bucket_label(b)
                ));
            }
        }
        let trace_scopes: BTreeMap<&str, &PhaseAccount> =
            self.phases.iter().map(|p| (p.scope.as_str(), p)).collect();
        for (scope, sc) in &snap.per_scope {
            match trace_scopes.get(scope.as_str()) {
                None => drift.push(format!("scope {scope:?} missing from trace")),
                Some(p) => {
                    if (p.requested, p.cache_hits, p.underlying)
                        != (sc.requested, sc.cache_hits, sc.underlying)
                    {
                        drift.push(format!(
                            "scope {scope:?}: trace ({}, {}, {}) != stats ({}, {}, {})",
                            p.requested,
                            p.cache_hits,
                            p.underlying,
                            sc.requested,
                            sc.cache_hits,
                            sc.underlying
                        ));
                    }
                }
            }
        }
        for p in &self.phases {
            if !snap.per_scope.iter().any(|(scope, _)| *scope == p.scope) {
                drift.push(format!("scope {:?} missing from stats", p.scope));
            }
        }
        drift
    }

    /// The machine-readable `ANALYZE.json` document.
    pub fn to_json_value(&self) -> Value {
        let phase_value = |p: &PhaseAccount| {
            Value::Obj(vec![
                ("scope".into(), Value::str(p.scope.clone())),
                ("requested".into(), Value::num_u64(p.requested)),
                ("cache_hits".into(), Value::num_u64(p.cache_hits)),
                ("underlying".into(), Value::num_u64(p.underlying)),
                ("batches".into(), Value::num_u64(p.batches)),
                ("retries".into(), Value::num_u64(p.retries)),
                ("stall_nanos".into(), Value::num_u64(p.stall_nanos)),
            ])
        };
        let window_value = |w: &HitWindow| {
            Value::Obj(vec![
                ("requested".into(), Value::num_u64(w.requested)),
                ("cache_hits".into(), Value::num_u64(w.cache_hits)),
                ("hit_rate".into(), Value::num_f64(w.hit_rate(), 4)),
            ])
        };
        Value::Obj(vec![
            (
                "schema_version".into(),
                Value::num_u64(ANALYZE_SCHEMA_VERSION),
            ),
            ("events".into(), Value::num_u64(self.events)),
            ("requested".into(), Value::num_u64(self.requested)),
            ("cache_hits".into(), Value::num_u64(self.cache_hits)),
            ("underlying".into(), Value::num_u64(self.underlying)),
            ("batches".into(), Value::num_u64(self.batches)),
            ("retries".into(), Value::num_u64(self.retries)),
            (
                "injected_faults".into(),
                Value::num_u64(self.injected_faults),
            ),
            ("hit_rate".into(), Value::num_f64(self.hit_rate(), 4)),
            ("stall_nanos".into(), Value::num_u64(self.stall_nanos)),
            (
                "histogram".into(),
                Value::Arr(self.histogram.iter().map(|&c| Value::num_u64(c)).collect()),
            ),
            (
                "phases".into(),
                Value::Arr(self.phases.iter().map(phase_value).collect()),
            ),
            (
                "cache_decay".into(),
                Value::Arr(self.windows.iter().map(window_value).collect()),
            ),
            ("layers".into(), Value::num_u64(self.layers)),
            ("waves".into(), Value::num_u64(self.waves)),
            ("wave_commits".into(), Value::num_u64(self.wave_commits)),
            ("wave_discards".into(), Value::num_u64(self.wave_discards)),
            (
                "commit_efficiency".into(),
                match self.commit_efficiency() {
                    Some(e) => Value::num_f64(e, 4),
                    None => Value::Null,
                },
            ),
            (
                "adapt_decisions".into(),
                Value::num_u64(self.adapt_decisions),
            ),
            ("shard_retunes".into(), Value::num_u64(self.shard_retunes)),
            (
                "checkpoint_writes".into(),
                Value::num_u64(self.checkpoint_writes),
            ),
            (
                "problems".into(),
                Value::Arr(
                    self.problems
                        .iter()
                        .map(|p| Value::str(p.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The human-readable report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace analysis ({} events)", self.events);
        let _ = writeln!(
            out,
            "  requested {}   cache hits {} ({:.1}%)   underlying {}   batches {}",
            self.requested,
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.underlying,
            self.batches
        );
        let _ = writeln!(
            out,
            "  waste: {} duplicated rows, {} retries, {} injected faults",
            self.duplicated_rows(),
            self.retries,
            self.injected_faults
        );
        let _ = writeln!(
            out,
            "  oracle stall {:.3}s over {} batches   layers {}   checkpoint writes {}",
            self.stall_nanos as f64 / 1e9,
            self.batches,
            self.layers,
            self.checkpoint_writes
        );
        let _ = writeln!(out, "\n  per-phase ledger and stall:");
        let _ = writeln!(
            out,
            "  {:<24}{:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
            "scope", "requested", "hits", "underlying", "batches", "retries", "stall(s)"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<24}{:>10} {:>10} {:>10} {:>8} {:>8} {:>10.3}",
                p.scope,
                p.requested,
                p.cache_hits,
                p.underlying,
                p.batches,
                p.retries,
                p.stall_nanos as f64 / 1e9
            );
        }
        let _ = writeln!(out, "\n  batch-fill histogram (rows per batch):");
        for (b, &count) in self.histogram.iter().enumerate() {
            if count > 0 {
                let _ = writeln!(out, "  {:>8}: {count}", bucket_label(b));
            }
        }
        let _ = writeln!(out, "\n  cache-hit decay (event-ordered windows):");
        for (i, w) in self.windows.iter().enumerate() {
            let _ = writeln!(
                out,
                "  window {i}: {:>6} requested, {:>6} hits ({:>5.1}%)",
                w.requested,
                w.cache_hits,
                100.0 * w.hit_rate()
            );
        }
        match self.commit_efficiency() {
            Some(e) => {
                let _ = writeln!(
                    out,
                    "\n  correction: {} waves, {} committed / {} discarded ({:.1}% efficiency), {} adaptive decisions, {} shard retunes",
                    self.waves,
                    self.wave_commits,
                    self.wave_discards,
                    100.0 * e,
                    self.adapt_decisions,
                    self.shard_retunes
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "\n  correction: {} waves (static run: no adaptive tallies)",
                    self.waves
                );
            }
        }
        if !self.problems.is_empty() {
            let _ = writeln!(out, "\n  PROBLEMS:");
            for p in &self.problems {
                let _ = writeln!(out, "  - {p}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_attack::{AttackConfig, Decryptor};
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};
    use relock_serve::{Broker, BrokerConfig};
    use relock_tensor::rng::Prng;
    use std::sync::Arc;

    /// Runs a small seeded attack under a recorder and returns the
    /// capture alongside the broker's own books.
    fn captured_run() -> (Trace, QueryStatsSnapshot) {
        let mut rng = Prng::seed_from_u64(700);
        let model = build_mlp(
            &MlpSpec {
                input: 12,
                hidden: vec![10, 6],
                classes: 3,
            },
            LockSpec::evenly(16),
            &mut rng,
        )
        .unwrap();
        let flight = Arc::new(relock_trace::FlightRecorder::new());
        let snap = relock_trace::with_recorder(flight.clone(), || {
            let oracle = CountingOracle::new(&model);
            let broker = Broker::with_config(&oracle, BrokerConfig::default());
            Decryptor::new(AttackConfig::fast())
                .run_brokered(model.white_box(), &broker, &mut Prng::seed_from_u64(701))
                .expect("attack succeeds");
            broker.snapshot()
        });
        let trace = Trace::parse(&flight.to_jsonl()).expect("capture parses");
        (trace, snap)
    }

    #[test]
    fn a_real_capture_reconciles_exactly_against_the_broker_books() {
        let (trace, snap) = captured_run();
        let analysis = analyze(&trace).expect("structurally sound capture");
        assert!(
            analysis.problems.is_empty(),
            "internal problems: {:?}",
            analysis.problems
        );
        let drift = analysis.reconcile(&snap);
        assert!(drift.is_empty(), "books drifted: {drift:?}");
        assert!(analysis.requested > 0);
        assert_eq!(analysis.requested, snap.requested);
        assert_eq!(analysis.batches, snap.batches);
        assert!(analysis.layers > 0, "attack.layer spans present");
        assert!(analysis.stall_nanos > 0, "batch spans carry duration");
        // The decay series repartitions the same totals.
        let w_req: u64 = analysis.windows.iter().map(|w| w.requested).sum();
        let w_hits: u64 = analysis.windows.iter().map(|w| w.cache_hits).sum();
        assert_eq!(w_req, analysis.requested);
        assert_eq!(w_hits, analysis.cache_hits);
    }

    #[test]
    fn reconcile_flags_every_accounting_drift() {
        let (trace, snap) = captured_run();
        let analysis = analyze(&trace).unwrap();
        let mut bad = snap.clone();
        bad.requested += 1;
        bad.histogram[0] += 3;
        let drift = analysis.reconcile(&bad);
        assert!(
            drift.iter().any(|d| d.starts_with("requested:")),
            "{drift:?}"
        );
        assert!(
            drift.iter().any(|d| d.starts_with("histogram[")),
            "{drift:?}"
        );
    }

    #[test]
    fn json_document_carries_the_headline_numbers() {
        let (trace, _) = captured_run();
        let analysis = analyze(&trace).unwrap();
        let doc = analysis.to_json_value();
        assert_eq!(
            doc.get("schema_version").and_then(Value::as_u64),
            Some(ANALYZE_SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("requested").and_then(Value::as_u64),
            Some(analysis.requested)
        );
        assert_eq!(
            doc.get("phases").and_then(Value::as_arr).map(|a| a.len()),
            Some(analysis.phases.len())
        );
        // And it survives a text round trip.
        let back = Value::parse(&doc.to_pretty()).unwrap();
        assert_eq!(
            back.get("underlying").and_then(Value::as_u64),
            Some(analysis.underlying)
        );
        let table = analysis.render();
        assert!(table.contains("per-phase ledger"));
        assert!(table.contains("cache-hit decay"));
    }

    #[test]
    fn truncated_captures_are_rejected_outright() {
        let (trace, _) = captured_run();
        // Drop the last span-closing line: its begin is left dangling,
        // exactly what a crashed writer leaves behind.
        let cut = trace
            .events()
            .iter()
            .rposition(|e| matches!(e, Event::SpanEnd { .. }))
            .expect("capture has spans");
        let text: String = trace
            .events()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != cut)
            .map(|(_, e)| e.to_jsonl() + "\n")
            .collect();
        let truncated = Trace::parse(&text).unwrap();
        // The span can no longer close, so spans() errors and analyze
        // refuses the capture.
        assert!(analyze(&truncated).is_err());
    }
}
