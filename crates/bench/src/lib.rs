//! Experiment harness for the paper's evaluation section.
//!
//! This crate regenerates, at a configurable scale:
//!
//! - **Table 1** — original/baseline accuracy and {accuracy, fidelity,
//!   time, #queries} for the monolithic learning-based attack vs. the DNN
//!   decryption attack, across MLP / LeNet / ResNet / V-Transformer and
//!   three key sizes each;
//! - **Figure 3** — the per-procedure execution-time breakdown of the
//!   decryption attack.
//!
//! Scales (env `RELOCK_SCALE`):
//!
//! - `fast` (default) — victims sized to finish the full grid in minutes on
//!   a single laptop core;
//! - `paper` — the paper-shaped geometries (784-dim MLP, 28×28 LeNet,
//!   deeper ResNet/ViT, key sizes up to 196). Expect a long run.
//!
//! Filter the grid with `RELOCK_ARCHS=mlp,lenet` and
//! `RELOCK_KEYS=small,medium,large`.

use relock_attack::{
    AttackConfig, Decryptor, LearningConfig, MonolithicAttack, MonolithicConfig,
    QueryStatsSnapshot, TimingBreakdown,
};
use relock_data::{cifar_like, mnist_like, Dataset};
use relock_locking::{CountingOracle, Key, LockSpec, LockedModel};
use relock_nn::{
    build_lenet, build_mlp, build_resnet, build_vit, LenetSpec, MlpSpec, ResnetSpec, Trainer,
    VitSpec,
};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;
use std::time::Instant;

pub mod analyze;
pub mod campaign;
pub mod matrix;
pub mod report;

/// The four victim architectures of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Multilayer perceptron (contractive).
    Mlp,
    /// LeNet-5 ReLU variant.
    Lenet,
    /// Residual network.
    Resnet,
    /// ReLU Vision Transformer.
    Vit,
}

impl Arch {
    /// All architectures in Table 1 order.
    pub const ALL: [Arch; 4] = [Arch::Mlp, Arch::Lenet, Arch::Resnet, Arch::Vit];

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Mlp => "MLP",
            Arch::Lenet => "LeNet",
            Arch::Resnet => "ResNet",
            Arch::Vit => "V-Transformer",
        }
    }

    /// The synthetic stand-in dataset's name.
    pub fn dataset_name(self) -> &'static str {
        match self {
            Arch::Mlp | Arch::Lenet => "MNIST-like",
            Arch::Resnet | Arch::Vit => "CIFAR-like",
        }
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-single-core grid (default).
    Fast,
    /// Paper-shaped geometries.
    Paper,
}

impl Scale {
    /// Reads `RELOCK_SCALE` (`fast`/`paper`), defaulting to fast.
    pub fn from_env() -> Self {
        match std::env::var("RELOCK_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Fast,
        }
    }
}

/// The three key sizes evaluated per architecture (Table 1's rows).
pub fn key_sizes(arch: Arch, scale: Scale) -> [usize; 3] {
    match (scale, arch) {
        (Scale::Fast, Arch::Mlp) => [8, 16, 32],
        (Scale::Fast, Arch::Lenet) => [8, 16, 24],
        (Scale::Fast, Arch::Resnet) => [8, 16, 24],
        (Scale::Fast, Arch::Vit) => [16, 32, 48],
        (Scale::Paper, Arch::Mlp | Arch::Lenet) => [32, 64, 128],
        (Scale::Paper, Arch::Resnet | Arch::Vit) => [64, 128, 196],
    }
}

/// A trained, locked victim bundled with its task.
#[derive(Debug)]
pub struct Prepared {
    /// The trained locked model (holds the secret key).
    pub model: LockedModel,
    /// Its classification task.
    pub data: Dataset,
    /// Test accuracy under the true key (Table 1 "Original Accuracy").
    pub original_accuracy: f64,
}

/// Builds and trains a victim.
///
/// # Panics
///
/// Panics if the architecture cannot hold `key_bits` (the harness key
/// sizes are chosen to fit).
pub fn prepare(arch: Arch, key_bits: usize, scale: Scale, seed: u64) -> Prepared {
    let mut rng = Prng::seed_from_u64(seed);
    let (model, data, trainer) = match (scale, arch) {
        (Scale::Fast, Arch::Mlp) => {
            let data = mnist_like(&mut rng, 500, 200, 48);
            let spec = MlpSpec {
                input: 48,
                hidden: vec![32, 16],
                classes: 10,
            };
            let model = build_mlp(&spec, LockSpec::evenly(key_bits), &mut rng).expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 5e-3,
                    epochs: 14,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Paper, Arch::Mlp) => {
            let data = mnist_like(&mut rng, 2000, 500, 784);
            let model = build_mlp(&MlpSpec::default(), LockSpec::evenly(key_bits), &mut rng)
                .expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 3e-3,
                    epochs: 12,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Fast, Arch::Lenet) => {
            let data = cifar_like(&mut rng, 400, 150, 1, 12, 12);
            let spec = LenetSpec {
                in_channels: 1,
                h: 12,
                w: 12,
                c1: 6,
                c2: 10,
                fc1: 24,
                fc2: 16,
                classes: 10,
            };
            let model =
                build_lenet(&spec, LockSpec::evenly(key_bits), &mut rng).expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 5e-3,
                    epochs: 12,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Paper, Arch::Lenet) => {
            let data = cifar_like(&mut rng, 1500, 400, 1, 28, 28);
            let model = build_lenet(&LenetSpec::default(), LockSpec::evenly(key_bits), &mut rng)
                .expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 3e-3,
                    epochs: 10,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Fast, Arch::Resnet) => {
            let data = cifar_like(&mut rng, 350, 120, 3, 12, 12);
            let spec = ResnetSpec {
                in_channels: 3,
                h: 12,
                w: 12,
                stem: 8,
                stages: vec![
                    relock_nn::StageSpec {
                        channels: 8,
                        blocks: 1,
                        stride: 1,
                    },
                    relock_nn::StageSpec {
                        channels: 16,
                        blocks: 1,
                        stride: 2,
                    },
                ],
                classes: 10,
            };
            let model =
                build_resnet(&spec, LockSpec::evenly(key_bits), &mut rng).expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 5e-3,
                    epochs: 10,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Paper, Arch::Resnet) => {
            let data = cifar_like(&mut rng, 1000, 300, 3, 16, 16);
            let model = build_resnet(&ResnetSpec::default(), LockSpec::evenly(key_bits), &mut rng)
                .expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 3e-3,
                    epochs: 10,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Fast, Arch::Vit) => {
            let data = cifar_like(&mut rng, 400, 150, 3, 8, 8);
            let spec = VitSpec {
                in_channels: 3,
                h: 8,
                w: 8,
                patch: 4,
                embed: 16,
                heads: 2,
                blocks: 2,
                mlp_hidden: 32,
                classes: 10,
            };
            let model = build_vit(&spec, LockSpec::evenly(key_bits), &mut rng).expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 3e-3,
                    epochs: 16,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
        (Scale::Paper, Arch::Vit) => {
            let data = cifar_like(&mut rng, 1000, 300, 3, 16, 16);
            let model = build_vit(&VitSpec::default(), LockSpec::evenly(key_bits), &mut rng)
                .expect("spec fits");
            (
                model,
                data,
                Trainer {
                    lr: 3e-3,
                    epochs: 12,
                    batch_size: 32,
                    ..Trainer::default()
                },
            )
        }
    };
    let mut model = model;
    trainer.fit(&mut model, &data, &mut rng);
    let original_accuracy = model.accuracy(data.test.inputs(), data.test.labels());
    Prepared {
        model,
        data,
        original_accuracy,
    }
}

/// Table 1's baseline accuracy: mean test accuracy over `n` uniformly
/// random (almost surely incorrect) keys — the paper uses 16.
pub fn baseline_accuracy(p: &Prepared, n: usize, rng: &mut Prng) -> f64 {
    let bits = p.model.true_key().len();
    let mut sum = 0.0;
    for _ in 0..n {
        let k = Key::random(bits, rng);
        sum += p
            .model
            .accuracy_with(p.data.test.inputs(), p.data.test.labels(), &k);
    }
    sum / n as f64
}

/// One attack's Table 1 cells.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Test accuracy of the model under the extracted key.
    pub accuracy: f64,
    /// Fraction of exactly recovered key bits.
    pub fidelity: f64,
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Underlying oracle queries spent (cache hits are free — see the
    /// `relock-serve` query accounting semantics).
    pub queries: u64,
    /// Fraction of requested rows the broker served from its memo cache.
    pub cache_hit_rate: f64,
}

/// The attack configuration used for an architecture at a scale.
pub fn attack_config(arch: Arch, scale: Scale) -> AttackConfig {
    let mut cfg = AttackConfig {
        continue_on_failure: true,
        ..AttackConfig::default()
    };
    // The synthetic tasks put hyperplanes within a few units of the origin.
    cfg.input_scale = 3.0;
    if scale == Scale::Fast {
        cfg.learning = LearningConfig {
            samples: 160,
            batch: 16,
            epochs: 80,
            lr: 0.08,
            confidence: 0.95,
            patience: 15,
            ..LearningConfig::default()
        };
        cfg.validation_neurons = 12;
        cfg.max_hamming = 5;
        cfg.max_candidates_per_hd = 40;
        cfg.correction_window = 24;
    }
    // Smooth attention needs a slightly larger probe so kinks dominate the
    // curvature floor even for weakly coupled neurons.
    if arch == Arch::Vit {
        cfg.probe_delta = 1e-4;
    }
    cfg
}

/// The monolithic baseline's configuration.
pub fn monolithic_config(scale: Scale) -> MonolithicConfig {
    match scale {
        Scale::Fast => MonolithicConfig {
            learning: LearningConfig {
                samples: 200,
                batch: 25,
                epochs: 50,
                lr: 0.08,
                confidence: 0.95,
                patience: 10,
                ..LearningConfig::default()
            },
            input_scale: 3.0,
        },
        Scale::Paper => MonolithicConfig::default(),
    }
}

/// Runs the §4.3 monolithic learning-based attack and fills its row.
pub fn run_monolithic(p: &Prepared, scale: Scale, seed: u64) -> AttackRow {
    let oracle = CountingOracle::new(&p.model);
    let mut rng = Prng::seed_from_u64(seed);
    let report =
        MonolithicAttack::new(monolithic_config(scale)).run(p.model.white_box(), &oracle, &mut rng);
    AttackRow {
        accuracy: p
            .model
            .accuracy_with(p.data.test.inputs(), p.data.test.labels(), &report.key),
        fidelity: report.key.fidelity(p.model.true_key()),
        time_s: report.elapsed.as_secs_f64(),
        queries: report.queries,
        cache_hit_rate: report.stats.cache_hit_rate(),
    }
}

/// Runs the full DNN decryption attack (Algorithm 2) and fills its row,
/// also returning the Figure 3 timing breakdown and the broker's query
/// accounting (underlying queries, cache effectiveness, batch shapes).
pub fn run_decryption(
    p: &Prepared,
    arch: Arch,
    scale: Scale,
    seed: u64,
) -> (AttackRow, TimingBreakdown, QueryStatsSnapshot) {
    let oracle = CountingOracle::new(&p.model);
    let mut rng = Prng::seed_from_u64(seed);
    let cfg = attack_config(arch, scale);
    let broker = Broker::with_config(
        &oracle,
        BrokerConfig {
            max_queries: cfg.query_budget,
            ..BrokerConfig::default()
        },
    );
    let start = Instant::now();
    let report = Decryptor::new(cfg)
        .run_brokered(p.model.white_box(), &broker, &mut rng)
        .expect("continue_on_failure keeps the run alive");
    let elapsed = start.elapsed().as_secs_f64();
    (
        AttackRow {
            accuracy: p.model.accuracy_with(
                p.data.test.inputs(),
                p.data.test.labels(),
                &report.key,
            ),
            fidelity: report.fidelity(p.model.true_key()),
            time_s: elapsed,
            queries: report.queries,
            cache_hit_rate: report.stats.cache_hit_rate(),
        },
        report.timing,
        report.stats,
    )
}

/// Worker threads available to the compute kernels, as reported in
/// `BENCH_engine.json` so perf numbers carry their machine context.
pub fn bench_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves the worker process for distributed measurements: the
/// `RELOCK_DIST_WORKER` env var (path to a standalone `dist_worker`
/// binary) when set, otherwise this very binary re-invoked with the
/// hidden `dist-worker` argument — every bench bin that runs distributed
/// work answers that mode via [`maybe_dist_worker`], so the measurements
/// never depend on another crate's binary having been built first.
pub fn dist_worker_command() -> (std::path::PathBuf, Vec<String>) {
    match std::env::var_os("RELOCK_DIST_WORKER") {
        Some(program) => (program.into(), Vec::new()),
        None => (
            std::env::current_exe().expect("locate own binary"),
            vec!["dist-worker".to_string()],
        ),
    }
}

/// Serves the hidden `dist-worker` re-invocation of a bench bin (see
/// [`dist_worker_command`]). Call first thing in `main`; returns `true`
/// when this process was a worker and has already run to completion, in
/// which case the bin must exit successfully without benching anything.
pub fn maybe_dist_worker() -> bool {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("dist-worker") {
        return false;
    }
    let socket = args.next().expect("dist-worker needs a socket path");
    if let Err(e) = relock_dist::worker_main(&socket) {
        eprintln!("dist-worker: {e}");
        std::process::exit(1);
    }
    true
}

/// Env-driven architecture filter (`RELOCK_ARCHS=mlp,resnet`).
pub fn arch_filter() -> Vec<Arch> {
    match std::env::var("RELOCK_ARCHS") {
        Ok(s) => {
            let wanted: Vec<String> = s.split(',').map(|w| w.trim().to_lowercase()).collect();
            Arch::ALL
                .into_iter()
                .filter(|a| {
                    wanted
                        .iter()
                        .any(|w| a.name().to_lowercase().starts_with(w.as_str()))
                })
                .collect()
        }
        Err(_) => Arch::ALL.to_vec(),
    }
}

/// Env-driven key-size filter (`RELOCK_KEYS=small,large` picks the 1st and
/// 3rd of each architecture's sizes).
pub fn key_filter() -> Vec<usize> {
    match std::env::var("RELOCK_KEYS") {
        Ok(s) => s
            .split(',')
            .filter_map(|w| match w.trim() {
                "small" => Some(0),
                "medium" => Some(1),
                "large" => Some(2),
                _ => None,
            })
            .collect(),
        Err(_) => vec![0, 1, 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_sizes_fit_their_architectures() {
        for scale in [Scale::Fast, Scale::Paper] {
            for arch in Arch::ALL {
                for &bits in &key_sizes(arch, scale) {
                    assert!(bits > 0);
                }
            }
        }
    }

    #[test]
    fn prepare_trains_a_usable_mlp_victim() {
        // The largest fast-scale key: a wrong key must hurt noticeably
        // (with few bits the baseline stays high — the paper observes the
        // same under-locking effect on its large models).
        let p = prepare(Arch::Mlp, 32, Scale::Fast, 1);
        assert!(
            p.original_accuracy > 0.85,
            "victim accuracy {}",
            p.original_accuracy
        );
        let mut rng = Prng::seed_from_u64(2);
        let baseline = baseline_accuracy(&p, 4, &mut rng);
        assert!(
            baseline < p.original_accuracy - 0.15,
            "baseline {baseline} vs original {}",
            p.original_accuracy
        );
    }

    #[test]
    fn arch_names_match_the_paper() {
        assert_eq!(Arch::Vit.name(), "V-Transformer");
        assert_eq!(Arch::Mlp.dataset_name(), "MNIST-like");
        assert_eq!(Arch::Resnet.dataset_name(), "CIFAR-like");
    }
}

/// One fully-populated row of Table 1 plus its Figure 3 breakdown.
#[derive(Debug)]
pub struct Table1Row {
    /// Architecture.
    pub arch: Arch,
    /// Key size in bits.
    pub key_bits: usize,
    /// Test accuracy under the true key.
    pub original: f64,
    /// Mean test accuracy over 16 random incorrect keys.
    pub baseline: f64,
    /// The §4.3 monolithic learning-based attack (if run).
    pub monolithic: Option<AttackRow>,
    /// The DNN decryption attack (Algorithm 2).
    pub decryption: AttackRow,
    /// Figure 3 per-procedure timing of the decryption attack.
    pub timing: TimingBreakdown,
    /// Query-broker accounting of the decryption attack (underlying
    /// queries, cache hits, batch-size histogram, oracle latency).
    pub stats: QueryStatsSnapshot,
}

/// Runs the experiment grid, honouring the `RELOCK_ARCHS` / `RELOCK_KEYS`
/// filters. Progress goes to stderr.
pub fn run_grid(scale: Scale, with_monolithic: bool) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    let keys_wanted = key_filter();
    for arch in arch_filter() {
        let sizes = key_sizes(arch, scale);
        for (ki, &bits) in sizes.iter().enumerate() {
            if !keys_wanted.contains(&ki) {
                continue;
            }
            let seed = 1000 + 17 * ki as u64 + 1301 * arch as u64;
            eprintln!("[grid] {} {bits}-bit: training victim…", arch.name());
            let p = prepare(arch, bits, scale, seed);
            let mut rng = Prng::seed_from_u64(seed + 1);
            let baseline = baseline_accuracy(&p, 16, &mut rng);
            let monolithic = if with_monolithic {
                eprintln!(
                    "[grid] {} {bits}-bit: monolithic learning attack…",
                    arch.name()
                );
                Some(run_monolithic(&p, scale, seed + 2))
            } else {
                None
            };
            eprintln!("[grid] {} {bits}-bit: DNN decryption attack…", arch.name());
            let (decryption, timing, stats) = run_decryption(&p, arch, scale, seed + 3);
            eprintln!(
                "[grid] {} {bits}-bit done: fidelity {:.3} in {:.1}s / {} underlying queries ({:.1}% cache hits)",
                arch.name(),
                decryption.fidelity,
                decryption.time_s,
                decryption.queries,
                100.0 * decryption.cache_hit_rate,
            );
            rows.push(Table1Row {
                arch,
                key_bits: bits,
                original: p.original_accuracy,
                baseline,
                monolithic,
                decryption,
                timing,
                stats,
            });
        }
    }
    rows
}

/// Prints the paper-style Table 1.
pub fn print_table1(rows: &[Table1Row]) {
    println!("Table 1: Experiment results of attacks against logic locking on DNNs.");
    println!("(synthetic stand-in datasets; scaled victims — see DESIGN.md §2)\n");
    println!(
        "{:<22}{:>6} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "DNN (Dataset)",
        "Key",
        "Orig",
        "Base",
        "Mono Acc",
        "Mono Fid",
        "Mono t(s)",
        "Mono #Q",
        "Dec Acc",
        "Dec Fid",
        "Dec t(s)",
        "Dec #Q",
        "Dec Hit%"
    );
    for r in rows {
        let label = format!("{} ({})", r.arch.name(), r.arch.dataset_name());
        let (ma, mf, mt, mq) = match &r.monolithic {
            Some(m) => (
                format!("{:.1}%", 100.0 * m.accuracy),
                format!("{:.1}%", 100.0 * m.fidelity),
                format!("{:.2}", m.time_s),
                format!("{}", m.queries),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        println!(
            "{:<22}{:>6} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9}",
            label,
            r.key_bits,
            format!("{:.1}%", 100.0 * r.original),
            format!("{:.1}%", 100.0 * r.baseline),
            ma,
            mf,
            mt,
            mq,
            format!("{:.1}%", 100.0 * r.decryption.accuracy),
            format!("{:.1}%", 100.0 * r.decryption.fidelity),
            format!("{:.2}", r.decryption.time_s),
            format!("{}", r.decryption.queries),
            format!("{:.1}%", 100.0 * r.decryption.cache_hit_rate),
        );
    }
}

/// Prints the broker's serving metrics for each decryption run — the
/// observability companion to Table 1's `#Q` column (cache hits are free;
/// `#Q` counts underlying oracle rows only).
pub fn print_broker_stats(rows: &[Table1Row]) {
    println!("Query-broker accounting (relock-serve) per decryption run.\n");
    for r in rows {
        println!("{} {}-bit:", r.arch.name(), r.key_bits);
        print!("{}", r.stats);
        println!();
    }
}

/// Prints the paper-style Figure 3 (per-procedure time breakdown).
pub fn print_fig3(rows: &[Table1Row]) {
    use relock_attack::Procedure;
    println!("Figure 3: Breakdown of execution time among procedures.\n");
    println!(
        "{:<22}{:>6} {:>22} {:>18} {:>24} {:>18}",
        "DNN",
        "Key",
        "key_bit_inference",
        "learning_attack",
        "key_vector_validation",
        "error_correction"
    );
    for r in rows {
        println!(
            "{:<22}{:>6} {:>21.1}% {:>17.1}% {:>23.1}% {:>17.1}%",
            r.arch.name(),
            r.key_bits,
            100.0 * r.timing.fraction(Procedure::KeyBitInference),
            100.0 * r.timing.fraction(Procedure::LearningAttack),
            100.0 * r.timing.fraction(Procedure::KeyVectorValidation),
            100.0 * r.timing.fraction(Procedure::ErrorCorrection),
        );
    }
}

/// Writes Table 1 rows as CSV (one line per row, stable column order) —
/// the machine-readable artifact next to the pretty printer.
pub fn table1_csv(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "arch,dataset,key_bits,original_acc,baseline_acc,mono_acc,mono_fidelity,mono_time_s,mono_queries,dec_acc,dec_fidelity,dec_time_s,dec_queries,dec_cache_hit_rate\n",
    );
    for r in rows {
        let (ma, mf, mt, mq) = match &r.monolithic {
            Some(m) => (
                format!("{:.4}", m.accuracy),
                format!("{:.4}", m.fidelity),
                format!("{:.3}", m.time_s),
                m.queries.to_string(),
            ),
            None => (String::new(), String::new(), String::new(), String::new()),
        };
        writeln!(
            out,
            "{},{},{},{:.4},{:.4},{},{},{},{},{:.4},{:.4},{:.3},{},{:.4}",
            r.arch.name(),
            r.arch.dataset_name(),
            r.key_bits,
            r.original,
            r.baseline,
            ma,
            mf,
            mt,
            mq,
            r.decryption.accuracy,
            r.decryption.fidelity,
            r.decryption.time_s,
            r.decryption.queries,
            r.decryption.cache_hit_rate
        )
        .expect("string write");
    }
    out
}

/// Writes Figure 3 fractions as CSV.
pub fn fig3_csv(rows: &[Table1Row]) -> String {
    use relock_attack::Procedure;
    use std::fmt::Write as _;
    let mut out = String::from(
        "arch,key_bits,key_bit_inference,learning_attack,key_vector_validation,error_correction\n",
    );
    for r in rows {
        writeln!(
            out,
            "{},{},{:.4},{:.4},{:.4},{:.4}",
            r.arch.name(),
            r.key_bits,
            r.timing.fraction(Procedure::KeyBitInference),
            r.timing.fraction(Procedure::LearningAttack),
            r.timing.fraction(Procedure::KeyVectorValidation),
            r.timing.fraction(Procedure::ErrorCorrection),
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use relock_attack::TimingBreakdown;

    fn row() -> Table1Row {
        Table1Row {
            arch: Arch::Mlp,
            key_bits: 8,
            original: 0.95,
            baseline: 0.3,
            monolithic: Some(AttackRow {
                accuracy: 0.94,
                fidelity: 1.0,
                time_s: 1.5,
                queries: 200,
                cache_hit_rate: 0.0,
            }),
            decryption: AttackRow {
                accuracy: 0.95,
                fidelity: 1.0,
                time_s: 0.2,
                queries: 260,
                cache_hit_rate: 0.25,
            },
            timing: TimingBreakdown::new(),
            stats: QueryStatsSnapshot::default(),
        }
    }

    #[test]
    fn table1_csv_has_header_and_rows() {
        let csv = table1_csv(&[row()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("arch,dataset,key_bits"));
        assert!(lines[1].starts_with("MLP,MNIST-like,8,0.9500,0.3000"));
    }

    #[test]
    fn fig3_csv_fractions_are_finite() {
        let csv = fig3_csv(&[row()]);
        let data_line = csv.lines().nth(1).expect("data row");
        for field in data_line.split(',').skip(2) {
            let v: f64 = field.parse().expect("numeric fraction");
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn missing_monolithic_leaves_fields_empty() {
        let mut r = row();
        r.monolithic = None;
        let csv = table1_csv(&[r]);
        assert!(csv.lines().nth(1).expect("row").contains(",,,,"));
    }
}
