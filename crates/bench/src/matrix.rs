//! The lock-variant × attack evaluation matrix.
//!
//! Crosses the four locking schemes (`sign`, `scale`, and the trigger
//! schemes `sar`/`antisat`) with three attacks of decreasing oracle
//! access:
//!
//! * `decrypt` — the oracle-guided attack: the per-site decryption
//!   pipeline (Algorithm 2) on unit locks, and the sampling attack
//!   (random probes + greedy bit-flip climb) on trigger locks, whose
//!   point-corruption geometry defeats per-site critical-point probing;
//! * `wstats` — the oracle-less weight-statistics classifier (SAIL
//!   lineage): trained on attacker-built same-variant victims, zero
//!   oracle queries;
//! * `neuroevo` — the oracle-less neuroevolutionary key search
//!   (genetic climb on the white-box's softmax confidence), zero
//!   oracle queries.
//!
//! Every cell reports **key-recovery accuracy** (bit fidelity against
//! the victim's true key) as a `key_acc` entry named
//! `matrix_<variant>_<attack>`, plus the exact oracle-query count. All
//! three attacks are deterministic at fixed seeds, so the diff gate
//! compares both the fidelity and the query count bit-for-bit.
//!
//! The expected shape of the table is the point: the decryption attack
//! is exact on `sign`/`scale` and collapses to near-chance on the
//! trigger schemes (the probes almost surely miss the corrupted
//! subspace, so the agreement landscape is flat — DESIGN.md §3h), while
//! the oracle-less baselines hover at chance everywhere on these
//! victims (the comparator slots of trigger locks are weightless, and
//! unit-lock keys are not readable from weight statistics alone).

use crate::report::BenchEntry;
use crate::{attack_config, Arch, Scale};
use relock_attack::{
    neuroevolution_key_search, sampling_key_search, weight_stats_attack, Decryptor,
    EvolutionConfig, SamplingConfig,
};
use relock_data::{mnist_like, Dataset};
use relock_locking::{CountingOracle, Key, LockSpec, LockVariant, LockedModel};
use relock_nn::{build_mlp, MlpSpec, Trainer};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;

/// Key size of every matrix victim.
pub const MATRIX_BITS: usize = 8;

/// The four locking schemes of the matrix, in report order.
pub const MATRIX_VARIANTS: [LockVariant; 4] = [
    LockVariant::Sign,
    LockVariant::Scale(0.25),
    LockVariant::SarTrigger,
    LockVariant::AntiSatTrigger,
];

/// The short spelling used in entry names (`matrix_<this>_<attack>`).
pub fn variant_slug(v: LockVariant) -> &'static str {
    match v {
        LockVariant::Sign => "sign",
        LockVariant::Scale(_) => "scale",
        LockVariant::SarTrigger => "sar",
        LockVariant::AntiSatTrigger => "antisat",
    }
}

/// The attack names of the matrix, in report order.
pub const MATRIX_ATTACKS: [&str; 3] = ["decrypt", "wstats", "neuroevo"];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Locking scheme of the victim.
    pub variant: LockVariant,
    /// Attack name (one of [`MATRIX_ATTACKS`]).
    pub attack: &'static str,
    /// Key-recovery accuracy: bit fidelity against the true key.
    pub fidelity: f64,
    /// Exact underlying oracle queries (0 for the oracle-less attacks).
    pub queries: u64,
    /// Wall-clock milliseconds of the attack (victim prep excluded).
    pub ms: f64,
}

/// Builds and briefly trains one matrix victim: a small MLP so the full
/// 4×3 grid stays in bench territory. Training matters for the matrix's
/// honesty — it couples the weights to the key, which is exactly the
/// signal the weight-statistics classifier claims to read.
fn matrix_victim(variant: LockVariant, seed: u64) -> (LockedModel, Dataset) {
    let mut rng = Prng::seed_from_u64(seed);
    let data = mnist_like(&mut rng, 240, 80, 16);
    let spec = MlpSpec {
        input: 16,
        hidden: vec![12, 8],
        classes: 10,
    };
    let mut model = build_mlp(
        &spec,
        LockSpec::with_variant(MATRIX_BITS, variant),
        &mut rng,
    )
    .expect("matrix spec fits");
    let trainer = Trainer {
        lr: 5e-3,
        epochs: 6,
        batch_size: 16,
        ..Trainer::default()
    };
    trainer.fit(&mut model, &data, &mut rng);
    (model, data)
}

/// Runs the oracle-guided cell: the decryption pipeline on unit locks,
/// the sampling attack on trigger locks (mirroring the CLI and campaign
/// dispatch). Returns `(recovered_key, underlying_queries)`.
fn oracle_guided(victim: &LockedModel, variant: LockVariant, seed: u64) -> (Key, u64) {
    let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
    cfg.threads = 1;
    cfg.variant = variant;
    let oracle = CountingOracle::new(victim);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let mut rng = Prng::seed_from_u64(seed);
    if cfg.variant.is_trigger() {
        let report = sampling_key_search(
            victim.white_box(),
            &broker,
            &SamplingConfig::from_attack(&cfg),
            &mut rng,
        );
        (report.key, report.queries)
    } else {
        let report = Decryptor::new(cfg)
            .run_brokered(victim.white_box(), &broker, &mut rng)
            .expect("continue_on_failure keeps the run alive");
        (report.key, report.queries)
    }
}

/// Runs the whole 4×3 grid. Deterministic: victims, training models and
/// attack seeds are all fixed.
pub fn run_matrix() -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(MATRIX_VARIANTS.len() * MATRIX_ATTACKS.len());
    for (vi, &variant) in MATRIX_VARIANTS.iter().enumerate() {
        let seed = 9000 + 101 * vi as u64;
        let (victim, _data) = matrix_victim(variant, seed);
        let truth = victim.true_key();

        // Attacker-built training victims for the weight-statistics
        // classifier: same scheme, same architecture, keys known.
        let train_a = matrix_victim(variant, seed + 1).0;
        let train_b = matrix_victim(variant, seed + 2).0;
        let training = [
            (train_a.white_box(), train_a.true_key()),
            (train_b.white_box(), train_b.true_key()),
        ];

        for attack in MATRIX_ATTACKS {
            let t = std::time::Instant::now();
            let (key, queries) = match attack {
                "decrypt" => oracle_guided(&victim, variant, seed + 3),
                "wstats" => {
                    let cfg = attack_config(Arch::Mlp, Scale::Fast);
                    let r = weight_stats_attack(victim.white_box(), &training, &cfg.learning);
                    (r.key, r.queries)
                }
                "neuroevo" => {
                    let mut rng = Prng::seed_from_u64(seed + 4);
                    let r = neuroevolution_key_search(
                        victim.white_box(),
                        &EvolutionConfig::default(),
                        &mut rng,
                    );
                    (r.key, r.queries)
                }
                other => unreachable!("unknown matrix attack {other}"),
            };
            cells.push(MatrixCell {
                variant,
                attack,
                fidelity: key.fidelity(truth),
                queries,
                ms: t.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    cells
}

/// Converts the grid into `BENCH.json` entries: unit `key_acc` (higher
/// is better), the fidelity as the median, the exact query count, and
/// the full variant spelling in the schema-v5 `lock_variant` field.
pub fn matrix_entries() -> Vec<BenchEntry> {
    run_matrix()
        .into_iter()
        .map(|c| BenchEntry {
            name: format!("matrix_{}_{}", variant_slug(c.variant), c.attack),
            unit: "key_acc".to_string(),
            median: c.fidelity,
            spread: 0.0,
            repeats: 1,
            queries: Some(c.queries),
            cache_hit_rate: None,
            evictions: None,
            workers: None,
            backend: None,
            lock_variant: Some(c.variant.to_string()),
            adaptive: None,
        })
        .collect()
}

/// Prints the matrix as a table (the human-facing view the README
/// section is generated from).
pub fn print_matrix(cells: &[MatrixCell]) {
    println!("Lock-variant × attack matrix (key-recovery accuracy, {MATRIX_BITS}-bit keys).\n");
    println!(
        "{:<12}{:>12} {:>10} {:>10} {:>10}",
        "variant", "attack", "key_acc", "queries", "time(ms)"
    );
    for c in cells {
        println!(
            "{:<12}{:>12} {:>9.1}% {:>10} {:>10.1}",
            variant_slug(c.variant),
            c.attack,
            100.0 * c.fidelity,
            c.queries,
            c.ms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_and_names_cover_the_grid() {
        let mut seen = std::collections::HashSet::new();
        for v in MATRIX_VARIANTS {
            for a in MATRIX_ATTACKS {
                assert!(seen.insert(format!("matrix_{}_{a}", variant_slug(v))));
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn victims_are_reproducible() {
        let (a, _) = matrix_victim(LockVariant::SarTrigger, 9202);
        let (b, _) = matrix_victim(LockVariant::SarTrigger, 9202);
        assert_eq!(a.true_key(), b.true_key());
    }
}
