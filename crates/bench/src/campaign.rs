//! Multi-tenant campaign soak: N concurrent campaigns on one
//! [`CampaignHub`], all attacking the same victim through the
//! process-global memo cache, with a pause → "daemon restart" → resume
//! migration exercised mid-flight on one of them.
//!
//! The correctness bar is the same as the kill-and-resume soak: every
//! campaign's recovered key must be **bit-identical** to its one-shot
//! sequential reference run. Concurrency, fair-share scheduling, latency
//! chaos, cross-campaign cache hits, LRU eviction, and checkpoint
//! migration are all allowed to change *when* queries happen — never
//! *what* key comes out.
//!
//! Seeds come in pairs (43, 43, 44, 44, …) so adjacent campaigns replay
//! identical traffic: whichever of a pair runs second hits the broker
//! rows its twin already paid for, which is what the reported
//! cross-campaign cache-hit rate measures.

use crate::{prepare, Arch, Scale};
use relock_attack::{AttackConfig, Decryptor};
use relock_campaign::{CampaignConfig, CampaignHub, CampaignState};
use relock_locking::{CountingOracle, Key};
use relock_serve::ChaosConfig;
use relock_tensor::rng::Prng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Aggregate outcome of one soak run (all keys already verified).
#[derive(Debug, Clone)]
pub struct CampaignSoakOutcome {
    /// Campaigns submitted.
    pub campaigns: usize,
    /// Wall clock from first submit to last terminal state.
    pub elapsed_ms: f64,
    /// Broker-level row requests summed over every campaign on the hub.
    pub requested: u64,
    /// Rows served from the process-global memo cache.
    pub cache_hits: u64,
    /// `cache_hits / requested` (0 when nothing was requested).
    pub hit_rate: f64,
    /// Rows evicted by the LRU byte cap over the whole soak.
    pub evicted: u64,
    /// Rows resident in the shared cache at the end.
    pub cache_rows: usize,
    /// Bytes resident in the shared cache at the end.
    pub cache_bytes: usize,
    /// Whether the pause → second-hub → resume migration ran mid-flight
    /// (false only if campaign 0 finished before the pause landed).
    pub migrated: bool,
}

/// Runs `n` concurrent campaigns against an MLP-12 Fast victim on a hub
/// with `slots` scheduler slots and a `cache_cap`-byte shared cache,
/// verifying every recovered key against its sequential reference.
///
/// Campaign 0 runs under a permanent per-call latency floor so a pause
/// request can land mid-attack; it is then checkpointed, its frame is
/// migrated to a *second* hub (a simulated daemon restart with a cold
/// cache), and the resumed run must still produce the reference key.
///
/// Returns `Err` on any divergence — wrong key, failed campaign, or a
/// migration that did not complete.
pub fn run_campaign_soak(
    n: usize,
    slots: usize,
    cache_cap: Option<usize>,
) -> Result<CampaignSoakOutcome, String> {
    let n = n.max(2);
    let p = prepare(Arch::Mlp, 12, Scale::Fast, 42);
    let seeds: Vec<u64> = (0..n).map(|i| 43 + i as u64 / 2).collect();

    // One-shot sequential references, one per distinct seed, on a clean
    // uncached oracle — the hub must reproduce these bit-for-bit.
    let mut references: HashMap<u64, Key> = HashMap::new();
    let mut cfg = AttackConfig::fast();
    cfg.threads = 1;
    let decryptor = Decryptor::new(cfg);
    for &seed in &seeds {
        if references.contains_key(&seed) {
            continue;
        }
        let oracle = CountingOracle::new(&p.model);
        let report = decryptor
            .run(p.model.white_box(), &oracle, &mut Prng::seed_from_u64(seed))
            .map_err(|e| format!("reference run (seed {seed}) failed: {e}"))?;
        references.insert(seed, report.key);
    }

    let hub = CampaignHub::new(slots, cache_cap);
    let t0 = Instant::now();
    let ids: Vec<u64> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            // Campaign 0 gets a permanent latency floor (so the pause can
            // land); the rest get sparse spikes — realistic jitter that
            // shuffles completion order without touching results.
            let chaos = Some(ChaosConfig {
                seed: 100 + i as u64,
                latency_spike_rate: if i == 0 { 1.0 } else { 0.25 },
                latency_spike: Duration::from_millis(if i == 0 { 2 } else { 1 }),
                ..ChaosConfig::default()
            });
            hub.submit(
                p.model.clone(),
                CampaignConfig {
                    tenant: if i % 2 == 0 { "alice" } else { "bob" }.to_string(),
                    weight: if i % 2 == 0 { 2 } else { 1 },
                    seed,
                    chaos,
                    ..CampaignConfig::default()
                },
            )
            .expect("soak hub has no admission cap")
        })
        .collect();

    // Mid-soak: pause campaign 0, lift its RLCP frame, and resume it on a
    // fresh hub — a daemon restart with nothing but the checkpoint.
    std::thread::sleep(Duration::from_millis(40));
    let _ = hub.pause(ids[0]);
    let paused = hub
        .wait_paused(ids[0], Duration::from_secs(120))
        .map_err(|e| format!("campaign 0 never paused or finished: {e}"))?;
    let migrated = paused.state == CampaignState::Paused;
    let mut migration: Option<(Key, std::sync::Arc<CampaignHub>, u64)> = None;
    if migrated {
        let frame = hub
            .checkpoint_bytes(ids[0])
            .map_err(|e| e.to_string())?
            .ok_or("paused campaign 0 left no checkpoint frame")?;
        let hub2 = CampaignHub::new(1, cache_cap);
        let id2 = hub2
            .submit_checkpointed(
                p.model.clone(),
                CampaignConfig {
                    seed: seeds[0],
                    tenant: "alice".to_string(),
                    weight: 2,
                    ..CampaignConfig::default()
                },
                frame,
            )
            .expect("fresh hub has no admission cap");
        hub.cancel(ids[0]).map_err(|e| e.to_string())?;
        migration = Some((references[&seeds[0]].clone(), hub2, id2));
    }

    // Drain the hub: everything except a migrated-away campaign 0 must
    // complete with its reference key.
    let mut requested = 0u64;
    let mut cache_hits = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        let view = hub
            .wait_terminal(id, Duration::from_secs(300))
            .map_err(|e| format!("campaign {i} (id {id}): {e}"))?;
        requested += view.requested;
        cache_hits += view.cache_hits;
        if i == 0 && migrated {
            continue; // cancelled here, finishing on the second hub
        }
        if view.state != CampaignState::Completed {
            return Err(format!(
                "campaign {i} (id {id}) ended {}: {:?}",
                view.state.name(),
                view.error
            ));
        }
        if view.key.as_ref() != Some(&references[&seeds[i]]) {
            return Err(format!(
                "campaign {i} (id {id}, seed {}) diverged from its sequential reference key",
                seeds[i]
            ));
        }
    }
    if let Some((expected, hub2, id2)) = &migration {
        let done = hub2
            .wait_terminal(*id2, Duration::from_secs(300))
            .map_err(|e| format!("migrated campaign: {e}"))?;
        if done.state != CampaignState::Completed {
            return Err(format!(
                "migrated campaign ended {}: {:?}",
                done.state.name(),
                done.error
            ));
        }
        if done.key.as_ref() != Some(expected) {
            return Err("migrated campaign diverged from its sequential reference key".to_string());
        }
        hub2.shutdown();
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    let stats = hub.cache_stats();
    hub.shutdown();
    Ok(CampaignSoakOutcome {
        campaigns: n,
        elapsed_ms,
        requested,
        cache_hits,
        hit_rate: if requested > 0 {
            cache_hits as f64 / requested as f64
        } else {
            0.0
        },
        evicted: stats.evicted,
        cache_rows: stats.rows,
        cache_bytes: stats.bytes,
        migrated,
    })
}
