//! Regenerates the paper's Table 1 at the configured scale.
//!
//! Run with `cargo bench -p relock-bench --bench table1`; control the grid
//! with `RELOCK_SCALE` / `RELOCK_ARCHS` / `RELOCK_KEYS`.

use relock_bench::{print_broker_stats, print_table1, run_grid, table1_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = run_grid(scale, true);
    print_table1(&rows);
    println!();
    print_broker_stats(&rows);
    if let Ok(path) = std::env::var("RELOCK_CSV") {
        std::fs::write(&path, table1_csv(&rows)).expect("write csv");
        eprintln!("csv written to {path}");
    }
}
