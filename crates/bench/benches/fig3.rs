//! Regenerates the paper's Figure 3 (per-procedure time breakdown of the
//! decryption attack) at the configured scale.
//!
//! Run with `cargo bench -p relock-bench --bench fig3`.

use relock_bench::{fig3_csv, print_fig3, run_grid, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = run_grid(scale, false);
    print_fig3(&rows);
    if let Ok(path) = std::env::var("RELOCK_CSV") {
        std::fs::write(&path, fig3_csv(&rows)).expect("write csv");
        eprintln!("csv written to {path}");
    }
}
