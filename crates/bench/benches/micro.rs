//! Microbenchmarks of the attack's primitive operations, using an in-tree
//! timing harness (no external benchmark dependency).
//!
//! Gated behind the `microbench` feature so plain builds/tests never pay
//! for it:
//!
//! ```text
//! cargo bench -p relock-bench --bench micro --features microbench
//! ```

use relock_attack::{search_critical_point, AttackConfig};
use relock_locking::{LockSpec, LockedModel};
use relock_nn::{build_mlp, MlpSpec};
use relock_tensor::linalg::preimage;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::time::{Duration, Instant};

/// Times `f` adaptively: warms up for ~200ms, then runs batches until
/// ~1.5s of measurement, reporting mean/min per-iteration time.
fn bench(name: &str, mut f: impl FnMut()) {
    const WARMUP: Duration = Duration::from_millis(200);
    const MEASURE: Duration = Duration::from_millis(1500);

    // Warm-up while estimating the per-iteration cost.
    let mut iters: u64 = 0;
    let warm = Instant::now();
    while warm.elapsed() < WARMUP {
        f();
        iters += 1;
    }
    let per_iter = warm.elapsed().as_secs_f64() / iters as f64;
    let batch = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 10_000);

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    let mut best = f64::INFINITY;
    while total < MEASURE {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t.elapsed();
        best = best.min(dt.as_secs_f64() / batch as f64);
        total += dt;
        total_iters += batch;
    }
    let mean = total.as_secs_f64() / total_iters as f64;
    println!(
        "{name:<32} mean {:>12}  min {:>12}  ({total_iters} iters)",
        human(mean),
        human(best)
    );
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(500);
    build_mlp(
        &MlpSpec {
            input: 64,
            hidden: vec![48, 24],
            classes: 10,
        },
        LockSpec::evenly(16),
        &mut rng,
    )
    .expect("spec fits")
}

fn main() {
    let m = victim();
    let g = m.white_box();
    let keys = m.true_key().to_assignment();
    let cfg = AttackConfig::fast();

    let mut rng = Prng::seed_from_u64(501);
    let x32 = rng.normal_tensor([32, 64]);
    bench("forward_batch32_mlp", || {
        std::hint::black_box(g.logits_batch(&x32, &keys));
    });

    let site = g.lock_sites()[0];
    let mut cp_rng = Prng::seed_from_u64(502);
    bench("search_critical_point_mlp", || {
        std::hint::black_box(search_critical_point(
            g,
            &keys,
            site.pre_node,
            site.scalar_index(),
            &cfg,
            &mut cp_rng,
        ));
    });

    let mut jac_rng = Prng::seed_from_u64(503);
    let x1 = jac_rng.normal_tensor([64]);
    let acts = g.forward(&x1, &keys);
    let last_site = *g.lock_sites().last().expect("locked");
    bench("input_jacobian_layer2_mlp", || {
        std::hint::black_box(g.input_jacobian(&acts, last_site.pre_node, &keys));
    });

    let mut pre_rng = Prng::seed_from_u64(504);
    let a = pre_rng.normal_tensor([24, 64]);
    let e = Tensor::basis(24, 7);
    bench("preimage_24x64", || {
        std::hint::black_box(preimage(&a, &e, 1e-8));
    });

    let mut back_rng = Prng::seed_from_u64(505);
    let x16 = back_rng.normal_tensor([16, 64]);
    let acts16 = g.forward(&x16, &keys);
    let grad = Tensor::ones([16, 10]);
    bench("backward_batch16_mlp", || {
        std::hint::black_box(g.backward(&acts16, &grad, &keys));
    });
}
