//! Criterion microbenchmarks of the attack's primitive operations.

use criterion::{criterion_group, criterion_main, Criterion};
use relock_attack::{search_critical_point, AttackConfig};
use relock_locking::{LockSpec, LockedModel};
use relock_nn::{build_mlp, MlpSpec};
use relock_tensor::linalg::preimage;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::time::Duration;

fn victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(500);
    build_mlp(
        &MlpSpec {
            input: 64,
            hidden: vec![48, 24],
            classes: 10,
        },
        LockSpec::evenly(16),
        &mut rng,
    )
    .expect("spec fits")
}

fn bench_forward(c: &mut Criterion) {
    let m = victim();
    let g = m.white_box();
    let keys = m.true_key().to_assignment();
    let mut rng = Prng::seed_from_u64(501);
    let x = rng.normal_tensor([32, 64]);
    c.bench_function("forward_batch32_mlp", |b| {
        b.iter(|| std::hint::black_box(g.logits_batch(&x, &keys)))
    });
}

fn bench_critical_point(c: &mut Criterion) {
    let m = victim();
    let g = m.white_box();
    let keys = m.true_key().to_assignment();
    let cfg = AttackConfig::fast();
    let site = g.lock_sites()[0];
    let mut rng = Prng::seed_from_u64(502);
    c.bench_function("search_critical_point_mlp", |b| {
        b.iter(|| {
            std::hint::black_box(search_critical_point(
                g,
                &keys,
                site.pre_node,
                site.scalar_index(),
                &cfg,
                &mut rng,
            ))
        })
    });
}

fn bench_jacobian(c: &mut Criterion) {
    let m = victim();
    let g = m.white_box();
    let keys = m.true_key().to_assignment();
    let mut rng = Prng::seed_from_u64(503);
    let x = rng.normal_tensor([64]);
    let acts = g.forward(&x, &keys);
    // Second hidden layer's pre-activation node.
    let site = *g.lock_sites().last().expect("locked");
    c.bench_function("input_jacobian_layer2_mlp", |b| {
        b.iter(|| std::hint::black_box(g.input_jacobian(&acts, site.pre_node, &keys)))
    });
}

fn bench_preimage(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(504);
    let a = rng.normal_tensor([24, 64]);
    let e = Tensor::basis(24, 7);
    c.bench_function("preimage_24x64", |b| {
        b.iter(|| std::hint::black_box(preimage(&a, &e, 1e-8)))
    });
}

fn bench_backward(c: &mut Criterion) {
    let m = victim();
    let g = m.white_box();
    let keys = m.true_key().to_assignment();
    let mut rng = Prng::seed_from_u64(505);
    let x = rng.normal_tensor([16, 64]);
    let acts = g.forward(&x, &keys);
    let grad = Tensor::ones([16, 10]);
    c.bench_function("backward_batch16_mlp", |b| {
        b.iter(|| std::hint::black_box(g.backward(&acts, &grad, &keys)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_forward, bench_critical_point, bench_jacobian, bench_preimage, bench_backward
}
criterion_main!(benches);
