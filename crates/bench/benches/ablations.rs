//! Ablation benches for the design choices called out in DESIGN.md §6.
//!
//! Run with `cargo bench -p relock-bench --bench ablations`.
//!
//! - **A1** algebraic-first vs learning-only decryption (MLP);
//! - **A2** minimum-norm vs perturbed pre-images (algebraic success rate);
//! - **A3** validation probe budget vs wrong-key detection rate;
//! - **A4** confidence-ordered vs random-order error correction.

use relock_attack::{
    correction_candidates, key_bit_inference, key_vector_validation, Decryptor, ValidationTarget,
};
use relock_bench::{attack_config, prepare, Arch, Scale};
use relock_locking::CountingOracle;
use relock_tensor::rng::Prng;
use std::time::Instant;

fn a1_algebraic_vs_learning() {
    println!("A1: algebraic-first vs learning-only (MLP, 32-bit key)");
    let p = prepare(Arch::Mlp, 32, Scale::Fast, 42);
    for disable in [false, true] {
        let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
        cfg.disable_algebraic = disable;
        let oracle = CountingOracle::new(&p.model);
        let start = Instant::now();
        let report = Decryptor::new(cfg)
            .run(p.model.white_box(), &oracle, &mut Prng::seed_from_u64(7))
            .expect("attack completes");
        println!(
            "  algebraic {}: fidelity {:.3}  time {:>6.2}s  queries {:>6}",
            if disable { "OFF" } else { "ON " },
            report.fidelity(p.model.true_key()),
            start.elapsed().as_secs_f64(),
            report.queries
        );
    }
}

fn a2_preimage_perturbation() {
    println!("\nA2: minimum-norm vs perturbed pre-images (MLP, 32-bit key)");
    let p = prepare(Arch::Mlp, 32, Scale::Fast, 43);
    let g = p.model.white_box();
    for perturb in [0.0, 0.5, 2.0] {
        let mut cfg = attack_config(Arch::Mlp, Scale::Fast);
        cfg.preimage_perturbation = perturb;
        let oracle = CountingOracle::new(&p.model);
        let ka = p.model.true_key().to_assignment();
        let mut rng = Prng::seed_from_u64(11);
        let mut resolved = 0usize;
        let mut correct = 0usize;
        let sites = g.lock_sites();
        let start = Instant::now();
        for site in &sites {
            if let Some(bit) = key_bit_inference(g, &ka, site, &oracle, &cfg, &mut rng) {
                resolved += 1;
                if bit == p.model.true_key().bit(site.slot.index()) {
                    correct += 1;
                }
            }
        }
        println!(
            "  perturbation {perturb:>4.1}: resolved {resolved:>2}/{} (correct {correct}) in {:>5.2}s",
            sites.len(),
            start.elapsed().as_secs_f64()
        );
    }
}

fn a3_validation_budget() {
    println!("\nA3: validation probe budget vs wrong-key detection (LeNet, 16-bit key)");
    let p = prepare(Arch::Lenet, 16, Scale::Fast, 44);
    let g = p.model.white_box();
    let sites = g.lock_sites();
    let l1 = sites[0].keyed_node;
    let next: Vec<_> = sites.iter().filter(|s| s.keyed_node != l1).collect();
    let l2 = next[0].keyed_node;
    let layout = next[0].layout;
    let units: Vec<(usize, Option<relock_graph::KeySlot>)> = (0..layout.n_units)
        .map(|u| {
            (
                u,
                next.iter()
                    .find(|s| s.keyed_node == l2 && s.unit == u)
                    .map(|s| s.slot),
            )
        })
        .collect();
    let t = ValidationTarget {
        surface_node: l2,
        layout,
        units,
    };
    for budget in [2usize, 4, 8, 12] {
        let mut cfg = attack_config(Arch::Lenet, Scale::Fast);
        cfg.validation_neurons = budget;
        let oracle = CountingOracle::new(&p.model);
        let mut rng = Prng::seed_from_u64(13);
        let mut true_pass = 0usize;
        let mut wrong_fail = 0usize;
        let trials = 4usize;
        for trial in 0..trials {
            if key_vector_validation(
                g,
                &p.model.true_key().to_assignment(),
                Some(&t),
                &oracle,
                &cfg,
                &mut rng,
            ) {
                true_pass += 1;
            }
            let mut wrong = p.model.true_key().clone();
            wrong.flip_bit(sites[trial % 4].slot.index());
            if !key_vector_validation(g, &wrong.to_assignment(), Some(&t), &oracle, &cfg, &mut rng)
            {
                wrong_fail += 1;
            }
        }
        println!(
            "  budget {budget:>2}: true-key pass {true_pass}/{trials}, wrong-key detect {wrong_fail}/{trials}"
        );
    }
}

fn a4_correction_order() {
    println!("\nA4: confidence-ordered vs random-order error correction");
    // Simulated layer: 16 bits, 2 wrong; learning leaves the wrong bits at
    // low confidence. Count candidates tried before the true flip set.
    let mut rng = Prng::seed_from_u64(17);
    let trials = 200;
    let mut ordered_total = 0usize;
    let mut random_total = 0usize;
    for _ in 0..trials {
        let n = 16usize;
        let wrong: Vec<usize> = rng.choose_indices(n, 2);
        let mut conf = vec![0.0f64; n];
        for (i, c) in conf.iter_mut().enumerate() {
            *c = if wrong.contains(&i) {
                rng.uniform_in(0.05, 0.45) // learning is unsure about bad bits
            } else {
                rng.uniform_in(0.4, 1.0)
            };
        }
        let mut sorted_wrong = wrong.clone();
        sorted_wrong.sort_unstable();
        let position = |cands: &[Vec<usize>]| {
            cands
                .iter()
                .position(|c| {
                    let mut s = c.clone();
                    s.sort_unstable();
                    s == sorted_wrong
                })
                .map(|p| p + 1)
                .unwrap_or(cands.len() + 1)
        };
        let ordered = correction_candidates(&conf, 16, 2, 1000);
        ordered_total += position(&ordered);
        let uniform = vec![0.5f64; n];
        let random = correction_candidates(&uniform, 16, 2, 1000);
        random_total += position(&random);
    }
    println!(
        "  mean validations to repair 2 errors: confidence-ordered {:.1}, unordered {:.1}",
        ordered_total as f64 / trials as f64,
        random_total as f64 / trials as f64
    );
}

fn main() {
    a1_algebraic_vs_learning();
    a2_preimage_perturbation();
    a3_validation_budget();
    a4_correction_order();
}
