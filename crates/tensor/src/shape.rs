//! Tensor shapes: dimension lists with row-major stride math.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension extents.
///
/// Shapes are row-major ("C order"): the **last** dimension is contiguous in
/// memory. A zero-dimensional shape is a scalar with one element.
///
/// ```
/// use relock_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Shape of a scalar (zero dimensions, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.dims.len()];
        let mut acc = 1usize;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            idx.len(),
            self.dims.len()
        );
        let mut off = 0usize;
        let mut acc = 1usize;
        for i in (0..self.dims.len()).rev() {
            assert!(
                idx[i] < self.dims[i],
                "index {} out of bounds for dim {} (extent {})",
                idx[i],
                i,
                self.dims[i]
            );
            off += idx[i] * acc;
            acc *= self.dims[i];
        }
        off
    }

    /// Returns `true` if the shape describes a matrix (rank 2).
    pub fn is_matrix(&self) -> bool {
        self.dims.len() == 2
    }

    /// Returns `true` if the shape describes a vector (rank 1).
    pub fn is_vector(&self) -> bool {
        self.dims.len() == 1
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(off < 24);
                    assert!(seen.insert(off), "duplicate offset {off}");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(vec![2, 2]).offset(&[2, 0]);
    }
}
