//! Shared CPU compute substrate: scoped-thread row sharding and the
//! backend-dispatched gemm engine behind [`Tensor`](crate::Tensor)'s
//! matmuls.
//!
//! Everything here preserves **bit-identical results** (per precision) at
//! any worker count and on any backend: each output element accumulates
//! its `k` contributions in strictly ascending order into a single
//! accumulator, threads only ever split work across *disjoint output
//! rows*, and every backend replays the same per-element accumulation
//! order (see the [`crate::backend`] module docs). That discipline is what
//! lets the attack's checkpoint/determinism suites hold while the kernels
//! run tiled, parallel, and vectorized.
//!
//! Kernel selection and worker counts are **read at dispatch time**:
//! `RELOCK_BACKEND` / `RELOCK_THREADS` seed the process defaults once, and
//! [`crate::backend::set_backend_override`] / [`set_thread_override`] can
//! re-route any later dispatch, so tests and the CLI can vary both
//! per-case without the stale-env footgun the old `OnceLock`-only cache
//! had.
//!
//! The row-splitting policy (`split_rows`) is shared with the
//! `relock-serve` oracle worker pool, which historically carried its own
//! copy.

use crate::backend::{active_backend, GemmBackend};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Flop threshold (`m·k·n`) below which a gemm never spawns threads: tiny
/// products dominate the attack's line searches and a spawn costs more
/// than the multiply.
const PAR_FLOPS: usize = 200_000;

/// Minimum output rows per shard — splitting finer than this loses more to
/// coordination than it gains.
const MIN_ROWS_PER_SHARD: usize = 8;

/// 0 = no override; otherwise the pinned worker count.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-default worker count: `RELOCK_THREADS` if set, otherwise the
/// machine's available parallelism. Read once.
fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RELOCK_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Worker threads available to the kernels: the runtime override when set
/// (see [`set_thread_override`]), else the process default. Read at every
/// dispatch — never cached past a call.
pub fn max_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Pins (or with `None` releases) the kernel worker count for subsequent
/// dispatches in this process, overriding `RELOCK_THREADS`. `Some(0)` is
/// clamped to one worker.
pub fn set_thread_override(n: Option<usize>) {
    THREADS_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// Splits `rows` into at most `workers` contiguous, near-equal `(lo, hi)`
/// ranges of at least `min_rows_per_shard` rows each (the first
/// `rows % shards` ranges take one extra row). Returns a single full range
/// when the work does not warrant splitting; an empty `Vec` for zero rows.
pub fn split_rows(rows: usize, workers: usize, min_rows_per_shard: usize) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    let shards = workers.max(1).min(rows / min_rows_per_shard.max(1)).max(1);
    let base = rows / shards;
    let extra = rows % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for s in 0..shards {
        let hi = lo + base + usize::from(s < extra);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Runs `f(lo, block)` over disjoint row blocks of `out` (a `rows ×
/// row_len` buffer), using scoped threads when more than one shard is
/// warranted. `f` receives the first row index of its block and the
/// mutable block slice. With one shard this is a plain call — no spawn,
/// identical code path to the sequential kernel. Generic over the element
/// type so the f32 path shards exactly like the f64 one.
pub fn for_each_row_block<T, F>(out: &mut [T], rows: usize, row_len: usize, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    let ranges = split_rows(rows, workers, MIN_ROWS_PER_SHARD);
    if ranges.len() <= 1 {
        if !out.is_empty() || rows == 0 {
            f(0, out);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut consumed = 0usize;
        for &(lo, hi) in &ranges {
            let (block, tail) = rest.split_at_mut((hi - lo) * row_len);
            rest = tail;
            consumed += hi - lo;
            let fr = &f;
            scope.spawn(move || fr(lo, block));
        }
        debug_assert_eq!(consumed, rows);
    });
}

/// Whether a gemm of `m·k·n` flops should go parallel at all.
fn parallel_workers(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) >= PAR_FLOPS {
        max_threads()
    } else {
        1
    }
}

// ---------------------------------------------------------------------------
// f64 dispatch.
// ---------------------------------------------------------------------------

/// `out = A · B` for `A: m×k`, `B: k×n`, `out: m×n`, overwriting `out`.
///
/// Every `out[i][j]` accumulates `k = 0..K` in ascending order into a
/// single accumulator — bit-identical to the naive i-k-j loop at any
/// worker count, on any backend.
pub fn gemm_nn_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nn_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_nn_into`] with an explicit worker count (tests pin this).
pub fn gemm_nn_into_with(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    gemm_nn_into_backend(active_backend(), a, b, out, m, k, n, workers);
}

/// [`gemm_nn_into_with`] on an explicit backend — the equivalence suites
/// and the `hotpath` bench compare backends through this without touching
/// the process-wide selection.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_into_backend(
    be: &dyn GemmBackend,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm.nn", 1);
    relock_trace::counter(be.counters().nn, 1);
    if out.is_empty() {
        return;
    }
    for_each_row_block(out, m, n, workers, |lo, block| {
        be.nn_block(a, b, block, lo, k, n);
    });
}

/// `out = A · Bᵀ` for `A: m×k`, `B: n×k`, `out: m×n`, overwriting `out`.
///
/// Each element is one k-ascending dot product — the same left-fold the
/// naive kernel computes.
pub fn gemm_nt_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nt_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_nt_into`] with an explicit worker count (tests pin this).
pub fn gemm_nt_into_with(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    gemm_nt_into_backend(active_backend(), a, b, out, m, k, n, workers);
}

/// [`gemm_nt_into_with`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_into_backend(
    be: &dyn GemmBackend,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm.nt", 1);
    relock_trace::counter(be.counters().nt, 1);
    if out.is_empty() {
        return;
    }
    for_each_row_block(out, m, n, workers, |lo, block| {
        for (bi, out_row) in block.chunks_mut(n).enumerate() {
            let i = lo + bi;
            be.nt_row(&a[i * k..(i + 1) * k], b, out_row, k, n);
        }
    });
}

/// `out = Aᵀ · B` for `A: k×m`, `B: k×n`, `out: m×n`, overwriting `out`.
///
/// Accumulates `k` (the shared leading dimension) in ascending order per
/// element; threads split the *output* rows `i`, each walking the full `k`
/// range sequentially, so the per-element order never changes.
pub fn gemm_tn_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_tn_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_tn_into`] with an explicit worker count (tests pin this).
pub fn gemm_tn_into_with(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    gemm_tn_into_backend(active_backend(), a, b, out, m, k, n, workers);
}

/// [`gemm_tn_into_with`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_into_backend(
    be: &dyn GemmBackend,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm.tn", 1);
    relock_trace::counter(be.counters().tn, 1);
    if out.is_empty() {
        return;
    }
    for_each_row_block(out, m, n, workers, |lo, block| {
        let rows = block.len() / n.max(1);
        be.tn_block(a, b, block, lo, rows, m, k, n);
    });
}

// ---------------------------------------------------------------------------
// f32 dispatch — same sharding policy and determinism contract, single
// precision. The graph's opt-in f32 execution mode feeds through these.
// ---------------------------------------------------------------------------

/// f32 twin of [`gemm_nn_into`].
pub fn gemm_nn_f32_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nn_f32_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_nn_f32_into`] with an explicit worker count.
pub fn gemm_nn_f32_into_with(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    gemm_nn_f32_into_backend(active_backend(), a, b, out, m, k, n, workers);
}

/// [`gemm_nn_f32_into_with`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_f32_into_backend(
    be: &dyn GemmBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm32.nn", 1);
    relock_trace::counter(be.counters().nn32, 1);
    if out.is_empty() {
        return;
    }
    for_each_row_block(out, m, n, workers, |lo, block| {
        be.nn_block_f32(a, b, block, lo, k, n);
    });
}

/// f32 twin of [`gemm_nt_into`].
pub fn gemm_nt_f32_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nt_f32_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_nt_f32_into`] with an explicit worker count.
pub fn gemm_nt_f32_into_with(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    gemm_nt_f32_into_backend(active_backend(), a, b, out, m, k, n, workers);
}

/// [`gemm_nt_f32_into_with`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_f32_into_backend(
    be: &dyn GemmBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm32.nt", 1);
    relock_trace::counter(be.counters().nt32, 1);
    if out.is_empty() {
        return;
    }
    for_each_row_block(out, m, n, workers, |lo, block| {
        for (bi, out_row) in block.chunks_mut(n).enumerate() {
            let i = lo + bi;
            be.nt_row_f32(&a[i * k..(i + 1) * k], b, out_row, k, n);
        }
    });
}

/// f32 twin of [`gemm_tn_into`].
pub fn gemm_tn_f32_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_tn_f32_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_tn_f32_into`] with an explicit worker count.
pub fn gemm_tn_f32_into_with(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    gemm_tn_f32_into_backend(active_backend(), a, b, out, m, k, n, workers);
}

/// [`gemm_tn_f32_into_with`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_f32_into_backend(
    be: &dyn GemmBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm32.tn", 1);
    relock_trace::counter(be.counters().tn32, 1);
    if out.is_empty() {
        return;
    }
    for_each_row_block(out, m, n, workers, |lo, block| {
        let rows = block.len() / n.max(1);
        be.tn_block_f32(a, b, block, lo, rows, m, k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{backend_for, BackendKind};
    use crate::rng::Prng;

    /// Naive reference kernels — the accumulation-order ground truth.
    fn naive_nn(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn naive_nt(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k).map(|kk| a[i * k + kk] * b[j * k + kk]).sum();
            }
        }
        out
    }

    fn naive_tn(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for kk in 0..k {
            for i in 0..m {
                for j in 0..n {
                    out[i * n + j] += a[kk * m + i] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn bits32(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Every backend present on this machine, the scalar reference first —
    /// including the narrower SIMD backends `simd` does not resolve to here
    /// (e.g. plain AVX on an AVX-512 machine).
    fn all_backends() -> Vec<&'static dyn crate::backend::GemmBackend> {
        crate::backend::available_backends()
    }

    #[test]
    fn split_rows_covers_exactly_without_overlap() {
        for rows in [0usize, 1, 2, 7, 8, 9, 63, 64, 100, 1000] {
            for workers in [1usize, 2, 3, 4, 7, 16] {
                for min_rows in [1usize, 4, 8, 32] {
                    let ranges = split_rows(rows, workers, min_rows);
                    if rows == 0 {
                        assert!(ranges.is_empty());
                        continue;
                    }
                    assert!(ranges.len() <= workers.max(1));
                    let mut next = 0usize;
                    for &(lo, hi) in &ranges {
                        assert_eq!(lo, next, "gap at {lo}");
                        assert!(hi > lo, "empty shard");
                        next = hi;
                    }
                    assert_eq!(next, rows, "rows not covered");
                    if ranges.len() > 1 {
                        for &(lo, hi) in &ranges {
                            assert!(hi - lo >= min_rows.min(rows));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn split_rows_matches_documented_remainder_rule() {
        // 10 rows over 4 workers, min 1: 3,3,2,2.
        assert_eq!(split_rows(10, 4, 1), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        // Too few rows to split: one shard.
        assert_eq!(split_rows(5, 4, 8), vec![(0, 5)]);
    }

    #[test]
    fn gemm_kernels_bit_identical_to_naive_across_shapes_and_workers() {
        let mut rng = Prng::seed_from_u64(77);
        // Odd, degenerate, and block-straddling shapes.
        let shapes = [
            (1usize, 1usize, 1usize),
            (1, 5, 3),
            (3, 1, 7),
            (7, 7, 7),
            (13, 29, 17),
            (64, 64, 64),
            (65, 63, 129),
            (2, 200, 5),
        ];
        for &(m, k, n) in &shapes {
            let a_nn: Vec<f64> = (0..m * k).map(|_| rng.normal()).collect();
            let b_nn: Vec<f64> = (0..k * n).map(|_| rng.normal()).collect();
            let a_t: Vec<f64> = (0..k * m).map(|_| rng.normal()).collect();
            let b_t: Vec<f64> = (0..n * k).map(|_| rng.normal()).collect();
            let want_nn = naive_nn(&a_nn, &b_nn, m, k, n);
            let want_nt = naive_nt(&a_nn, &b_t, m, k, n);
            let want_tn = naive_tn(&a_t, &b_nn, m, k, n);
            for be in all_backends() {
                for workers in [1usize, 2, 3, 5, 16] {
                    let tag = be.name();
                    let mut out = vec![f64::NAN; m * n];
                    gemm_nn_into_backend(be, &a_nn, &b_nn, &mut out, m, k, n, workers);
                    assert_eq!(
                        bits(&out),
                        bits(&want_nn),
                        "nn {m}x{k}x{n} w={workers} {tag}"
                    );
                    let mut out = vec![f64::NAN; m * n];
                    gemm_nt_into_backend(be, &a_nn, &b_t, &mut out, m, k, n, workers);
                    assert_eq!(
                        bits(&out),
                        bits(&want_nt),
                        "nt {m}x{k}x{n} w={workers} {tag}"
                    );
                    let mut out = vec![f64::NAN; m * n];
                    gemm_tn_into_backend(be, &a_t, &b_nn, &mut out, m, k, n, workers);
                    assert_eq!(
                        bits(&out),
                        bits(&want_tn),
                        "tn {m}x{k}x{n} w={workers} {tag}"
                    );
                }
            }
        }
    }

    #[test]
    fn backend_sweep_simd_bit_identical_to_scalar_on_random_shapes() {
        // Property sweep: random shapes (including degenerate m=0 / k=0 /
        // n=1 and non-multiple-of-4/8 tails) must produce bit-identical
        // results on every backend, f64 and f32 alike. Shapes come from
        // the in-tree Prng so the sweep is reproducible.
        let mut rng = Prng::seed_from_u64(0xBACC);
        let scalar = backend_for(BackendKind::Scalar);
        let mut shapes: Vec<(usize, usize, usize)> = vec![
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (2, 3, 1),
            (1, 4, 1),
            (5, 6, 7),
            (9, 130, 3),
        ];
        for _ in 0..24 {
            let m = (rng.next_u64() % 24) as usize;
            let k = (rng.next_u64() % 48) as usize;
            let n = (rng.next_u64() % 96) as usize;
            shapes.push((m, k, n));
        }
        for &(m, k, n) in &shapes {
            let a_nn: Vec<f64> = (0..m * k).map(|_| rng.normal()).collect();
            let b_nn: Vec<f64> = (0..k * n).map(|_| rng.normal()).collect();
            let a_t: Vec<f64> = (0..k * m).map(|_| rng.normal()).collect();
            let b_t: Vec<f64> = (0..n * k).map(|_| rng.normal()).collect();
            let a32: Vec<f32> = a_nn.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b_nn.iter().map(|&x| x as f32).collect();
            let at32: Vec<f32> = a_t.iter().map(|&x| x as f32).collect();
            let bt32: Vec<f32> = b_t.iter().map(|&x| x as f32).collect();

            let mut want_nn = vec![f64::NAN; m * n];
            let mut want_nt = vec![f64::NAN; m * n];
            let mut want_tn = vec![f64::NAN; m * n];
            gemm_nn_into_backend(scalar, &a_nn, &b_nn, &mut want_nn, m, k, n, 1);
            gemm_nt_into_backend(scalar, &a_nn, &b_t, &mut want_nt, m, k, n, 1);
            gemm_tn_into_backend(scalar, &a_t, &b_nn, &mut want_tn, m, k, n, 1);
            let mut want_nn32 = vec![f32::NAN; m * n];
            let mut want_nt32 = vec![f32::NAN; m * n];
            let mut want_tn32 = vec![f32::NAN; m * n];
            gemm_nn_f32_into_backend(scalar, &a32, &b32, &mut want_nn32, m, k, n, 1);
            gemm_nt_f32_into_backend(scalar, &a32, &bt32, &mut want_nt32, m, k, n, 1);
            gemm_tn_f32_into_backend(scalar, &at32, &b32, &mut want_tn32, m, k, n, 1);

            for be in all_backends() {
                for workers in [1usize, 3] {
                    let tag = be.name();
                    let mut out = vec![f64::NAN; m * n];
                    gemm_nn_into_backend(be, &a_nn, &b_nn, &mut out, m, k, n, workers);
                    assert_eq!(bits(&out), bits(&want_nn), "nn {m}x{k}x{n} {tag}");
                    let mut out = vec![f64::NAN; m * n];
                    gemm_nt_into_backend(be, &a_nn, &b_t, &mut out, m, k, n, workers);
                    assert_eq!(bits(&out), bits(&want_nt), "nt {m}x{k}x{n} {tag}");
                    let mut out = vec![f64::NAN; m * n];
                    gemm_tn_into_backend(be, &a_t, &b_nn, &mut out, m, k, n, workers);
                    assert_eq!(bits(&out), bits(&want_tn), "tn {m}x{k}x{n} {tag}");
                    let mut out = vec![f32::NAN; m * n];
                    gemm_nn_f32_into_backend(be, &a32, &b32, &mut out, m, k, n, workers);
                    assert_eq!(bits32(&out), bits32(&want_nn32), "nn32 {m}x{k}x{n} {tag}");
                    let mut out = vec![f32::NAN; m * n];
                    gemm_nt_f32_into_backend(be, &a32, &bt32, &mut out, m, k, n, workers);
                    assert_eq!(bits32(&out), bits32(&want_nt32), "nt32 {m}x{k}x{n} {tag}");
                    let mut out = vec![f32::NAN; m * n];
                    gemm_tn_f32_into_backend(be, &at32, &b32, &mut out, m, k, n, workers);
                    assert_eq!(bits32(&out), bits32(&want_tn32), "tn32 {m}x{k}x{n} {tag}");
                }
            }
        }
    }

    #[test]
    fn gemm_overwrites_stale_output_contents() {
        // The planner reuses buffers: kernels must fully overwrite, never
        // blend with what a previous pass left behind.
        for be in all_backends() {
            let a = [1.0, 2.0, 3.0, 4.0];
            let b = [5.0, 6.0, 7.0, 8.0];
            let mut out = [999.0f64; 4];
            gemm_nn_into_backend(be, &a, &b, &mut out, 2, 2, 2, 1);
            assert_eq!(out, [19.0, 22.0, 43.0, 50.0], "{}", be.name());
            let mut out = [999.0f64; 4];
            gemm_tn_into_backend(be, &a, &b, &mut out, 2, 2, 2, 1);
            assert_eq!(out, [26.0, 30.0, 38.0, 44.0], "{}", be.name());
        }
    }

    #[test]
    fn zero_rows_are_tolerated() {
        let mut out: Vec<f64> = Vec::new();
        gemm_nn_into_with(&[], &[1.0, 2.0], &mut out, 0, 1, 2, 4);
        assert!(out.is_empty());
        let mut out32: Vec<f32> = Vec::new();
        gemm_nn_f32_into_with(&[], &[1.0, 2.0], &mut out32, 0, 1, 2, 4);
        assert!(out32.is_empty());
    }

    #[test]
    fn thread_override_is_read_at_dispatch_time() {
        set_thread_override(Some(2));
        assert_eq!(max_threads(), 2);
        set_thread_override(Some(5));
        assert_eq!(max_threads(), 5);
        set_thread_override(Some(0));
        assert_eq!(max_threads(), 1, "Some(0) clamps to one worker");
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }
}
