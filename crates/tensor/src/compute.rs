//! Shared CPU compute substrate: scoped-thread row sharding and the
//! blocked gemm kernels behind [`Tensor`](crate::Tensor)'s matmuls.
//!
//! Everything here preserves **bit-identical f64 results** at any worker
//! count: each output element accumulates its `k` contributions in strictly
//! ascending order into a single accumulator, threads only ever split work
//! across *disjoint output rows*, and the per-element accumulation order is
//! the same as the naive reference kernels. That discipline is what lets
//! the attack's checkpoint/determinism suites hold while the kernels run
//! tiled and parallel.
//!
//! The row-splitting policy (`split_rows`) is shared with the
//! `relock-serve` oracle worker pool, which historically carried its own
//! copy.

use std::sync::OnceLock;

/// Column-block width of the blocked kernels. Inner `j` blocks keep the
/// active `B`/`out` row segments resident in L1 across the `k` loop without
/// changing any element's accumulation order (only `k` order matters).
const J_BLOCK: usize = 64;

/// Flop threshold (`m·k·n`) below which a gemm never spawns threads: tiny
/// products dominate the attack's line searches and a spawn costs more
/// than the multiply.
const PAR_FLOPS: usize = 200_000;

/// Minimum output rows per shard — splitting finer than this loses more to
/// coordination than it gains.
const MIN_ROWS_PER_SHARD: usize = 8;

/// Worker threads available to the kernels: `RELOCK_THREADS` if set,
/// otherwise the machine's available parallelism. Cached after first read.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RELOCK_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Splits `rows` into at most `workers` contiguous, near-equal `(lo, hi)`
/// ranges of at least `min_rows_per_shard` rows each (the first
/// `rows % shards` ranges take one extra row). Returns a single full range
/// when the work does not warrant splitting; an empty `Vec` for zero rows.
pub fn split_rows(rows: usize, workers: usize, min_rows_per_shard: usize) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    let shards = workers.max(1).min(rows / min_rows_per_shard.max(1)).max(1);
    let base = rows / shards;
    let extra = rows % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for s in 0..shards {
        let hi = lo + base + usize::from(s < extra);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Runs `f(lo, block)` over disjoint row blocks of `out` (a `rows ×
/// row_len` buffer), using scoped threads when more than one shard is
/// warranted. `f` receives the first row index of its block and the
/// mutable block slice. With one shard this is a plain call — no spawn,
/// identical code path to the sequential kernel.
pub fn for_each_row_block<F>(out: &mut [f64], rows: usize, row_len: usize, workers: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    let ranges = split_rows(rows, workers, MIN_ROWS_PER_SHARD);
    if ranges.len() <= 1 {
        if !out.is_empty() || rows == 0 {
            f(0, out);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut consumed = 0usize;
        for &(lo, hi) in &ranges {
            let (block, tail) = rest.split_at_mut((hi - lo) * row_len);
            rest = tail;
            consumed += hi - lo;
            let fr = &f;
            scope.spawn(move || fr(lo, block));
        }
        debug_assert_eq!(consumed, rows);
    });
}

/// Whether a gemm of `m·k·n` flops should go parallel at all.
fn parallel_workers(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) >= PAR_FLOPS {
        max_threads()
    } else {
        1
    }
}

/// `out = A · B` for `A: m×k`, `B: k×n`, `out: m×n`, overwriting `out`.
///
/// Blocked i-k-j kernel: every `out[i][j]` accumulates `k = 0..K` in
/// ascending order into a single accumulator — bit-identical to the naive
/// i-k-j loop at any worker count.
pub fn gemm_nn_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nn_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_nn_into`] with an explicit worker count (tests pin this).
pub fn gemm_nn_into_with(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm.nn", 1);
    for_each_row_block(out, m, n, workers, |lo, block| {
        for (bi, out_row) in block.chunks_mut(n).enumerate() {
            let i = lo + bi;
            let a_row = &a[i * k..(i + 1) * k];
            out_row.fill(0.0);
            let mut jb = 0;
            while jb < n {
                let je = (jb + J_BLOCK).min(n);
                // Four `k` steps per sweep of the output segment: each
                // element still accumulates its contributions in ascending
                // `k` order (the four adds chain in-register), so results
                // are bit-identical to the one-step loop — but the segment
                // is loaded and stored once per four steps instead of once
                // per step.
                let mut kk = 0usize;
                while kk + 4 <= k {
                    let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                    let b0 = &b[kk * n + jb..kk * n + je];
                    let b1 = &b[(kk + 1) * n + jb..(kk + 1) * n + je];
                    let b2 = &b[(kk + 2) * n + jb..(kk + 2) * n + je];
                    let b3 = &b[(kk + 3) * n + jb..(kk + 3) * n + je];
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row[jb..je].iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                    }
                    kk += 4;
                }
                for (kk, &av) in a_row.iter().enumerate().skip(kk) {
                    let b_seg = &b[kk * n + jb..kk * n + je];
                    for (o, &bv) in out_row[jb..je].iter_mut().zip(b_seg) {
                        *o += av * bv;
                    }
                }
                jb = je;
            }
        }
    });
}

/// `out = A · Bᵀ` for `A: m×k`, `B: n×k`, `out: m×n`, overwriting `out`.
///
/// Each element is one k-ascending dot product — the same left-fold the
/// naive kernel computes.
pub fn gemm_nt_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nt_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_nt_into`] with an explicit worker count (tests pin this).
pub fn gemm_nt_into_with(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm.nt", 1);
    for_each_row_block(out, m, n, workers, |lo, block| {
        for (bi, out_row) in block.chunks_mut(n).enumerate() {
            let i = lo + bi;
            let a_row = &a[i * k..(i + 1) * k];
            // Four output columns at a time: each column keeps its own
            // accumulator walking `k` in ascending order (bit-identical to
            // the one-column loop), but the four independent chains hide
            // the f64 add latency the strict summation order would
            // otherwise serialize on.
            let mut j = 0usize;
            while j + 8 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let b4 = &b[(j + 4) * k..(j + 5) * k];
                let b5 = &b[(j + 5) * k..(j + 6) * k];
                let b6 = &b[(j + 6) * k..(j + 7) * k];
                let b7 = &b[(j + 7) * k..(j + 8) * k];
                let mut s = [0.0f64; 8];
                for (kk, &av) in a_row.iter().enumerate() {
                    s[0] += av * b0[kk];
                    s[1] += av * b1[kk];
                    s[2] += av * b2[kk];
                    s[3] += av * b3[kk];
                    s[4] += av * b4[kk];
                    s[5] += av * b5[kk];
                    s[6] += av * b6[kk];
                    s[7] += av * b7[kk];
                }
                out_row[j..j + 8].copy_from_slice(&s);
                j += 8;
            }
            while j + 4 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for (&av, ((&v0, &v1), (&v2, &v3))) in
                    a_row.iter().zip(b0.iter().zip(b1).zip(b2.iter().zip(b3)))
                {
                    s0 += av * v0;
                    s1 += av * v1;
                    s2 += av * v2;
                    s3 += av * v3;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for (o, b_row) in out_row[j..].iter_mut().zip(b[j * k..].chunks_exact(k)) {
                *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
            }
        }
    });
}

/// `out = Aᵀ · B` for `A: k×m`, `B: k×n`, `out: m×n`, overwriting `out`.
///
/// Accumulates `k` (the shared leading dimension) in ascending order per
/// element; threads split the *output* rows `i`, each walking the full `k`
/// range sequentially, so the per-element order never changes.
pub fn gemm_tn_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_tn_into_with(a, b, out, m, k, n, parallel_workers(m, k, n));
}

/// [`gemm_tn_into`] with an explicit worker count (tests pin this).
pub fn gemm_tn_into_with(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    relock_trace::counter("gemm.tn", 1);
    for_each_row_block(out, m, n, workers, |lo, block| {
        let rows = block.len() / n.max(1);
        block.fill(0.0);
        for kk in 0..k {
            let a_seg = &a[kk * m + lo..kk * m + lo + rows];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (bi, &av) in a_seg.iter().enumerate() {
                let out_row = &mut block[bi * n..(bi + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    /// Naive reference kernels — the accumulation-order ground truth.
    fn naive_nn(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn naive_nt(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k).map(|kk| a[i * k + kk] * b[j * k + kk]).sum();
            }
        }
        out
    }

    fn naive_tn(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for kk in 0..k {
            for i in 0..m {
                for j in 0..n {
                    out[i * n + j] += a[kk * m + i] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn split_rows_covers_exactly_without_overlap() {
        for rows in [0usize, 1, 2, 7, 8, 9, 63, 64, 100, 1000] {
            for workers in [1usize, 2, 3, 4, 7, 16] {
                for min_rows in [1usize, 4, 8, 32] {
                    let ranges = split_rows(rows, workers, min_rows);
                    if rows == 0 {
                        assert!(ranges.is_empty());
                        continue;
                    }
                    assert!(ranges.len() <= workers.max(1));
                    let mut next = 0usize;
                    for &(lo, hi) in &ranges {
                        assert_eq!(lo, next, "gap at {lo}");
                        assert!(hi > lo, "empty shard");
                        next = hi;
                    }
                    assert_eq!(next, rows, "rows not covered");
                    if ranges.len() > 1 {
                        for &(lo, hi) in &ranges {
                            assert!(hi - lo >= min_rows.min(rows));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn split_rows_matches_documented_remainder_rule() {
        // 10 rows over 4 workers, min 1: 3,3,2,2.
        assert_eq!(split_rows(10, 4, 1), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        // Too few rows to split: one shard.
        assert_eq!(split_rows(5, 4, 8), vec![(0, 5)]);
    }

    #[test]
    fn gemm_kernels_bit_identical_to_naive_across_shapes_and_workers() {
        let mut rng = Prng::seed_from_u64(77);
        // Odd, degenerate, and block-straddling shapes.
        let shapes = [
            (1usize, 1usize, 1usize),
            (1, 5, 3),
            (3, 1, 7),
            (7, 7, 7),
            (13, 29, 17),
            (64, 64, 64),
            (65, 63, 129),
            (2, 200, 5),
        ];
        for &(m, k, n) in &shapes {
            let a_nn: Vec<f64> = (0..m * k).map(|_| rng.normal()).collect();
            let b_nn: Vec<f64> = (0..k * n).map(|_| rng.normal()).collect();
            let a_t: Vec<f64> = (0..k * m).map(|_| rng.normal()).collect();
            let b_t: Vec<f64> = (0..n * k).map(|_| rng.normal()).collect();
            let want_nn = naive_nn(&a_nn, &b_nn, m, k, n);
            let want_nt = naive_nt(&a_nn, &b_t, m, k, n);
            let want_tn = naive_tn(&a_t, &b_nn, m, k, n);
            for workers in [1usize, 2, 3, 5, 16] {
                let mut out = vec![f64::NAN; m * n];
                gemm_nn_into_with(&a_nn, &b_nn, &mut out, m, k, n, workers);
                assert_eq!(bits(&out), bits(&want_nn), "nn {m}x{k}x{n} w={workers}");
                let mut out = vec![f64::NAN; m * n];
                gemm_nt_into_with(&a_nn, &b_t, &mut out, m, k, n, workers);
                assert_eq!(bits(&out), bits(&want_nt), "nt {m}x{k}x{n} w={workers}");
                let mut out = vec![f64::NAN; m * n];
                gemm_tn_into_with(&a_t, &b_nn, &mut out, m, k, n, workers);
                assert_eq!(bits(&out), bits(&want_tn), "tn {m}x{k}x{n} w={workers}");
            }
        }
    }

    #[test]
    fn gemm_overwrites_stale_output_contents() {
        // The planner reuses buffers: kernels must fully overwrite, never
        // blend with what a previous pass left behind.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [999.0f64; 4];
        gemm_nn_into_with(&a, &b, &mut out, 2, 2, 2, 1);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
        let mut out = [999.0f64; 4];
        gemm_tn_into_with(&a, &b, &mut out, 2, 2, 2, 1);
        assert_eq!(out, [26.0, 30.0, 38.0, 44.0]);
    }

    #[test]
    fn zero_rows_are_tolerated() {
        let mut out: Vec<f64> = Vec::new();
        gemm_nn_into_with(&[], &[1.0, 2.0], &mut out, 0, 1, 2, 4);
        assert!(out.is_empty());
    }
}
