//! Householder-QR factorization and least-squares solvers.
//!
//! The attack's algebraic step (paper §3.3, Algorithm 1 line 7) needs the
//! *pre-image* `v` of a standard basis vector under the product weight matrix
//! `Â` of a linear region: `Â v = e`. `Â` is `d_i × P`, usually *wide*
//! (contractive network), sometimes rank-deficient (inactive neurons zero out
//! rows of the mask), and occasionally has **no** solution at all (expansive
//! network) — in which case the attack must report ⊥ and fall back to the
//! learning-based procedure. [`preimage`] implements exactly that contract.

use crate::Tensor;

/// Relative pivot threshold below which a diagonal entry of `R` is treated
/// as zero (rank deficiency).
const PIVOT_TOL: f64 = 1e-12;

/// A compact Householder QR factorization `A = Q R`.
///
/// The factor is stored LAPACK-style: `R` on and above the diagonal of
/// `packed`, and the essential parts of the Householder vectors below it.
///
/// ```
/// use relock_tensor::{Tensor, linalg::QrFactors};
/// let a = Tensor::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]);
/// let qr = QrFactors::compute(&a);
/// let b = Tensor::from_slice(&[2.0, 6.0, 0.0]);
/// let x = qr.solve_least_squares(&b);
/// assert!((x.as_slice()[0] - 1.0).abs() < 1e-12);
/// assert!((x.as_slice()[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QrFactors {
    m: usize,
    n: usize,
    packed: Tensor,
    beta: Vec<f64>,
}

impl QrFactors {
    /// Factors `a` (any `m × n`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a matrix.
    pub fn compute(a: &Tensor) -> Self {
        assert!(a.shape().is_matrix(), "QR requires a matrix");
        let (m, n) = (a.dims()[0], a.dims()[1]);
        let mut packed = a.clone();
        let p = m.min(n);
        let mut beta = vec![0.0f64; p];

        for k in 0..p {
            // Householder vector for column k, rows k..m.
            let mut sigma = 0.0;
            for i in (k + 1)..m {
                let x = packed.get2(i, k);
                sigma += x * x;
            }
            let x0 = packed.get2(k, k);
            let (v0, b);
            if sigma == 0.0 {
                // Column already triangular; reflection unnecessary (or a
                // pure sign flip, which we skip — solvers only use |R|
                // through the residual check).
                v0 = 1.0;
                b = 0.0;
            } else {
                let mu = (x0 * x0 + sigma).sqrt();
                let w0 = if x0 <= 0.0 {
                    x0 - mu
                } else {
                    -sigma / (x0 + mu)
                };
                b = 2.0 * w0 * w0 / (sigma + w0 * w0);
                v0 = w0;
            }
            beta[k] = b;
            if b != 0.0 {
                // Normalize so the stored vector has implicit leading 1.
                for i in (k + 1)..m {
                    let x = packed.get2(i, k);
                    packed.set2(i, k, x / v0);
                }
                // New diagonal entry of R: with v₀ = x₀ − μ (computed in the
                // cancellation-free form above), H x = +μ·e₁ in both branches.
                let mu = (x0 * x0 + sigma).sqrt();
                packed.set2(k, k, mu);
                // Apply H = I - b v vᵀ to the remaining columns.
                for j in (k + 1)..n {
                    let mut dot = packed.get2(k, j);
                    for i in (k + 1)..m {
                        dot += packed.get2(i, k) * packed.get2(i, j);
                    }
                    let s = b * dot;
                    let new_kj = packed.get2(k, j) - s;
                    packed.set2(k, j, new_kj);
                    for i in (k + 1)..m {
                        let upd = packed.get2(i, j) - s * packed.get2(i, k);
                        packed.set2(i, j, upd);
                    }
                }
            }
        }

        QrFactors { m, n, packed, beta }
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// The diagonal of `R` (useful for rank estimation).
    pub fn r_diag(&self) -> Vec<f64> {
        (0..self.m.min(self.n))
            .map(|k| self.packed.get2(k, k))
            .collect()
    }

    /// Numerical rank: count of `|R_kk|` above `PIVOT_TOL` relative to the
    /// largest diagonal magnitude.
    pub fn rank(&self) -> usize {
        let diag = self.r_diag();
        let scale = diag.iter().fold(0.0f64, |m, &d| m.max(d.abs()));
        if scale == 0.0 {
            return 0;
        }
        diag.iter().filter(|d| d.abs() > PIVOT_TOL * scale).count()
    }

    /// Applies `Qᵀ` to a length-`m` vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        for k in 0..self.beta.len() {
            let bk = self.beta[k];
            if bk == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in (k + 1)..self.m {
                dot += self.packed.get2(i, k) * b[i];
            }
            let s = bk * dot;
            b[k] -= s;
            for i in (k + 1)..self.m {
                b[i] -= s * self.packed.get2(i, k);
            }
        }
    }

    /// Applies `Q` to a length-`m` vector in place.
    fn apply_q(&self, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        for k in (0..self.beta.len()).rev() {
            let bk = self.beta[k];
            if bk == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in (k + 1)..self.m {
                dot += self.packed.get2(i, k) * b[i];
            }
            let s = bk * dot;
            b[k] -= s;
            for i in (k + 1)..self.m {
                b[i] -= s * self.packed.get2(i, k);
            }
        }
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` for the factored
    /// `A` with `m ≥ n`. Rank-deficient diagonals contribute zero components
    /// (a *basic* solution).
    ///
    /// # Panics
    ///
    /// Panics if `b.numel() != m` or the matrix is wide (`m < n`).
    pub fn solve_least_squares(&self, b: &Tensor) -> Tensor {
        assert!(self.m >= self.n, "least squares needs a tall matrix");
        assert_eq!(b.numel(), self.m, "rhs length mismatch");
        let mut c = b.as_slice().to_vec();
        self.apply_qt(&mut c);
        // Back-substitute R x = c[0..n].
        let diag = self.r_diag();
        let scale = diag.iter().fold(0.0f64, |acc, &d| acc.max(d.abs()));
        let mut x = vec![0.0f64; self.n];
        for i in (0..self.n).rev() {
            let mut s = c[i];
            for j in (i + 1)..self.n {
                s -= self.packed.get2(i, j) * x[j];
            }
            let d = self.packed.get2(i, i);
            x[i] = if scale == 0.0 || d.abs() <= PIVOT_TOL * scale {
                0.0
            } else {
                s / d
            };
        }
        Tensor::from_slice(&x)
    }

    /// Solves `Aᵀ_factored` systems for the minimum-norm problem: given the
    /// factorization of `Aᵀ` (so the original `A` is wide), returns the
    /// minimum-norm `v` with `A v = b` *if it exists*, without verifying
    /// consistency (the caller checks the residual).
    ///
    /// Here the factored matrix is `Aᵀ` of shape `n × m` with `n ≥ m`;
    /// `b` has length `m`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_min_norm_from_transpose(&self, b: &Tensor) -> Tensor {
        // Factored: Aᵀ (n_rows = self.m entries = original n; cols = original m).
        let orig_m = self.n;
        assert_eq!(b.numel(), orig_m, "rhs length mismatch");
        // A = Rᵀ Qᵀ, so A v = b  ⇔  Rᵀ y = b with y = Qᵀ v; min-norm v = Q [y; 0].
        let diag = self.r_diag();
        let scale = diag.iter().fold(0.0f64, |acc, &d| acc.max(d.abs()));
        let mut y = vec![0.0f64; self.m];
        // Forward-substitute Rᵀ y = b (Rᵀ is lower triangular, orig_m × orig_m).
        for i in 0..orig_m {
            let mut s = b.as_slice()[i];
            for j in 0..i {
                s -= self.packed.get2(j, i) * y[j];
            }
            let d = self.packed.get2(i, i);
            y[i] = if scale == 0.0 || d.abs() <= PIVOT_TOL * scale {
                0.0
            } else {
                s / d
            };
        }
        self.apply_q(&mut y);
        Tensor::from_slice(&y)
    }
}

/// The outcome of a successful pre-image computation.
#[derive(Debug, Clone)]
pub struct Preimage {
    /// A solution of `A v = b` (minimum-norm when `A` is wide).
    pub v: Tensor,
    /// The achieved residual `‖A v − b‖₂`.
    pub residual: f64,
}

/// Computes a pre-image `v` of `b` under `a`: a vector with `a · v = b`.
///
/// For wide `a` (the contractive case of the paper) the returned solution is
/// the minimum-norm one, which keeps the ε-perturbation `x° ± ε·v` of
/// Algorithm 1 as small as possible in the input space. For tall `a` the
/// least-squares solution is returned. In both cases the candidate is
/// *verified* by multiplication; if the residual exceeds
/// `tol · max(1, ‖b‖)` — i.e. `b` is not (numerically) in the range of `a`,
/// the expansive case — `None` is returned, which Algorithm 1 maps to ⊥.
///
/// ```
/// use relock_tensor::{Tensor, linalg::preimage};
/// let a = Tensor::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
/// let e = Tensor::from_slice(&[1.0, 0.0]);
/// let p = preimage(&a, &e, 1e-9).expect("wide full-rank matrix is onto");
/// assert!(p.residual < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `a` is not a matrix or `b.numel() != a.nrows()`.
pub fn preimage(a: &Tensor, b: &Tensor, tol: f64) -> Option<Preimage> {
    assert!(a.shape().is_matrix(), "preimage requires a matrix");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    assert_eq!(b.numel(), m, "rhs length mismatch");

    let v = if m <= n {
        let qr = QrFactors::compute(&a.transpose());
        qr.solve_min_norm_from_transpose(b)
    } else {
        let qr = QrFactors::compute(a);
        qr.solve_least_squares(b)
    };
    let achieved = a.matvec(&v);
    let residual = achieved.max_abs_diff(b);
    if residual <= tol * b.norm_inf().max(1.0) {
        Some(Preimage { v, residual })
    } else {
        None
    }
}

/// Solves the square linear system `a x = b` via QR.
///
/// Returns `None` if `a` is numerically singular (verified by residual).
///
/// # Panics
///
/// Panics if `a` is not square or `b.numel() != a.nrows()`.
pub fn solve(a: &Tensor, b: &Tensor, tol: f64) -> Option<Tensor> {
    assert!(a.shape().is_matrix(), "solve requires a matrix");
    assert_eq!(a.dims()[0], a.dims()[1], "solve requires a square matrix");
    preimage(a, b, tol).map(|p| p.v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn random_matrix(rng: &mut Prng, m: usize, n: usize) -> Tensor {
        rng.normal_tensor([m, n])
    }

    #[test]
    fn qr_reconstructs_tall_matrix_solution() {
        let mut rng = Prng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 8, 5);
        let x_true = rng.normal_tensor([5]);
        let b = a.matvec(&x_true);
        let qr = QrFactors::compute(&a);
        let x = qr.solve_least_squares(&b);
        assert!(x.max_abs_diff(&x_true) < 1e-9, "{:?}", x);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Overdetermined inconsistent system: compare against normal equations.
        let a = Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = Tensor::from_slice(&[1.0, 2.0, 2.0]);
        let qr = QrFactors::compute(&a);
        let x = qr.solve_least_squares(&b);
        // Normal-equation solution for this classic example: x = [2/3, 1/2].
        assert!((x.as_slice()[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((x.as_slice()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_norm_solution_is_consistent_and_minimal() {
        let mut rng = Prng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 4, 10);
        let b = rng.normal_tensor([4]);
        let p = preimage(&a, &b, 1e-8).expect("full-rank wide system");
        assert!(p.residual < 1e-8);
        // Minimality: v ∈ row space of A, so v ⟂ null(A). Verify by
        // projecting a null-space vector against v.
        let v = &p.v;
        // Construct a null vector numerically: w - A⁺(Aw).
        let w = rng.normal_tensor([10]);
        let aw = a.matvec(&w);
        let back = preimage(&a, &aw, 1e-8).expect("consistent");
        let null = &w - &back.v;
        assert!(a.matvec(&null).norm_inf() < 1e-7);
        assert!(v.dot(&null).abs() < 1e-7, "min-norm must be ⟂ null space");
    }

    #[test]
    fn preimage_detects_inconsistent_system() {
        // Rank-1 wide matrix; rhs outside its range.
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]]);
        let b = Tensor::from_slice(&[1.0, 0.0]);
        assert!(preimage(&a, &b, 1e-8).is_none(), "must report ⊥");
        // rhs inside the range works.
        let b2 = Tensor::from_slice(&[1.0, 2.0]);
        let p = preimage(&a, &b2, 1e-8).expect("in range");
        assert!(p.residual < 1e-8);
    }

    #[test]
    fn solve_square_system() {
        let a = Tensor::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Tensor::from_slice(&[1.0, 2.0]);
        let x = solve(&a, &b, 1e-10).expect("nonsingular");
        let r = a.matvec(&x);
        assert!(r.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none_for_unreachable_rhs() {
        let a = Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let b = Tensor::from_slice(&[1.0, 2.0]);
        assert!(solve(&a, &b, 1e-10).is_none());
    }

    #[test]
    fn rank_of_rank_deficient_matrix() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = QrFactors::compute(&a);
        assert_eq!(qr.rank(), 1);
        let mut rng = Prng::seed_from_u64(17);
        let full = rng.normal_tensor([6, 4]);
        assert_eq!(QrFactors::compute(&full).rank(), 4);
    }

    #[test]
    fn qt_then_q_is_identity() {
        let mut rng = Prng::seed_from_u64(19);
        let a = random_matrix(&mut rng, 7, 7);
        let qr = QrFactors::compute(&a);
        let b = rng.normal_tensor([7]);
        let mut v = b.as_slice().to_vec();
        qr.apply_qt(&mut v);
        qr.apply_q(&mut v);
        let round = Tensor::from_slice(&v);
        assert!(round.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn preimage_of_basis_vectors_random_wide() {
        let mut rng = Prng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 6, 20);
        for j in 0..6 {
            let e = Tensor::basis(6, j);
            let p = preimage(&a, &e, 1e-8).expect("onto");
            assert!(a.matvec(&p.v).max_abs_diff(&e) < 1e-8);
        }
    }
}
