//! Backend-dispatched gemm kernels: the scalar reference, an explicit-SIMD
//! backend, and their f32 twins.
//!
//! Every backend honours the same **determinism contract** (see the
//! `compute` module docs): each output element accumulates its `k`
//! contributions in strictly ascending order into a single accumulator, so
//! results are bit-identical across backends at the same precision. The
//! SIMD kernels achieve this by vectorizing across *output columns* (`j`),
//! never across the reduction dimension `k` — each SIMD lane replays
//! exactly the scalar kernel's per-element fold — and by using separate
//! multiply and add instructions (an FMA would fuse the intermediate
//! rounding and change bits).
//!
//! Four backends exist:
//!
//! - [`ScalarBackend`] — the blocked/unrolled reference kernels;
//! - [`Avx512Backend`] (`x86_64` with runtime `avx512f` detection) —
//!   register-blocked 8-wide f64 / 16-wide f32 kernels whose accumulators
//!   live in zmm registers across the whole `k` loop;
//! - the AVX backend (`x86_64` with runtime `avx` detection) — 4-wide f64
//!   / 8-wide f32 `std::arch` intrinsics;
//! - [`PortableSimdBackend`] — 4-wide manual vectorization in plain Rust,
//!   the forced-fallback path used where the CPU features (or the
//!   architecture) are absent.
//!
//! Selection: `RELOCK_BACKEND` (`scalar` / `simd` / `simd-portable`) fixes
//! the process default (`simd`, the auto-dispatching choice, when unset);
//! [`set_backend_override`] re-routes subsequent dispatches at runtime so
//! tests and the CLI can pin a backend per-case without touching the
//! environment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Column-block width of the blocked `nn` kernels. Inner `j` blocks keep
/// the active `B`/`out` row segments resident in L1 across the `k` loop
/// without changing any element's accumulation order.
pub(crate) const J_BLOCK: usize = 64;

/// Numeric precision of a graph execution path. `F64` is the reference
/// (and the only precision with a bit-exactness contract); `F32` is the
/// opt-in fast path for learning-based work where exactness is not
/// load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Double precision — the workspace-wide default.
    #[default]
    F64,
    /// Single precision — opt-in for the monolithic learning attack and
    /// the trainer.
    F32,
}

impl Precision {
    /// Parses `"f64"` / `"f32"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Precision> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "double" => Some(Precision::F64),
            "f32" | "single" => Some(Precision::F32),
            _ => None,
        }
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Which kernel family a gemm dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The blocked scalar reference kernels.
    Scalar,
    /// Auto-dispatching SIMD: AVX intrinsics when the CPU has them, the
    /// portable 4-wide kernels otherwise.
    Simd,
    /// The portable 4-wide kernels, forced (the fallback path the CI
    /// matrix pins explicitly so it stays exercised on AVX machines).
    SimdPortable,
}

impl BackendKind {
    /// Parses a `RELOCK_BACKEND`-style name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" | "auto" => Some(BackendKind::Simd),
            "simd-portable" | "portable" => Some(BackendKind::SimdPortable),
            _ => None,
        }
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
            BackendKind::SimdPortable => "simd-portable",
        }
    }
}

/// Static trace-counter labels of one backend, one per kernel — the
/// flight recorder's per-backend gemm accounting.
#[derive(Debug)]
pub struct GemmCounters {
    /// f64 `A · B` kernel invocations.
    pub nn: &'static str,
    /// f64 `A · Bᵀ` kernel invocations.
    pub nt: &'static str,
    /// f64 `Aᵀ · B` kernel invocations.
    pub tn: &'static str,
    /// f32 `A · B` kernel invocations.
    pub nn32: &'static str,
    /// f32 `A · Bᵀ` kernel invocations.
    pub nt32: &'static str,
    /// f32 `Aᵀ · B` kernel invocations.
    pub tn32: &'static str,
}

/// One gemm kernel family. Row-level (`nn_row`, `nt_row`) and block-level
/// (`tn_block`) granularity matches how the dispatcher shards work across
/// threads: threads own disjoint *output rows*, so a backend never sees a
/// partial reduction.
///
/// Implementations MUST keep the strictly-ascending-`k` single-accumulator
/// order per output element; the `backends` property suite enforces
/// bit-identity against [`ScalarBackend`] at both precisions.
#[allow(clippy::too_many_arguments)]
pub trait GemmBackend: Sync {
    /// Backend name as reported in benches and `BENCH.json`.
    fn name(&self) -> &'static str;
    /// Per-kernel trace-counter labels.
    fn counters(&self) -> &'static GemmCounters;

    /// One output row of `out = A · B` (`a_row`: `k`, `b`: `k×n`).
    fn nn_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize);
    /// Rows `lo..lo + rows` of `out = A · B` (`a`: the full `m×k` matrix).
    /// Default: a row loop over [`GemmBackend::nn_row`]. Backends may
    /// override to register-block *across* rows — extra independent
    /// accumulator chains that share the `B` loads — as long as every
    /// element keeps its single ascending-`k` chain.
    fn nn_block(&self, a: &[f64], b: &[f64], block: &mut [f64], lo: usize, k: usize, n: usize) {
        for (bi, out_row) in block.chunks_exact_mut(n.max(1)).enumerate() {
            let i = lo + bi;
            self.nn_row(&a[i * k..(i + 1) * k], b, out_row, k, n);
        }
    }
    /// One output row of `out = A · Bᵀ` (`a_row`: `k`, `b`: `n×k`).
    fn nt_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize);
    /// Rows `lo..lo + rows` of `out = Aᵀ · B` (`a`: `k×m`, `b`: `k×n`).
    fn tn_block(
        &self,
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    );

    /// f32 twin of [`GemmBackend::nn_row`].
    fn nn_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize);
    /// f32 twin of [`GemmBackend::nn_block`].
    fn nn_block_f32(&self, a: &[f32], b: &[f32], block: &mut [f32], lo: usize, k: usize, n: usize) {
        for (bi, out_row) in block.chunks_exact_mut(n.max(1)).enumerate() {
            let i = lo + bi;
            self.nn_row_f32(&a[i * k..(i + 1) * k], b, out_row, k, n);
        }
    }
    /// f32 twin of [`GemmBackend::nt_row`].
    fn nt_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize);
    /// f32 twin of [`GemmBackend::tn_block`].
    fn tn_block_f32(
        &self,
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    );
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (f64 and f32 via one macro — identical structure).
// ---------------------------------------------------------------------------

macro_rules! scalar_kernels {
    ($ty:ty, $nn:ident, $nt:ident, $tn:ident) => {
        /// Blocked i-k-j row kernel: four `k` steps per sweep of the output
        /// segment, each element accumulating in ascending `k` order (the
        /// four adds chain in-register).
        fn $nn(a_row: &[$ty], b: &[$ty], out_row: &mut [$ty], k: usize, n: usize) {
            out_row.fill(0.0);
            let mut jb = 0;
            while jb < n {
                let je = (jb + J_BLOCK).min(n);
                let mut kk = 0usize;
                while kk + 4 <= k {
                    let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                    let b0 = &b[kk * n + jb..kk * n + je];
                    let b1 = &b[(kk + 1) * n + jb..(kk + 1) * n + je];
                    let b2 = &b[(kk + 2) * n + jb..(kk + 2) * n + je];
                    let b3 = &b[(kk + 3) * n + jb..(kk + 3) * n + je];
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row[jb..je].iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                    }
                    kk += 4;
                }
                for (kk, &av) in a_row.iter().enumerate().skip(kk) {
                    let b_seg = &b[kk * n + jb..kk * n + je];
                    for (o, &bv) in out_row[jb..je].iter_mut().zip(b_seg) {
                        *o += av * bv;
                    }
                }
                jb = je;
            }
        }

        /// Unrolled independent dot products: eight (then four) output
        /// columns at a time, each column's accumulator walking `k` in
        /// ascending order — the unroll hides the add latency the strict
        /// summation order would otherwise serialize on.
        fn $nt(a_row: &[$ty], b: &[$ty], out_row: &mut [$ty], k: usize, n: usize) {
            if k == 0 {
                // Empty dot products; also keeps the tail's chunks_exact
                // away from a zero chunk size.
                out_row.fill(0.0);
                return;
            }
            let mut j = 0usize;
            while j + 8 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let b4 = &b[(j + 4) * k..(j + 5) * k];
                let b5 = &b[(j + 5) * k..(j + 6) * k];
                let b6 = &b[(j + 6) * k..(j + 7) * k];
                let b7 = &b[(j + 7) * k..(j + 8) * k];
                let mut s = [0.0 as $ty; 8];
                for (kk, &av) in a_row.iter().enumerate() {
                    s[0] += av * b0[kk];
                    s[1] += av * b1[kk];
                    s[2] += av * b2[kk];
                    s[3] += av * b3[kk];
                    s[4] += av * b4[kk];
                    s[5] += av * b5[kk];
                    s[6] += av * b6[kk];
                    s[7] += av * b7[kk];
                }
                out_row[j..j + 8].copy_from_slice(&s);
                j += 8;
            }
            while j + 4 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) =
                    (0.0 as $ty, 0.0 as $ty, 0.0 as $ty, 0.0 as $ty);
                for (&av, ((&v0, &v1), (&v2, &v3))) in
                    a_row.iter().zip(b0.iter().zip(b1).zip(b2.iter().zip(b3)))
                {
                    s0 += av * v0;
                    s1 += av * v1;
                    s2 += av * v2;
                    s3 += av * v3;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for (o, b_row) in out_row[j..].iter_mut().zip(b[j * k..].chunks_exact(k)) {
                // Explicit +0.0-seeded fold: `Iterator::sum` seeds with
                // -0.0, which would break bit-identity with the unrolled
                // columns in zero-sign edge cases.
                let mut s = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    s += x * y;
                }
                *o = s;
            }
        }

        /// `k`-outer broadcast accumulation over an output-row block.
        #[allow(clippy::too_many_arguments)]
        fn $tn(
            a: &[$ty],
            b: &[$ty],
            block: &mut [$ty],
            lo: usize,
            rows: usize,
            m: usize,
            k: usize,
            n: usize,
        ) {
            block.fill(0.0);
            for kk in 0..k {
                let a_seg = &a[kk * m + lo..kk * m + lo + rows];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (bi, &av) in a_seg.iter().enumerate() {
                    let out_row = &mut block[bi * n..(bi + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    };
}

scalar_kernels!(f64, scalar_nn_f64, scalar_nt_f64, scalar_tn_f64);
scalar_kernels!(f32, scalar_nn_f32, scalar_nt_f32, scalar_tn_f32);

/// The blocked scalar reference kernels — the accumulation-order ground
/// truth every other backend is property-tested against.
#[derive(Debug)]
pub struct ScalarBackend;

static SCALAR_COUNTERS: GemmCounters = GemmCounters {
    nn: "gemm.nn.scalar",
    nt: "gemm.nt.scalar",
    tn: "gemm.tn.scalar",
    nn32: "gemm32.nn.scalar",
    nt32: "gemm32.nt.scalar",
    tn32: "gemm32.tn.scalar",
};

impl GemmBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }
    fn counters(&self) -> &'static GemmCounters {
        &SCALAR_COUNTERS
    }
    fn nn_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        scalar_nn_f64(a_row, b, out_row, k, n)
    }
    fn nt_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        scalar_nt_f64(a_row, b, out_row, k, n)
    }
    fn tn_block(
        &self,
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        scalar_tn_f64(a, b, block, lo, rows, m, k, n)
    }
    fn nn_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        scalar_nn_f32(a_row, b, out_row, k, n)
    }
    fn nt_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        scalar_nt_f32(a_row, b, out_row, k, n)
    }
    fn tn_block_f32(
        &self,
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        scalar_tn_f32(a, b, block, lo, rows, m, k, n)
    }
}

// ---------------------------------------------------------------------------
// Portable 4-wide kernels — the SIMD backend's fallback when the CPU
// feature (or the architecture) is absent. The lane structure mirrors the
// AVX kernels; per-element accumulation order mirrors the scalar reference.
// ---------------------------------------------------------------------------

macro_rules! portable_kernels {
    ($ty:ty, $nn:ident, $nt:ident, $tn:ident) => {
        fn $nn(a_row: &[$ty], b: &[$ty], out_row: &mut [$ty], k: usize, n: usize) {
            out_row.fill(0.0);
            let mut jb = 0usize;
            while jb < n {
                let je = (jb + J_BLOCK).min(n);
                let mut kk = 0usize;
                while kk + 4 <= k {
                    let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                    let (r0, r1, r2, r3) = (kk * n, (kk + 1) * n, (kk + 2) * n, (kk + 3) * n);
                    let mut j = jb;
                    while j + 4 <= je {
                        let mut o = [out_row[j], out_row[j + 1], out_row[j + 2], out_row[j + 3]];
                        for l in 0..4 {
                            o[l] += a0 * b[r0 + j + l];
                        }
                        for l in 0..4 {
                            o[l] += a1 * b[r1 + j + l];
                        }
                        for l in 0..4 {
                            o[l] += a2 * b[r2 + j + l];
                        }
                        for l in 0..4 {
                            o[l] += a3 * b[r3 + j + l];
                        }
                        out_row[j..j + 4].copy_from_slice(&o);
                        j += 4;
                    }
                    while j < je {
                        let o = &mut out_row[j];
                        *o = (((*o + a0 * b[r0 + j]) + a1 * b[r1 + j]) + a2 * b[r2 + j])
                            + a3 * b[r3 + j];
                        j += 1;
                    }
                    kk += 4;
                }
                while kk < k {
                    let av = a_row[kk];
                    let r = kk * n;
                    let mut j = jb;
                    while j + 4 <= je {
                        let mut o = [out_row[j], out_row[j + 1], out_row[j + 2], out_row[j + 3]];
                        for l in 0..4 {
                            o[l] += av * b[r + j + l];
                        }
                        out_row[j..j + 4].copy_from_slice(&o);
                        j += 4;
                    }
                    while j < je {
                        out_row[j] += av * b[r + j];
                        j += 1;
                    }
                    kk += 1;
                }
                jb = je;
            }
        }

        fn $nt(a_row: &[$ty], b: &[$ty], out_row: &mut [$ty], k: usize, n: usize) {
            let mut j = 0usize;
            while j + 4 <= n {
                let mut s = [0.0 as $ty; 4];
                for (kk, &av) in a_row.iter().enumerate() {
                    s[0] += av * b[j * k + kk];
                    s[1] += av * b[(j + 1) * k + kk];
                    s[2] += av * b[(j + 2) * k + kk];
                    s[3] += av * b[(j + 3) * k + kk];
                }
                out_row[j..j + 4].copy_from_slice(&s);
                j += 4;
            }
            for jj in j..n {
                let mut s = 0.0;
                for (&x, &y) in a_row.iter().zip(&b[jj * k..(jj + 1) * k]) {
                    s += x * y;
                }
                out_row[jj] = s;
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn $tn(
            a: &[$ty],
            b: &[$ty],
            block: &mut [$ty],
            lo: usize,
            rows: usize,
            m: usize,
            k: usize,
            n: usize,
        ) {
            block.fill(0.0);
            for kk in 0..k {
                let a_seg = &a[kk * m + lo..kk * m + lo + rows];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (bi, &av) in a_seg.iter().enumerate() {
                    let out_row = &mut block[bi * n..(bi + 1) * n];
                    let mut j = 0usize;
                    while j + 4 <= n {
                        for l in 0..4 {
                            out_row[j + l] += av * b_row[j + l];
                        }
                        j += 4;
                    }
                    while j < n {
                        out_row[j] += av * b_row[j];
                        j += 1;
                    }
                }
            }
        }
    };
}

portable_kernels!(f64, portable_nn_f64, portable_nt_f64, portable_tn_f64);
portable_kernels!(f32, portable_nn_f32, portable_nt_f32, portable_tn_f32);

/// The portable 4-wide manual-vectorization backend — what `simd` resolves
/// to without AVX, and what `simd-portable` forces so the fallback stays
/// exercised on machines that do have the feature.
#[derive(Debug)]
pub struct PortableSimdBackend;

static PORTABLE_COUNTERS: GemmCounters = GemmCounters {
    nn: "gemm.nn.simd-portable",
    nt: "gemm.nt.simd-portable",
    tn: "gemm.tn.simd-portable",
    nn32: "gemm32.nn.simd-portable",
    nt32: "gemm32.nt.simd-portable",
    tn32: "gemm32.tn.simd-portable",
};

impl GemmBackend for PortableSimdBackend {
    fn name(&self) -> &'static str {
        "simd-portable"
    }
    fn counters(&self) -> &'static GemmCounters {
        &PORTABLE_COUNTERS
    }
    fn nn_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        portable_nn_f64(a_row, b, out_row, k, n)
    }
    fn nt_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        portable_nt_f64(a_row, b, out_row, k, n)
    }
    fn tn_block(
        &self,
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        portable_tn_f64(a, b, block, lo, rows, m, k, n)
    }
    fn nn_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        portable_nn_f32(a_row, b, out_row, k, n)
    }
    fn nt_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        portable_nt_f32(a_row, b, out_row, k, n)
    }
    fn tn_block_f32(
        &self,
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        portable_tn_f32(a, b, block, lo, rows, m, k, n)
    }
}

// ---------------------------------------------------------------------------
// AVX kernels (x86_64, runtime-detected). 4-wide f64 / 8-wide f32,
// multiply + add only — no FMA, which would fuse the intermediate rounding
// and break bit-identity with the scalar reference.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::J_BLOCK;
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Requires AVX (checked by the dispatcher before this backend is
    /// selected).
    #[target_feature(enable = "avx")]
    pub unsafe fn nn_row_f64(a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        out_row.fill(0.0);
        let mut jb = 0usize;
        while jb < n {
            let je = (jb + J_BLOCK).min(n);
            let mut kk = 0usize;
            while kk + 4 <= k {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let (va0, va1, va2, va3) = (
                    _mm256_set1_pd(a0),
                    _mm256_set1_pd(a1),
                    _mm256_set1_pd(a2),
                    _mm256_set1_pd(a3),
                );
                let (r0, r1, r2, r3) = (kk * n, (kk + 1) * n, (kk + 2) * n, (kk + 3) * n);
                let mut j = jb;
                while j + 4 <= je {
                    let mut o = _mm256_loadu_pd(out_row.as_ptr().add(j));
                    o = _mm256_add_pd(
                        o,
                        _mm256_mul_pd(va0, _mm256_loadu_pd(b.as_ptr().add(r0 + j))),
                    );
                    o = _mm256_add_pd(
                        o,
                        _mm256_mul_pd(va1, _mm256_loadu_pd(b.as_ptr().add(r1 + j))),
                    );
                    o = _mm256_add_pd(
                        o,
                        _mm256_mul_pd(va2, _mm256_loadu_pd(b.as_ptr().add(r2 + j))),
                    );
                    o = _mm256_add_pd(
                        o,
                        _mm256_mul_pd(va3, _mm256_loadu_pd(b.as_ptr().add(r3 + j))),
                    );
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(j), o);
                    j += 4;
                }
                while j < je {
                    let o = &mut out_row[j];
                    *o = (((*o + a0 * b[r0 + j]) + a1 * b[r1 + j]) + a2 * b[r2 + j])
                        + a3 * b[r3 + j];
                    j += 1;
                }
                kk += 4;
            }
            while kk < k {
                let av = a_row[kk];
                let vav = _mm256_set1_pd(av);
                let r = kk * n;
                let mut j = jb;
                while j + 4 <= je {
                    let o = _mm256_add_pd(
                        _mm256_loadu_pd(out_row.as_ptr().add(j)),
                        _mm256_mul_pd(vav, _mm256_loadu_pd(b.as_ptr().add(r + j))),
                    );
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(j), o);
                    j += 4;
                }
                while j < je {
                    out_row[j] += av * b[r + j];
                    j += 1;
                }
                kk += 1;
            }
            jb = je;
        }
    }

    /// # Safety
    ///
    /// Requires AVX.
    #[target_feature(enable = "avx")]
    pub unsafe fn nt_row_f64(a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        // Four output columns per vector: B's rows are the columns here, so
        // the lanes gather one scalar from each of four contiguous rows —
        // each lane replays the scalar kernel's ascending-k fold.
        let mut j = 0usize;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut acc = _mm256_setzero_pd();
            for kk in 0..k {
                let av = _mm256_set1_pd(a_row[kk]);
                let bv = _mm256_set_pd(b3[kk], b2[kk], b1[kk], b0[kk]);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
            }
            _mm256_storeu_pd(out_row.as_mut_ptr().add(j), acc);
            j += 4;
        }
        for jj in j..n {
            let mut s = 0.0;
            for (&x, &y) in a_row.iter().zip(&b[jj * k..(jj + 1) * k]) {
                s += x * y;
            }
            out_row[jj] = s;
        }
    }

    /// # Safety
    ///
    /// Requires AVX.
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tn_block_f64(
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        block.fill(0.0);
        for kk in 0..k {
            let a_seg = &a[kk * m + lo..kk * m + lo + rows];
            let r = kk * n;
            for (bi, &av) in a_seg.iter().enumerate() {
                let vav = _mm256_set1_pd(av);
                let ob = bi * n;
                let mut j = 0usize;
                while j + 4 <= n {
                    let o = _mm256_add_pd(
                        _mm256_loadu_pd(block.as_ptr().add(ob + j)),
                        _mm256_mul_pd(vav, _mm256_loadu_pd(b.as_ptr().add(r + j))),
                    );
                    _mm256_storeu_pd(block.as_mut_ptr().add(ob + j), o);
                    j += 4;
                }
                while j < n {
                    block[ob + j] += av * b[r + j];
                    j += 1;
                }
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX.
    #[target_feature(enable = "avx")]
    pub unsafe fn nn_row_f32(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        out_row.fill(0.0);
        let mut jb = 0usize;
        while jb < n {
            let je = (jb + J_BLOCK).min(n);
            let mut kk = 0usize;
            while kk + 4 <= k {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let (va0, va1, va2, va3) = (
                    _mm256_set1_ps(a0),
                    _mm256_set1_ps(a1),
                    _mm256_set1_ps(a2),
                    _mm256_set1_ps(a3),
                );
                let (r0, r1, r2, r3) = (kk * n, (kk + 1) * n, (kk + 2) * n, (kk + 3) * n);
                let mut j = jb;
                while j + 8 <= je {
                    let mut o = _mm256_loadu_ps(out_row.as_ptr().add(j));
                    o = _mm256_add_ps(
                        o,
                        _mm256_mul_ps(va0, _mm256_loadu_ps(b.as_ptr().add(r0 + j))),
                    );
                    o = _mm256_add_ps(
                        o,
                        _mm256_mul_ps(va1, _mm256_loadu_ps(b.as_ptr().add(r1 + j))),
                    );
                    o = _mm256_add_ps(
                        o,
                        _mm256_mul_ps(va2, _mm256_loadu_ps(b.as_ptr().add(r2 + j))),
                    );
                    o = _mm256_add_ps(
                        o,
                        _mm256_mul_ps(va3, _mm256_loadu_ps(b.as_ptr().add(r3 + j))),
                    );
                    _mm256_storeu_ps(out_row.as_mut_ptr().add(j), o);
                    j += 8;
                }
                while j < je {
                    let o = &mut out_row[j];
                    *o = (((*o + a0 * b[r0 + j]) + a1 * b[r1 + j]) + a2 * b[r2 + j])
                        + a3 * b[r3 + j];
                    j += 1;
                }
                kk += 4;
            }
            while kk < k {
                let av = a_row[kk];
                let vav = _mm256_set1_ps(av);
                let r = kk * n;
                let mut j = jb;
                while j + 8 <= je {
                    let o = _mm256_add_ps(
                        _mm256_loadu_ps(out_row.as_ptr().add(j)),
                        _mm256_mul_ps(vav, _mm256_loadu_ps(b.as_ptr().add(r + j))),
                    );
                    _mm256_storeu_ps(out_row.as_mut_ptr().add(j), o);
                    j += 8;
                }
                while j < je {
                    out_row[j] += av * b[r + j];
                    j += 1;
                }
                kk += 1;
            }
            jb = je;
        }
    }

    /// # Safety
    ///
    /// Requires AVX.
    #[target_feature(enable = "avx")]
    pub unsafe fn nt_row_f32(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        let mut j = 0usize;
        while j + 8 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let b4 = &b[(j + 4) * k..(j + 5) * k];
            let b5 = &b[(j + 5) * k..(j + 6) * k];
            let b6 = &b[(j + 6) * k..(j + 7) * k];
            let b7 = &b[(j + 7) * k..(j + 8) * k];
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let av = _mm256_set1_ps(a_row[kk]);
                let bv = _mm256_set_ps(
                    b7[kk], b6[kk], b5[kk], b4[kk], b3[kk], b2[kk], b1[kk], b0[kk],
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
            }
            _mm256_storeu_ps(out_row.as_mut_ptr().add(j), acc);
            j += 8;
        }
        for jj in j..n {
            let mut s = 0.0;
            for (&x, &y) in a_row.iter().zip(&b[jj * k..(jj + 1) * k]) {
                s += x * y;
            }
            out_row[jj] = s;
        }
    }

    /// # Safety
    ///
    /// Requires AVX.
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tn_block_f32(
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        block.fill(0.0);
        for kk in 0..k {
            let a_seg = &a[kk * m + lo..kk * m + lo + rows];
            let r = kk * n;
            for (bi, &av) in a_seg.iter().enumerate() {
                let vav = _mm256_set1_ps(av);
                let ob = bi * n;
                let mut j = 0usize;
                while j + 8 <= n {
                    let o = _mm256_add_ps(
                        _mm256_loadu_ps(block.as_ptr().add(ob + j)),
                        _mm256_mul_ps(vav, _mm256_loadu_ps(b.as_ptr().add(r + j))),
                    );
                    _mm256_storeu_ps(block.as_mut_ptr().add(ob + j), o);
                    j += 8;
                }
                while j < n {
                    block[ob + j] += av * b[r + j];
                    j += 1;
                }
            }
        }
    }
}

/// The AVX intrinsics backend. Constructed only behind a successful
/// runtime `avx` detection, which is the safety contract of every kernel
/// call below.
#[cfg(target_arch = "x86_64")]
#[derive(Debug)]
pub struct AvxBackend;

#[cfg(target_arch = "x86_64")]
static AVX_COUNTERS: GemmCounters = GemmCounters {
    nn: "gemm.nn.simd-avx",
    nt: "gemm.nt.simd-avx",
    tn: "gemm.tn.simd-avx",
    nn32: "gemm32.nn.simd-avx",
    nt32: "gemm32.nt.simd-avx",
    tn32: "gemm32.tn.simd-avx",
};

#[cfg(target_arch = "x86_64")]
impl GemmBackend for AvxBackend {
    fn name(&self) -> &'static str {
        "simd-avx"
    }
    fn counters(&self) -> &'static GemmCounters {
        &AVX_COUNTERS
    }
    fn nn_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        unsafe { avx::nn_row_f64(a_row, b, out_row, k, n) }
    }
    fn nt_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        unsafe { avx::nt_row_f64(a_row, b, out_row, k, n) }
    }
    fn tn_block(
        &self,
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        unsafe { avx::tn_block_f64(a, b, block, lo, rows, m, k, n) }
    }
    fn nn_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        unsafe { avx::nn_row_f32(a_row, b, out_row, k, n) }
    }
    fn nt_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        unsafe { avx::nt_row_f32(a_row, b, out_row, k, n) }
    }
    fn tn_block_f32(
        &self,
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        unsafe { avx::tn_block_f32(a, b, block, lo, rows, m, k, n) }
    }
}

// ---------------------------------------------------------------------------
// AVX-512 kernels (x86_64, runtime-detected). Register-blocked: up to eight
// accumulator vectors live in zmm registers across the *whole* `k` loop, so
// the per-k-chunk load/store traffic of the blocked kernels disappears.
// Each output element still owns a single accumulator walking `k` in
// ascending order; the independent column chains are the only
// instruction-level parallelism the determinism contract permits (the
// reduction itself must stay serial per element), and eight of them are
// enough to hide the add latency that serializes one chain.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::avx;
    use std::arch::x86_64::*;

    macro_rules! avx512_nn_like {
        ($ty:ty, $mask:ty, $lanes:expr, $setzero:ident, $set1:ident, $loadu:ident,
         $maskz_loadu:ident, $storeu:ident, $mask_storeu:ident, $mul:ident, $add:ident,
         $group:ident, $like:ident, $group2:ident, $pair:ident) => {
            /// One register-blocked column group: `NV` accumulator vectors
            /// (the last one masked when the group has a partial tail), each
            /// lane replaying the scalar per-element ascending-`k` fold with
            /// separate multiply and add.
            ///
            /// # Safety
            ///
            /// Requires AVX-512F. `a` must hold `k` elements at stride
            /// `a_stride`; `b` must cover `k` rows of `n` columns starting at
            /// this group's first column; `out` must cover `width` elements;
            /// `width` must lie in `(NV-1)*LANES + 1 ..= NV*LANES`.
            #[target_feature(enable = "avx512f")]
            unsafe fn $group<const NV: usize>(
                a: *const $ty,
                a_stride: usize,
                b: *const $ty,
                out: *mut $ty,
                k: usize,
                n: usize,
                width: usize,
            ) {
                const LANES: usize = $lanes;
                let tail = width - (NV - 1) * LANES;
                let tmask: $mask = if tail == LANES {
                    <$mask>::MAX
                } else {
                    ((1u32 << tail) - 1) as $mask
                };
                let mut acc = [$setzero(); NV];
                for kk in 0..k {
                    let av = $set1(*a.add(kk * a_stride));
                    let row = b.add(kk * n);
                    for v in 0..NV - 1 {
                        let bv = $loadu(row.add(v * LANES));
                        acc[v] = $add(acc[v], $mul(av, bv));
                    }
                    // Dead tail lanes multiply against 0.0 and are never
                    // stored.
                    let bv = $maskz_loadu(tmask, row.add((NV - 1) * LANES));
                    acc[NV - 1] = $add(acc[NV - 1], $mul(av, bv));
                }
                for v in 0..NV - 1 {
                    $storeu(out.add(v * LANES), acc[v]);
                }
                $mask_storeu(out.add((NV - 1) * LANES), tmask, acc[NV - 1]);
            }

            /// Shared `nn`/`tn` row driver:
            /// `out_row[j] = Σ_k a[k·a_stride] · b[k·n + j]`, walked in
            /// register-blocked groups of up to eight vectors. `k == 0`
            /// stores the zero accumulators, matching the scalar kernels'
            /// `fill(0.0)`.
            ///
            /// # Safety
            ///
            /// Requires AVX-512F. `a` must hold `k` elements at stride
            /// `a_stride`; `b` must be `k×n`; `out_row` must hold `n`.
            #[target_feature(enable = "avx512f")]
            unsafe fn $like(
                a: *const $ty,
                a_stride: usize,
                b: &[$ty],
                out_row: &mut [$ty],
                k: usize,
                n: usize,
            ) {
                const LANES: usize = $lanes;
                let mut jb = 0usize;
                while jb < n {
                    let width = (n - jb).min(8 * LANES);
                    let bp = b.as_ptr().add(jb);
                    let op = out_row.as_mut_ptr().add(jb);
                    match width.div_ceil(LANES) {
                        1 => $group::<1>(a, a_stride, bp, op, k, n, width),
                        2 => $group::<2>(a, a_stride, bp, op, k, n, width),
                        3 => $group::<3>(a, a_stride, bp, op, k, n, width),
                        4 => $group::<4>(a, a_stride, bp, op, k, n, width),
                        5 => $group::<5>(a, a_stride, bp, op, k, n, width),
                        6 => $group::<6>(a, a_stride, bp, op, k, n, width),
                        7 => $group::<7>(a, a_stride, bp, op, k, n, width),
                        _ => $group::<8>(a, a_stride, bp, op, k, n, width),
                    }
                    jb += width;
                }
            }

            /// Two-row column group: the same per-element ascending-`k`
            /// chains as [`$group`], but two output rows' accumulators in
            /// flight sharing every `B` load — doubling the independent
            /// chains that hide the add latency.
            ///
            /// # Safety
            ///
            /// As [`$group`], for both `a` pointers and both `out` rows.
            #[target_feature(enable = "avx512f")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $group2<const NV: usize>(
                a0: *const $ty,
                a1: *const $ty,
                a_stride: usize,
                b: *const $ty,
                out0: *mut $ty,
                out1: *mut $ty,
                k: usize,
                n: usize,
                width: usize,
            ) {
                const LANES: usize = $lanes;
                let tail = width - (NV - 1) * LANES;
                let tmask: $mask = if tail == LANES {
                    <$mask>::MAX
                } else {
                    ((1u32 << tail) - 1) as $mask
                };
                let mut acc0 = [$setzero(); NV];
                let mut acc1 = [$setzero(); NV];
                for kk in 0..k {
                    let av0 = $set1(*a0.add(kk * a_stride));
                    let av1 = $set1(*a1.add(kk * a_stride));
                    let row = b.add(kk * n);
                    for v in 0..NV - 1 {
                        let bv = $loadu(row.add(v * LANES));
                        acc0[v] = $add(acc0[v], $mul(av0, bv));
                        acc1[v] = $add(acc1[v], $mul(av1, bv));
                    }
                    let bv = $maskz_loadu(tmask, row.add((NV - 1) * LANES));
                    acc0[NV - 1] = $add(acc0[NV - 1], $mul(av0, bv));
                    acc1[NV - 1] = $add(acc1[NV - 1], $mul(av1, bv));
                }
                for v in 0..NV - 1 {
                    $storeu(out0.add(v * LANES), acc0[v]);
                    $storeu(out1.add(v * LANES), acc1[v]);
                }
                $mask_storeu(out0.add((NV - 1) * LANES), tmask, acc0[NV - 1]);
                $mask_storeu(out1.add((NV - 1) * LANES), tmask, acc1[NV - 1]);
            }

            /// Two-row twin of [`$like`].
            ///
            /// # Safety
            ///
            /// As [`$like`], for both `a` pointers and both `out` rows.
            #[target_feature(enable = "avx512f")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $pair(
                a0: *const $ty,
                a1: *const $ty,
                a_stride: usize,
                b: &[$ty],
                out0: *mut $ty,
                out1: *mut $ty,
                k: usize,
                n: usize,
            ) {
                const LANES: usize = $lanes;
                let mut jb = 0usize;
                while jb < n {
                    let width = (n - jb).min(8 * LANES);
                    let bp = b.as_ptr().add(jb);
                    let (o0, o1) = (out0.add(jb), out1.add(jb));
                    match width.div_ceil(LANES) {
                        1 => $group2::<1>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        2 => $group2::<2>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        3 => $group2::<3>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        4 => $group2::<4>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        5 => $group2::<5>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        6 => $group2::<6>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        7 => $group2::<7>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                        _ => $group2::<8>(a0, a1, a_stride, bp, o0, o1, k, n, width),
                    }
                    jb += width;
                }
            }
        };
    }

    avx512_nn_like!(
        f64,
        __mmask8,
        8,
        _mm512_setzero_pd,
        _mm512_set1_pd,
        _mm512_loadu_pd,
        _mm512_maskz_loadu_pd,
        _mm512_storeu_pd,
        _mm512_mask_storeu_pd,
        _mm512_mul_pd,
        _mm512_add_pd,
        nn_group_f64,
        nn_like_f64,
        nn_group2_f64,
        nn_pair_f64
    );
    avx512_nn_like!(
        f32,
        __mmask16,
        16,
        _mm512_setzero_ps,
        _mm512_set1_ps,
        _mm512_loadu_ps,
        _mm512_maskz_loadu_ps,
        _mm512_storeu_ps,
        _mm512_mask_storeu_ps,
        _mm512_mul_ps,
        _mm512_add_ps,
        nn_group_f32,
        nn_like_f32,
        nn_group2_f32,
        nn_pair_f32
    );

    /// # Safety
    ///
    /// Requires AVX-512F (checked by the dispatcher before this backend is
    /// selected).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn_row_f64(a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        nn_like_f64(a_row.as_ptr(), 1, b, out_row, k, n)
    }

    /// Row-paired `nn` block: consecutive output rows two at a time (plus
    /// a single-row tail), sharing each `B` load across both rows' chains.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; `a` is the full `m×k` matrix, `block` covers
    /// rows `lo..lo + block.len()/n`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn_block_f64(
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let rows = block.len() / n;
        let mut bi = 0usize;
        while bi + 2 <= rows {
            let i = lo + bi;
            nn_pair_f64(
                a.as_ptr().add(i * k),
                a.as_ptr().add((i + 1) * k),
                1,
                b,
                block.as_mut_ptr().add(bi * n),
                block.as_mut_ptr().add((bi + 1) * n),
                k,
                n,
            );
            bi += 2;
        }
        if bi < rows {
            let i = lo + bi;
            nn_like_f64(
                a.as_ptr().add(i * k),
                1,
                b,
                &mut block[bi * n..(bi + 1) * n],
                k,
                n,
            );
        }
    }

    /// `nt` gathers one scalar per output column per `k` step — there is no
    /// contiguous column vector to register-block — so it reuses the AVX
    /// kernel (AVX-512F machines always have AVX).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F (which implies the AVX the delegate needs).
    #[target_feature(enable = "avx512f", enable = "avx")]
    pub unsafe fn nt_row_f64(a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        avx::nt_row_f64(a_row, b, out_row, k, n)
    }

    /// `tn` is the `nn` pattern with the broadcast operand strided: output
    /// row `i` accumulates `a[kk·m + lo + i] · b[kk·n + j]` over ascending
    /// `kk`. Restructuring from the scalar kernel's k-outer loop to one
    /// register-blocked pass per output row changes no element's
    /// accumulation order.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; slice shapes as in [`GemmBackend::tn_block`].
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tn_block_f64(
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let mut bi = 0usize;
        while bi + 2 <= rows {
            nn_pair_f64(
                a.as_ptr().add(lo + bi),
                a.as_ptr().add(lo + bi + 1),
                m,
                b,
                block.as_mut_ptr().add(bi * n),
                block.as_mut_ptr().add((bi + 1) * n),
                k,
                n,
            );
            bi += 2;
        }
        if bi < rows {
            nn_like_f64(
                a.as_ptr().add(lo + bi),
                m,
                b,
                &mut block[bi * n..(bi + 1) * n],
                k,
                n,
            );
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn_row_f32(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        nn_like_f32(a_row.as_ptr(), 1, b, out_row, k, n)
    }

    /// f32 twin of [`nn_block_f64`].
    ///
    /// # Safety
    ///
    /// As [`nn_block_f64`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn_block_f32(
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let rows = block.len() / n;
        let mut bi = 0usize;
        while bi + 2 <= rows {
            let i = lo + bi;
            nn_pair_f32(
                a.as_ptr().add(i * k),
                a.as_ptr().add((i + 1) * k),
                1,
                b,
                block.as_mut_ptr().add(bi * n),
                block.as_mut_ptr().add((bi + 1) * n),
                k,
                n,
            );
            bi += 2;
        }
        if bi < rows {
            let i = lo + bi;
            nn_like_f32(
                a.as_ptr().add(i * k),
                1,
                b,
                &mut block[bi * n..(bi + 1) * n],
                k,
                n,
            );
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512F (which implies the AVX the delegate needs).
    #[target_feature(enable = "avx512f", enable = "avx")]
    pub unsafe fn nt_row_f32(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        avx::nt_row_f32(a_row, b, out_row, k, n)
    }

    /// # Safety
    ///
    /// Requires AVX-512F; slice shapes as in [`GemmBackend::tn_block`].
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tn_block_f32(
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let mut bi = 0usize;
        while bi + 2 <= rows {
            nn_pair_f32(
                a.as_ptr().add(lo + bi),
                a.as_ptr().add(lo + bi + 1),
                m,
                b,
                block.as_mut_ptr().add(bi * n),
                block.as_mut_ptr().add((bi + 1) * n),
                k,
                n,
            );
            bi += 2;
        }
        if bi < rows {
            nn_like_f32(
                a.as_ptr().add(lo + bi),
                m,
                b,
                &mut block[bi * n..(bi + 1) * n],
                k,
                n,
            );
        }
    }
}

/// The register-blocked AVX-512 backend — what `simd` resolves to on
/// machines with AVX-512F. Constructed only behind a successful runtime
/// detection, which is the safety contract of every kernel call below.
#[cfg(target_arch = "x86_64")]
#[derive(Debug)]
pub struct Avx512Backend;

#[cfg(target_arch = "x86_64")]
static AVX512_COUNTERS: GemmCounters = GemmCounters {
    nn: "gemm.nn.simd-avx512",
    nt: "gemm.nt.simd-avx512",
    tn: "gemm.tn.simd-avx512",
    nn32: "gemm32.nn.simd-avx512",
    nt32: "gemm32.nt.simd-avx512",
    tn32: "gemm32.tn.simd-avx512",
};

#[cfg(target_arch = "x86_64")]
impl GemmBackend for Avx512Backend {
    fn name(&self) -> &'static str {
        "simd-avx512"
    }
    fn counters(&self) -> &'static GemmCounters {
        &AVX512_COUNTERS
    }
    fn nn_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        unsafe { avx512::nn_row_f64(a_row, b, out_row, k, n) }
    }
    fn nn_block(&self, a: &[f64], b: &[f64], block: &mut [f64], lo: usize, k: usize, n: usize) {
        unsafe { avx512::nn_block_f64(a, b, block, lo, k, n) }
    }
    fn nt_row(&self, a_row: &[f64], b: &[f64], out_row: &mut [f64], k: usize, n: usize) {
        unsafe { avx512::nt_row_f64(a_row, b, out_row, k, n) }
    }
    fn tn_block(
        &self,
        a: &[f64],
        b: &[f64],
        block: &mut [f64],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        unsafe { avx512::tn_block_f64(a, b, block, lo, rows, m, k, n) }
    }
    fn nn_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        unsafe { avx512::nn_row_f32(a_row, b, out_row, k, n) }
    }
    fn nn_block_f32(&self, a: &[f32], b: &[f32], block: &mut [f32], lo: usize, k: usize, n: usize) {
        unsafe { avx512::nn_block_f32(a, b, block, lo, k, n) }
    }
    fn nt_row_f32(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        unsafe { avx512::nt_row_f32(a_row, b, out_row, k, n) }
    }
    fn tn_block_f32(
        &self,
        a: &[f32],
        b: &[f32],
        block: &mut [f32],
        lo: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        unsafe { avx512::tn_block_f32(a, b, block, lo, rows, m, k, n) }
    }
}

// ---------------------------------------------------------------------------
// Selection: process default from RELOCK_BACKEND (read once), runtime
// override read at every dispatch so tests and the CLI can pin per-case.
// ---------------------------------------------------------------------------

static SCALAR: ScalarBackend = ScalarBackend;
static PORTABLE: PortableSimdBackend = PortableSimdBackend;
#[cfg(target_arch = "x86_64")]
static AVX: AvxBackend = AvxBackend;
#[cfg(target_arch = "x86_64")]
static AVX512: Avx512Backend = Avx512Backend;

/// 0 = no override; otherwise `BackendKind` discriminant + 1.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn kind_to_u8(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Scalar => 1,
        BackendKind::Simd => 2,
        BackendKind::SimdPortable => 3,
    }
}

fn kind_from_u8(v: u8) -> Option<BackendKind> {
    match v {
        1 => Some(BackendKind::Scalar),
        2 => Some(BackendKind::Simd),
        3 => Some(BackendKind::SimdPortable),
        _ => None,
    }
}

/// Process-default backend: `RELOCK_BACKEND` if set and valid (a warning
/// goes to stderr otherwise), else the auto-dispatching `simd`.
fn default_backend() -> BackendKind {
    static DEFAULT: OnceLock<BackendKind> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("RELOCK_BACKEND") {
        Ok(s) => BackendKind::parse(&s).unwrap_or_else(|| {
            eprintln!("relock: unknown RELOCK_BACKEND {s:?}, using simd");
            BackendKind::Simd
        }),
        Err(_) => BackendKind::Simd,
    })
}

/// The effective backend kind: the runtime override when set (see
/// [`set_backend_override`]), else the process default. Read at every
/// gemm dispatch — never cached past a call.
pub fn backend_kind() -> BackendKind {
    kind_from_u8(BACKEND_OVERRIDE.load(Ordering::Relaxed)).unwrap_or_else(default_backend)
}

/// Pins (or with `None` releases) the backend for subsequent dispatches in
/// this process, overriding `RELOCK_BACKEND`. Tests use this to compare
/// backends in one process; `relock attack --backend` routes here.
pub fn set_backend_override(kind: Option<BackendKind>) {
    BACKEND_OVERRIDE.store(kind.map_or(0, kind_to_u8), Ordering::Relaxed);
}

/// Whether the AVX kernels are usable on this machine.
pub fn avx_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the register-blocked AVX-512 kernels are usable on this
/// machine. Checks `avx` too: the AVX-512 backend's `nt` kernels delegate
/// to the AVX ones.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx")
                && std::arch::is_x86_feature_detected!("avx512f")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a backend kind to its kernel implementation (`simd` → AVX-512
/// when available, else AVX, else the portable 4-wide kernels).
pub fn backend_for(kind: BackendKind) -> &'static dyn GemmBackend {
    match kind {
        BackendKind::Scalar => &SCALAR,
        BackendKind::SimdPortable => &PORTABLE,
        BackendKind::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx512_available() {
                    return &AVX512;
                }
                if avx_available() {
                    return &AVX;
                }
            }
            &PORTABLE
        }
    }
}

/// Every backend usable on this machine, the scalar reference first — the
/// sweep the property suites and the `hotpath` table iterate, so the
/// narrower SIMD backends stay covered even where `simd` resolves wider.
pub fn available_backends() -> Vec<&'static dyn GemmBackend> {
    #[allow(unused_mut)]
    let mut v: Vec<&'static dyn GemmBackend> = vec![&SCALAR, &PORTABLE];
    #[cfg(target_arch = "x86_64")]
    {
        if avx_available() {
            v.push(&AVX);
        }
        if avx512_available() {
            v.push(&AVX512);
        }
    }
    v
}

/// The backend every `gemm_*_into` dispatch uses right now.
pub fn active_backend() -> &'static dyn GemmBackend {
    backend_for(backend_kind())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            BackendKind::Scalar,
            BackendKind::Simd,
            BackendKind::SimdPortable,
        ] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("auto"), Some(BackendKind::Simd));
        assert_eq!(
            BackendKind::parse("portable"),
            Some(BackendKind::SimdPortable)
        );
        assert_eq!(BackendKind::parse("gpu"), None);
    }

    #[test]
    fn precision_parse_round_trips() {
        assert_eq!(Precision::parse("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse("F32"), Some(Precision::F32));
        assert_eq!(Precision::parse("half"), None);
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn simd_resolves_to_a_non_scalar_backend() {
        let be = backend_for(BackendKind::Simd);
        assert_ne!(be.name(), "scalar");
        if avx512_available() {
            assert_eq!(be.name(), "simd-avx512");
        } else if avx_available() {
            assert_eq!(be.name(), "simd-avx");
        } else {
            assert_eq!(be.name(), "simd-portable");
        }
    }

    #[test]
    fn available_backends_lists_scalar_first_and_the_resolved_simd() {
        let names: Vec<&str> = available_backends().iter().map(|b| b.name()).collect();
        assert_eq!(names[0], "scalar");
        assert!(names.contains(&"simd-portable"));
        let resolved = backend_for(BackendKind::Simd).name();
        assert!(names.contains(&resolved), "{names:?} missing {resolved}");
    }
}
