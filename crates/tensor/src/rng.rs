//! Deterministic pseudo-random numbers for reproducible experiments.
//!
//! Every stochastic choice in the workspace — dataset synthesis, weight
//! initialization, key sampling, critical-point line selection — flows
//! through [`Prng`], a xoshiro256++ generator seeded from a `u64`. Two runs
//! with the same seed produce bit-identical tensors on every platform, which
//! is what lets the integration tests assert exact key recovery.

use crate::Tensor;

/// A snapshot of a [`Prng`]'s internal state (see [`Prng::state`]). Plain
/// data, so checkpointing layers can serialize it and restore the exact
/// random stream after a crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrngState {
    /// The four xoshiro256++ state words.
    pub s: [u64; 4],
    /// The cached second output of the Box–Muller transform, if any.
    pub spare_normal: Option<f64>,
}

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// ```
/// use relock_tensor::rng::Prng;
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Prng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Prng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for giving each thread
    /// or each experimental arm its own stream.
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Captures the full generator state — the xoshiro words plus the
    /// cached Box–Muller spare — so a checkpointed computation can resume
    /// its random stream bit-exactly. Restore with [`Prng::from_state`].
    pub fn state(&self) -> PrngState {
        PrngState {
            s: self.s,
            spare_normal: self.spare_normal,
        }
    }

    /// Rebuilds a generator from a captured [`PrngState`]. The restored
    /// generator continues the stream exactly where [`Prng::state`] cut it:
    ///
    /// ```
    /// use relock_tensor::rng::Prng;
    /// let mut a = Prng::seed_from_u64(7);
    /// a.normal(); // leaves a cached spare normal behind
    /// let mut b = Prng::from_state(a.state());
    /// assert_eq!(a.normal(), b.normal());
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn from_state(state: PrngState) -> Prng {
        Prng {
            s: state.s,
            spare_normal: state.spare_normal,
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Rejection sampling to avoid modulo bias.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard normal via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Tensor of i.i.d. standard normals.
    pub fn normal_tensor(&mut self, shape: impl Into<crate::Shape>) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| self.normal()).collect();
        Tensor::from_vec(data, shape)
    }

    /// Tensor of i.i.d. uniforms in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_tensor(&mut self, shape: impl Into<crate::Shape>, lo: f64, hi: f64) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel())
            .map(|_| self.uniform_in(lo, hi))
            .collect();
        Tensor::from_vec(data, shape)
    }

    /// Kaiming/He-normal initialization for a layer with `fan_in` inputs,
    /// the standard choice for ReLU networks.
    pub fn kaiming_tensor(&mut self, shape: impl Into<crate::Shape>, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f64).sqrt();
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| self.normal() * std).collect();
        Tensor::from_vec(data, shape)
    }

    /// A random unit vector in `R^n` (direction of a line in §3.5).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn unit_vector(&mut self, n: usize) -> Tensor {
        assert!(n > 0, "unit vector needs n > 0");
        loop {
            let v = self.normal_tensor([n]);
            let norm = v.norm();
            if norm > 1e-12 {
                return v.scale(1.0 / norm);
            }
        }
    }

    /// Samples `k` distinct indices from `0..n` (Floyd's algorithm order is
    /// not needed; we shuffle a prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = Prng::seed_from_u64(2);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Prng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_indices_distinct() {
        let mut rng = Prng::seed_from_u64(4);
        let idx = rng.choose_indices(50, 20);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..10 {
            let v = rng.unit_vector(13);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut a = Prng::seed_from_u64(77);
        // Consume an odd number of normals so a spare is cached, then some
        // raw words — the snapshot must capture both.
        for _ in 0..7 {
            a.normal();
        }
        a.next_u64();
        let snap = a.state();
        let mut b = Prng::from_state(snap);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.normal(), b.normal());
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = Prng::seed_from_u64(6);
        let mut child = a.fork();
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
