//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolutions in the graph crate are lowered to matrix products: the input
//! image is unfolded into a "column" matrix whose rows are receptive-field
//! patches; a convolution is then `patches · kernelᵀ`. The adjoint operation
//! [`col2im`] folds gradients back, accumulating overlaps — exactly what the
//! backward pass needs.

use crate::Tensor;

/// Spatial geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Number of output spatial positions.
    pub fn out_positions(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Patch length: `in_channels * k_h * k_w`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Validates that the geometry divides evenly and is non-degenerate.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (zero-sized kernel, kernel larger
    /// than the padded input, or zero stride).
    pub fn validate(&self) {
        assert!(self.stride >= 1, "stride must be >= 1");
        assert!(self.k_h >= 1 && self.k_w >= 1, "kernel must be non-empty");
        assert!(
            self.in_h + 2 * self.pad >= self.k_h && self.in_w + 2 * self.pad >= self.k_w,
            "kernel {}x{} larger than padded input {}x{}",
            self.k_h,
            self.k_w,
            self.in_h + 2 * self.pad,
            self.in_w + 2 * self.pad
        );
    }
}

/// Unfolds an image `(C, H, W)` into a patch matrix
/// `(out_h * out_w, C * k_h * k_w)`.
///
/// # Panics
///
/// Panics if `image.numel() != C*H*W` for the geometry.
pub fn im2col(image: &Tensor, g: &ConvGeometry) -> Tensor {
    g.validate();
    assert_eq!(
        image.numel(),
        g.in_channels * g.in_h * g.in_w,
        "image size mismatch"
    );
    let img = image.as_slice();
    let (oh, ow) = (g.out_h(), g.out_w());
    let plen = g.patch_len();
    let mut out = vec![0.0f64; oh * ow * plen];
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * plen;
            let mut p = 0usize;
            for c in 0..g.in_channels {
                let cbase = c * g.in_h * g.in_w;
                for ky in 0..g.k_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        out[row + p] =
                            if iy >= 0 && iy < g.in_h as isize && ix >= 0 && ix < g.in_w as isize {
                                img[cbase + iy as usize * g.in_w + ix as usize]
                            } else {
                                0.0
                            };
                        p += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, [oh * ow, plen])
}

/// Folds a patch-matrix gradient back into an image gradient, accumulating
/// overlapping contributions. The adjoint of [`im2col`].
///
/// # Panics
///
/// Panics if `cols` has the wrong shape for the geometry.
pub fn col2im(cols: &Tensor, g: &ConvGeometry) -> Tensor {
    g.validate();
    let (oh, ow) = (g.out_h(), g.out_w());
    let plen = g.patch_len();
    assert_eq!(cols.dims(), &[oh * ow, plen], "cols shape mismatch");
    let cdata = cols.as_slice();
    let mut img = vec![0.0f64; g.in_channels * g.in_h * g.in_w];
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * plen;
            let mut p = 0usize;
            for c in 0..g.in_channels {
                let cbase = c * g.in_h * g.in_w;
                for ky in 0..g.k_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && iy < g.in_h as isize && ix >= 0 && ix < g.in_w as isize {
                            img[cbase + iy as usize * g.in_w + ix as usize] += cdata[row + p];
                        }
                        p += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(img, [g.in_channels * g.in_h * g.in_w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn geom() -> ConvGeometry {
        ConvGeometry {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom();
        assert_eq!(g.out_h(), 4);
        assert_eq!(g.out_w(), 4);
        assert_eq!(g.patch_len(), 18);
        let strided = ConvGeometry { stride: 2, ..g };
        assert_eq!(strided.out_h(), 2);
    }

    #[test]
    fn im2col_extracts_center_patch() {
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 0,
        };
        let img = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let cols = im2col(&img, &g);
        assert_eq!(cols.dims(), &[1, 9]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn padding_produces_zeros_at_border() {
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let img = Tensor::ones([4]);
        let cols = im2col(&img, &g);
        // Top-left output position: only the bottom-right 2x2 of the kernel
        // overlaps real pixels.
        let first = cols.row(0);
        assert_eq!(first[0], 0.0);
        assert_eq!(first[4], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which the conv backward pass relies on.
        let g = geom();
        let mut rng = Prng::seed_from_u64(31);
        let x = rng.normal_tensor([g.in_channels * g.in_h * g.in_w]);
        let y = rng.normal_tensor([g.out_positions(), g.patch_len()]);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.dot(&col2im(&y, &g));
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn degenerate_geometry_panics() {
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 5,
            k_w: 5,
            stride: 1,
            pad: 0,
        };
        g.validate();
    }
}
