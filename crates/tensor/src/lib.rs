//! Dense `f64` tensor and linear-algebra substrate for the `relock` workspace.
//!
//! The DAC'24 DNN-decryption attack is, at its core, exact linear algebra over
//! the piecewise-linear structure of deep ReLU networks. This crate provides
//! the numerical kernel that everything else builds on:
//!
//! - [`Tensor`]: a row-major, heap-allocated `f64` tensor with shape/stride
//!   bookkeeping, element-wise arithmetic, matrix products and reductions;
//! - [`linalg`]: Householder-QR factorizations and the *minimum-norm
//!   least-squares* solver used by the attack's pre-image computation
//!   (paper §3.3, Algorithm 1 line 7);
//! - [`rng`]: a small, fully deterministic xoshiro256++ PRNG so that every
//!   experiment in the workspace is reproducible bit-for-bit;
//! - [`im2col`]: the image-to-column lowering used by the convolution ops;
//! - [`backend`]: the dispatched gemm engine — scalar reference, SIMD, and
//!   f32 kernels, all bit-identical per precision (see [`BackendKind`] and
//!   [`Precision`]).
//!
//! # Example
//!
//! ```
//! use relock_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = Tensor::from_slice(&[1.0, 1.0]);
//! let y = a.matvec(&x);
//! assert_eq!(y.as_slice(), &[3.0, 7.0]);
//! ```

pub mod backend;
pub mod compute;
pub mod im2col;
pub mod linalg;
pub mod rng;
mod shape;
mod tensor;

pub use backend::{BackendKind, GemmBackend, Precision};
pub use shape::Shape;
pub use tensor::Tensor;

/// Numerical tolerance used across the workspace when deciding whether two
/// floating-point values are "the same" after exact-in-theory arithmetic.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser), the standard mixed comparison.
///
/// ```
/// assert!(relock_tensor::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!relock_tensor::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-12), 1e-9));
        assert!(!approx_eq(1e-3, 2e-3, 1e-9));
    }
}
