//! The dense row-major `f64` tensor.

use crate::Shape;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense, heap-allocated, row-major `f64` tensor.
///
/// `Tensor` is the single numeric container used throughout the workspace:
/// network weights, activations, Jacobians and oracle outputs all flow
/// through it. It favours explicitness and numerical clarity over raw
/// throughput: every operation is safe Rust over a flat `Vec<f64>`.
///
/// ```
/// use relock_tensor::Tensor;
/// let a = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let b = Tensor::from_rows(&[&[2.0, 3.0], &[4.0, 5.0]]);
/// assert_eq!(a.matmul(&b).as_slice(), b.as_slice());
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f64>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f64) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Wraps existing data in a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f64>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { data, shape }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f64]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(vec![data.len()]),
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, [rows.len(), cols])
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f64) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The `j`-th standard basis vector of `R^n` (paper §3.3, `e_{i,j}`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    pub fn basis(n: usize, j: usize) -> Self {
        assert!(j < n, "basis index {j} out of range for R^{n}");
        let mut t = Tensor::zeros([n]);
        t.data[j] = 1.0;
        t
    }

    // ------------------------------------------------------------ accessors

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// The flat data, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat data, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, idx: &[usize]) -> f64 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Element of a rank-2 tensor.
    #[inline]
    pub fn get2(&self, r: usize, c: usize) -> f64 {
        debug_assert!(self.shape.is_matrix());
        self.data[r * self.shape.dim(1) + c]
    }

    /// Sets an element of a rank-2 tensor.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(self.shape.is_matrix());
        let cols = self.shape.dim(1);
        self.data[r * cols + c] = v;
    }

    /// Row `r` of a rank-2 tensor, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(self.shape.is_matrix(), "row() requires a matrix");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(self.shape.is_matrix(), "row_mut() requires a matrix");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    // ---------------------------------------------------------- shape moves

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "cannot reshape {} elements into {}",
            self.numel(),
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Consuming variant of [`reshape`](Self::reshape); avoids the copy.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn into_reshaped(mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(self.numel(), shape.numel());
        self.shape = shape;
        self
    }

    /// Matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert!(self.shape.is_matrix(), "transpose() requires a matrix");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros([n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    // -------------------------------------------------------- element-wise

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self = y + alpha * x`, reusing `self`'s buffer (shape and previous
    /// contents are discarded). The in-place composition of clone + axpy
    /// that the attack's probe-point loops lean on.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` shapes differ.
    pub fn axpy_into(&mut self, alpha: f64, x: &Tensor, y: &Tensor) {
        assert_eq!(x.shape, y.shape, "axpy_into shape mismatch");
        self.data.clear();
        self.data
            .extend(y.data.iter().zip(&x.data).map(|(&yv, &xv)| yv + alpha * xv));
        self.shape = y.shape.clone();
    }

    /// Re-shapes `self` for use as an output buffer: sets `shape`, grows or
    /// shrinks `data` to match (retaining capacity), and leaves the element
    /// contents unspecified — callers overwrite them.
    pub fn reset_shape(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.data.resize(shape.numel(), 0.0);
        self.shape = shape;
    }

    /// Multiplies every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f64) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        self.map_inplace(|x| alpha * x);
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element. Returns negative infinity for an empty tensor.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Euclidean norm of the flattened data.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// L∞ norm of the flattened data.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Dot product of two same-shaped tensors, over the flattened data.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// L∞ distance between two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    // -------------------------------------------------------- linear algebra

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert!(
            self.shape.is_matrix() && other.shape.is_matrix(),
            "matmul requires matrices, got {} x {}",
            self.shape,
            other.shape
        );
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
        let mut out = vec![0.0f64; m * n];
        crate::compute::gemm_nn_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, [m, n])
    }

    /// [`matmul`](Self::matmul) writing into `out`, reusing its buffer.
    ///
    /// Bit-identical to the allocating form; `out`'s previous contents and
    /// shape are discarded.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`matmul`](Self::matmul).
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert!(
            self.shape.is_matrix() && other.shape.is_matrix(),
            "matmul requires matrices, got {} x {}",
            self.shape,
            other.shape
        );
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
        out.reset_shape([m, n]);
        crate::compute::gemm_nn_into(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// `A · Bᵀ` without materializing the transpose.
    ///
    /// For `A: m×k` and `B: n×k`, returns `m×n`. This is the layout used by
    /// batched linear layers (`X · Wᵀ` with `W` stored out×in).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the `k` dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert!(
            self.shape.is_matrix() && other.shape.is_matrix(),
            "matmul_nt requires matrices"
        );
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", k, k2);
        let mut out = vec![0.0f64; m * n];
        crate::compute::gemm_nt_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, [m, n])
    }

    /// [`matmul_nt`](Self::matmul_nt) writing into `out`, reusing its
    /// buffer. Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`matmul_nt`](Self::matmul_nt).
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert!(
            self.shape.is_matrix() && other.shape.is_matrix(),
            "matmul_nt requires matrices"
        );
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", k, k2);
        out.reset_shape([m, n]);
        crate::compute::gemm_nt_into(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// `Aᵀ · B` without materializing the transpose.
    ///
    /// For `A: k×m` and `B: k×n`, returns `m×n`. This is the layout of
    /// weight-gradient accumulation (`Xᵀ · dY`).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the `k` dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert!(
            self.shape.is_matrix() && other.shape.is_matrix(),
            "matmul_tn requires matrices"
        );
        let (k, m) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", k, k2);
        let mut out = vec![0.0f64; m * n];
        crate::compute::gemm_tn_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, [m, n])
    }

    /// [`matmul_tn`](Self::matmul_tn) writing into `out`, reusing its
    /// buffer. Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`matmul_tn`](Self::matmul_tn).
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor) {
        assert!(
            self.shape.is_matrix() && other.shape.is_matrix(),
            "matmul_tn requires matrices"
        );
        let (k, m) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", k, k2);
        out.reset_shape([m, n]);
        crate::compute::gemm_tn_into(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a matrix, `x` is not a vector, or the
    /// dimensions are incompatible.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert!(self.shape.is_matrix(), "matvec requires a matrix");
        assert!(x.shape.is_vector(), "matvec requires a vector");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(n, x.numel(), "matvec dims: {}x{} vs {}", m, n, x.numel());
        let mut out = vec![0.0f64; m];
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            out[i] = row.iter().zip(&x.data).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, [m])
    }

    /// `Aᵀ x` without materializing the transpose.
    ///
    /// Unlike the dense gemm kernels, this keeps its `x[i] == 0` skip: the
    /// Jacobian push path feeds it genuinely sparse mask-gated vectors,
    /// where the skip wins (the dense matmuls dropped theirs — on dense
    /// data the branch only mispredicts).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (see [`matvec`](Self::matvec)).
    pub fn matvec_t(&self, x: &Tensor) -> Tensor {
        assert!(self.shape.is_matrix(), "matvec_t requires a matrix");
        assert!(x.shape.is_vector(), "matvec_t requires a vector");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(m, x.numel(), "matvec_t dims: {}x{} vs {}", m, n, x.numel());
        let mut out = vec![0.0f64; n];
        for i in 0..m {
            let xi = x.data[i];
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * n..(i + 1) * n];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += xi * a;
            }
        }
        Tensor::from_vec(out, [n])
    }

    /// Numerically stable softmax over the flattened data.
    pub fn softmax(&self) -> Tensor {
        let m = self.max();
        let mut out = self.map(|x| (x - m).exp());
        let s = out.sum();
        out.scale_inplace(1.0 / s);
        out
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .. {} elements .. , {:.4}]",
                self.data[0],
                self.data[1],
                self.numel(),
                self.data[self.numel() - 1]
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f64) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_and_transpose_agree() {
        let a = Tensor::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let x = Tensor::from_slice(&[2.0, 1.0, -1.0]);
        let y = a.matvec(&x);
        assert_eq!(y.as_slice(), &[-0.5, 2.0]);
        let z = a.matvec_t(&y);
        let z2 = a.transpose().matvec(&y);
        assert!(z.max_abs_diff(&z2) < 1e-15);
    }

    #[test]
    fn matmul_nt_tn_agree_with_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -2.0, 0.0]]);
        let nt = a.matmul_nt(&b);
        assert!(nt.max_abs_diff(&a.matmul(&b.transpose())) < 1e-15);
        let c = Tensor::from_rows(&[&[1.0, -1.0], &[0.0, 2.0]]);
        let tn = c.matmul_tn(&a);
        assert!(tn.max_abs_diff(&c.transpose().matmul(&a)) < 1e-15);
    }

    #[test]
    fn basis_vector() {
        let e = Tensor::basis(4, 2);
        assert_eq!(e.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let t = Tensor::from_slice(&[1000.0, 1000.0, 999.0]);
        let s = t.softmax();
        assert!((s.sum() - 1.0).abs() < 1e-12);
        assert!(s.as_slice().iter().all(|&p| p.is_finite() && p > 0.0));
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_slice(&[0.0, 5.0, 5.0, 1.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, -10.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, -3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let m = t.reshape([2, 3]);
        assert_eq!(m.get2(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn operators() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }
}
