//! Property-style tests of the tensor crate's numerical kernels
//! (randomized with the in-tree `Prng`; no external test dependencies).

use relock_tensor::im2col::{col2im, im2col, ConvGeometry};
use relock_tensor::linalg::{preimage, QrFactors};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

const CASES: u64 = 48;

fn rand_matrix(seed: u64, m: usize, n: usize) -> Tensor {
    Prng::seed_from_u64(seed).normal_tensor([m, n])
}

/// Matrix multiplication is associative (within floating tolerance).
#[test]
fn matmul_associative() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let (m, k, l, n) = (
            1 + (seed as usize) % 5,
            1 + (seed as usize / 5) % 5,
            1 + (seed as usize / 25) % 5,
            1 + (seed as usize / 125) % 5,
        );
        let a = rng.normal_tensor([m, k]);
        let b = rng.normal_tensor([k, l]);
        let c = rng.normal_tensor([l, n]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-10, "seed {seed}");
    }
}

/// matmul_nt/matmul_tn agree with the explicit transpose forms.
#[test]
fn transposed_products_agree() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let (m, k, n) = (
            1 + (seed as usize) % 6,
            1 + (seed as usize / 7) % 6,
            1 + (seed as usize / 49) % 6,
        );
        let a = rng.normal_tensor([m, k]);
        let b = rng.normal_tensor([n, k]);
        assert!(
            a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-12,
            "seed {seed}"
        );
        let c = rng.normal_tensor([k, m]);
        let d = rng.normal_tensor([k, n]);
        assert!(
            c.matmul_tn(&d).max_abs_diff(&c.transpose().matmul(&d)) < 1e-12,
            "seed {seed}"
        );
    }
}

/// QR least squares reproduces planted solutions of tall systems.
#[test]
fn qr_solves_planted_tall_systems() {
    for seed in 0..CASES {
        let n = 2 + (seed as usize) % 6;
        let m = n + (seed as usize / 7) % 6;
        let a = rand_matrix(seed.wrapping_add(1), m, n);
        let x_true = Prng::seed_from_u64(seed.wrapping_add(2)).normal_tensor([n]);
        let b = a.matvec(&x_true);
        let x = QrFactors::compute(&a).solve_least_squares(&b);
        assert!(x.max_abs_diff(&x_true) < 1e-7, "seed {seed} m={m} n={n}");
    }
}

/// The min-norm pre-image of a wide system is orthogonal to the null
/// space (that is what "minimum-norm" means).
#[test]
fn preimage_is_minimum_norm() {
    for seed in 0..CASES {
        let m = 2 + (seed as usize) % 4;
        let n = m + 2 + (seed as usize / 11) % 6;
        let a = rand_matrix(seed.wrapping_add(3), m, n);
        let b = Prng::seed_from_u64(seed.wrapping_add(4)).normal_tensor([m]);
        let p = preimage(&a, &b, 1e-8).expect("random wide systems are onto");
        // Build a null vector: w − A⁺(Aw).
        let w = Prng::seed_from_u64(seed.wrapping_add(5)).normal_tensor([n]);
        let back = preimage(&a, &a.matvec(&w), 1e-8).expect("consistent");
        let null = &w - &back.v;
        assert!(a.matvec(&null).norm_inf() < 1e-6, "seed {seed}");
        assert!(p.v.dot(&null).abs() < 1e-6, "seed {seed}");
    }
}

/// im2col/col2im are adjoint for arbitrary geometries.
#[test]
fn im2col_adjoint() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let g = ConvGeometry {
            in_channels: 1 + (seed as usize) % 3,
            in_h: 4 + (seed as usize / 3) % 4,
            in_w: 4 + (seed as usize / 12) % 4,
            k_h: 1 + (seed as usize / 48) % 3,
            k_w: 1 + (seed as usize / 144) % 3,
            stride: 1 + (seed as usize / 432) % 2,
            pad: (seed as usize / 864) % 2,
        };
        let x = rng.normal_tensor([g.in_channels * g.in_h * g.in_w]);
        let y = rng.normal_tensor([g.out_positions(), g.patch_len()]);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.dot(&col2im(&y, &g));
        assert!((lhs - rhs).abs() < 1e-9, "seed {seed} geometry {g:?}");
    }
}

/// The PRNG's uniform integers are bounded and its unit vectors are
/// normalized, for any seed.
#[test]
fn prng_contracts() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.below(49);
        assert!(rng.below(n) < n);
        let v = rng.unit_vector(n);
        assert!((v.norm() - 1.0).abs() < 1e-12, "seed {seed} n={n}");
        let idx = rng.choose_indices(n, n.min(5));
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), idx.len(), "seed {seed}");
    }
}

/// Softmax output is a probability vector for any finite input.
#[test]
fn softmax_is_probability() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let len = 1 + rng.below(19);
        let v: Vec<f64> = (0..len).map(|_| (rng.uniform() - 0.5) * 2e3).collect();
        let s = Tensor::from_slice(&v).softmax();
        assert!((s.sum() - 1.0).abs() < 1e-9, "seed {seed}");
        assert!(s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
