//! Property-based tests of the tensor crate's numerical kernels.

use proptest::prelude::*;
use relock_tensor::im2col::{col2im, im2col, ConvGeometry};
use relock_tensor::linalg::{preimage, QrFactors};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

fn rand_matrix(seed: u64, m: usize, n: usize) -> Tensor {
    Prng::seed_from_u64(seed).normal_tensor([m, n])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matrix multiplication is associative (within floating tolerance).
    #[test]
    fn matmul_associative(seed in 0u64..10_000) {
        let mut rng = Prng::seed_from_u64(seed);
        let (m, k, l, n) = (
            1 + (seed as usize) % 5,
            1 + (seed as usize / 5) % 5,
            1 + (seed as usize / 25) % 5,
            1 + (seed as usize / 125) % 5,
        );
        let a = rng.normal_tensor([m, k]);
        let b = rng.normal_tensor([k, l]);
        let c = rng.normal_tensor([l, n]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    /// matmul_nt/matmul_tn agree with the explicit transpose forms.
    #[test]
    fn transposed_products_agree(seed in 0u64..10_000) {
        let mut rng = Prng::seed_from_u64(seed);
        let (m, k, n) = (
            1 + (seed as usize) % 6,
            1 + (seed as usize / 7) % 6,
            1 + (seed as usize / 49) % 6,
        );
        let a = rng.normal_tensor([m, k]);
        let b = rng.normal_tensor([n, k]);
        prop_assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-12);
        let c = rng.normal_tensor([k, m]);
        let d = rng.normal_tensor([k, n]);
        prop_assert!(c.matmul_tn(&d).max_abs_diff(&c.transpose().matmul(&d)) < 1e-12);
    }

    /// QR least squares reproduces planted solutions of tall systems.
    #[test]
    fn qr_solves_planted_tall_systems(seed in 0u64..10_000) {
        let n = 2 + (seed as usize) % 6;
        let m = n + (seed as usize / 7) % 6;
        let a = rand_matrix(seed.wrapping_add(1), m, n);
        let x_true = Prng::seed_from_u64(seed.wrapping_add(2)).normal_tensor([n]);
        let b = a.matvec(&x_true);
        let x = QrFactors::compute(&a).solve_least_squares(&b);
        prop_assert!(x.max_abs_diff(&x_true) < 1e-7, "m={m} n={n}");
    }

    /// The min-norm pre-image of a wide system is orthogonal to the null
    /// space (that is what "minimum-norm" means).
    #[test]
    fn preimage_is_minimum_norm(seed in 0u64..10_000) {
        let m = 2 + (seed as usize) % 4;
        let n = m + 2 + (seed as usize / 11) % 6;
        let a = rand_matrix(seed.wrapping_add(3), m, n);
        let b = Prng::seed_from_u64(seed.wrapping_add(4)).normal_tensor([m]);
        let p = preimage(&a, &b, 1e-8).expect("random wide systems are onto");
        // Build a null vector: w − A⁺(Aw).
        let w = Prng::seed_from_u64(seed.wrapping_add(5)).normal_tensor([n]);
        let back = preimage(&a, &a.matvec(&w), 1e-8).expect("consistent");
        let null = &w - &back.v;
        prop_assert!(a.matvec(&null).norm_inf() < 1e-6);
        prop_assert!(p.v.dot(&null).abs() < 1e-6);
    }

    /// im2col/col2im are adjoint for arbitrary geometries.
    #[test]
    fn im2col_adjoint(seed in 0u64..10_000) {
        let mut rng = Prng::seed_from_u64(seed);
        let g = ConvGeometry {
            in_channels: 1 + (seed as usize) % 3,
            in_h: 4 + (seed as usize / 3) % 4,
            in_w: 4 + (seed as usize / 12) % 4,
            k_h: 1 + (seed as usize / 48) % 3,
            k_w: 1 + (seed as usize / 144) % 3,
            stride: 1 + (seed as usize / 432) % 2,
            pad: (seed as usize / 864) % 2,
        };
        let x = rng.normal_tensor([g.in_channels * g.in_h * g.in_w]);
        let y = rng.normal_tensor([g.out_positions(), g.patch_len()]);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.dot(&col2im(&y, &g));
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// The PRNG's uniform integers are bounded and its unit vectors are
    /// normalized, for any seed.
    #[test]
    fn prng_contracts(seed in 0u64..10_000, n in 1usize..50) {
        let mut rng = Prng::seed_from_u64(seed);
        prop_assert!(rng.below(n) < n);
        let v = rng.unit_vector(n);
        prop_assert!((v.norm() - 1.0).abs() < 1e-12);
        let idx = rng.choose_indices(n, n.min(5));
        let set: std::collections::HashSet<_> = idx.iter().collect();
        prop_assert_eq!(set.len(), idx.len());
    }

    /// Softmax output is a probability vector for any finite input.
    #[test]
    fn softmax_is_probability(v in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
        let s = Tensor::from_slice(&v).softmax();
        prop_assert!((s.sum() - 1.0).abs() < 1e-9);
        prop_assert!(s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
