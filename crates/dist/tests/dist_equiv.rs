//! Distributed equivalence and process-chaos suite: the multi-process
//! coordinator at 1, 2, and 4 worker processes must reproduce the
//! in-process sequential run *exactly* — recovered key, underlying query
//! count, broker accounting, and every checkpoint frame byte-for-byte —
//! and must keep doing so while workers are killed mid-query, stall their
//! heartbeats, or truncate frames on the wire. A kill-and-resume sweep
//! checks that RLCP checkpoints carry a distributed run across coordinator
//! crashes, and a budget-exhaustion test checks the circuit breaker's
//! in-process fallback.
//!
//! Victims, sinks, normalizers, and the trace assertions live in
//! `relock_attack::testutil`, shared with the in-process thread sweep and
//! the lock-variant matrix suite.

use relock_attack::testutil::{
    assert_chaos_traces_match, assert_traces_match, lenet_victim, mlp16_victim, normalize_frame,
    sequential_run, variant_victim, ModelFile, RecordingSink, RunTrace,
};
use relock_attack::{AttackConfig, CheckpointPolicy, Decryptor};
use relock_dist::{DistChaos, DistCoordinator, DistOptions, DistReport};
use relock_locking::{CountingOracle, LockVariant, LockedModel};
use relock_serve::{Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle};
use relock_tensor::rng::Prng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dist_worker")
}

/// Runs the attack through a [`DistCoordinator`] over real worker
/// processes.
fn dist_run(
    model: &LockedModel,
    model_file: &ModelFile,
    cfg: &AttackConfig,
    attack_seed: u64,
    opts: DistOptions,
) -> (RunTrace, DistReport) {
    let coord = DistCoordinator::new(&model_file.path, opts).expect("bind coordinator socket");
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let sink = RecordingSink::default();
    let (report, _status) = Decryptor::new(*cfg)
        .resume_with(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
            &sink,
            CheckpointPolicy::EVERY_CUT,
            &coord,
        )
        .unwrap();
    let dist_report = coord.report();
    (
        RunTrace {
            report,
            frames: sink.frames().iter().map(|f| normalize_frame(f)).collect(),
        },
        dist_report,
    )
}

/// The headline contract: 1 process == 2 processes == 4 processes,
/// byte-for-byte, against the in-process sequential reference.
fn assert_dist_matches_sequential(model: &LockedModel, seeds: &[u64], label: &str) {
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(model);
    for &seed in seeds {
        let reference = sequential_run(model, &cfg, seed);
        assert_eq!(
            reference.report.fidelity(model.true_key()),
            1.0,
            "{label} seed {seed}: sequential reference must recover the key exactly"
        );
        for workers in [1usize, 2, 4] {
            let mut opts = DistOptions::new(worker_bin());
            opts.workers = workers;
            let (t, dist) = dist_run(model, &file, &cfg, seed, opts);
            let ctx = format!("{label} seed {seed} workers {workers}");
            assert_traces_match(&t, &reference, &ctx);
            assert_eq!(dist.fell_back, None, "{ctx}: no fallback expected");
            assert_eq!(dist.respawns, 0, "{ctx}: no respawns expected");
        }
    }
}

#[test]
fn mlp16_worker_sweep_is_byte_identical_to_sequential() {
    assert_dist_matches_sequential(&mlp16_victim(), &[701, 702], "mlp16");
}

#[test]
fn lenet_worker_sweep_is_byte_identical_to_sequential() {
    assert_dist_matches_sequential(&lenet_victim(), &[512], "lenet");
}

/// The adaptive controller (DESIGN.md §3i) derives every decision from
/// checkpointed counters, so routing the sharded phases across worker
/// *processes* must not perturb it: 1 and 4 workers reproduce the
/// adaptive in-process sequential run byte-for-byte, through the
/// correction-heavy learning path where the controller actually ramps
/// wave widths.
#[test]
fn adaptive_worker_sweep_is_byte_identical_to_sequential() {
    let model = mlp16_victim();
    let cfg = AttackConfig {
        disable_algebraic: true,
        adaptive: true,
        ..AttackConfig::fast()
    };
    let file = ModelFile::save(&model);
    for seed in [700u64, 732] {
        let reference = sequential_run(&model, &cfg, seed);
        assert_eq!(
            reference.report.fidelity(model.true_key()),
            1.0,
            "adaptive seed {seed}: sequential reference must recover the key exactly"
        );
        for workers in [1usize, 4] {
            let mut opts = DistOptions::new(worker_bin());
            opts.workers = workers;
            let (t, dist) = dist_run(&model, &file, &cfg, seed, opts);
            let ctx = format!("adaptive seed {seed} workers {workers}");
            assert_traces_match(&t, &reference, &ctx);
            assert_eq!(dist.fell_back, None, "{ctx}: no fallback expected");
        }
    }
}

/// Trigger-locked victims have no per-unit lock sites, so the coordinator
/// has nothing to route — but a distributed run must still complete and
/// reproduce the in-process trace byte-for-byte rather than wedge or
/// panic on an empty work list.
#[test]
fn trigger_victims_survive_the_worker_sweep_byte_identically() {
    for (variant, label) in [
        (LockVariant::SarTrigger, "sar"),
        (LockVariant::AntiSatTrigger, "antisat"),
    ] {
        let model = variant_victim(variant, 8, 700);
        let cfg = AttackConfig {
            variant,
            ..AttackConfig::fast()
        };
        let file = ModelFile::save(&model);
        let reference = sequential_run(&model, &cfg, 701);
        for workers in [1usize, 2] {
            let mut opts = DistOptions::new(worker_bin());
            opts.workers = workers;
            let (t, dist) = dist_run(&model, &file, &cfg, 701, opts);
            let ctx = format!("{label} trigger workers {workers}");
            assert_traces_match(&t, &reference, &ctx);
            assert_eq!(dist.fell_back, None, "{ctx}: no fallback expected");
        }
    }
}

/// `kill -9` at scheduled routed-row points: the querying worker dies
/// before its batch reaches the broker, the lease expires, a replacement
/// respawns after the seeded backoff, and the final result is still
/// byte-identical to the sequential run.
#[test]
fn process_kill_chaos_recovers_the_exact_key() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 701);
    // Kill points live in routed-row space (worker-proxied traffic only),
    // so anchor them to a clean distributed run's actual totals.
    let mut probe_opts = DistOptions::new(worker_bin());
    probe_opts.workers = 4;
    let (_, clean) = dist_run(&model, &file, &cfg, 701, probe_opts);
    let rows = clean.routed_rows;
    assert!(
        rows > 20,
        "fixture must route enough traffic to kill into: {clean:?}"
    );
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 4;
    opts.chaos = DistChaos {
        kill_at_rows: vec![rows / 10, rows / 4, rows / 2],
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 701, opts);
    assert_chaos_traces_match(&t, &reference, "mlp16 kill-chaos workers 4");
    assert!(
        dist.lease_expiries >= 1,
        "at least one scheduled kill must fire: {dist:?}"
    );
    assert!(
        dist.respawns >= 1,
        "killed workers must be respawned: {dist:?}"
    );
    assert_eq!(dist.fell_back, None, "budget was not exhausted: {dist:?}");
}

/// A worker whose heartbeats stop mid-run is declared dead at the
/// deadline; its leased item is reassigned and the run completes
/// byte-identically.
#[test]
fn stalled_heartbeat_expires_the_lease_and_reassigns() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 703);
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 2;
    opts.heartbeat = Duration::from_millis(400);
    opts.chaos = DistChaos {
        stall_after_items: Some((0, 1)),
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 703, opts);
    assert_traces_match(&t, &reference, "mlp16 stalled-heartbeat workers 2");
    assert!(
        dist.lease_expiries >= 1,
        "the stalled worker must expire its lease: {dist:?}"
    );
    assert_eq!(dist.fell_back, None, "budget was not exhausted: {dist:?}");
}

/// A worker that writes a truncated frame and exits is indistinguishable
/// from wire corruption: the lease expires and the item is recomputed.
#[test]
fn truncated_frames_expire_the_lease() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 702);
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 2;
    opts.chaos = DistChaos {
        truncate_after_items: Some((1, 0)),
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 702, opts);
    assert_traces_match(&t, &reference, "mlp16 truncated-frame workers 2");
    assert!(
        dist.lease_expiries >= 1,
        "the truncating worker must expire its lease: {dist:?}"
    );
    assert_eq!(dist.fell_back, None, "budget was not exhausted: {dist:?}");
}

/// With a zero respawn budget, the first worker death opens the circuit
/// breaker: the run *falls back* to in-process execution — never a panic —
/// and still recovers the exact key with the exact query count.
#[test]
fn exhausted_respawn_budget_falls_back_in_process() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 701);
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 2;
    opts.heartbeat = Duration::from_millis(400);
    opts.respawn_budget = 0;
    opts.chaos = DistChaos {
        stall_after_items: Some((0, 0)),
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 701, opts);
    assert_traces_match(&t, &reference, "mlp16 breaker workers 2");
    assert!(
        dist.fell_back.is_some(),
        "the breaker must have opened: {dist:?}"
    );
    assert_eq!(dist.respawns, 0, "budget 0 permits no respawns: {dist:?}");
}

/// Kill-and-resume across RLCP cuts: the *coordinator* process dies (a
/// `ChaosOracle` panic standing in for SIGKILL) at scheduled points, and
/// each post-crash segment resumes from the last wave-aligned checkpoint
/// with a fresh broker AND a fresh coordinator + worker fleet. The final
/// key must match the uninterrupted sequential run exactly.
#[test]
fn kill_and_resume_across_rlcp_cuts_never_loses_the_key() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 701);
    let q = reference.report.queries;
    let crash_at: Vec<u64> = (1..=4).map(|i| i * q / 5).collect();
    let scheduled = crash_at.len();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig::crash_only(9, crash_at),
    );
    let dec = Decryptor::new(cfg);
    let sink = RecordingSink::default();
    let mut crashes = 0usize;
    let mut resumed_segments = 0usize;
    let report = loop {
        assert!(
            crashes <= scheduled,
            "more unwinds than scheduled crash points"
        );
        let mut opts = DistOptions::new(worker_bin());
        opts.workers = 2;
        let coord = DistCoordinator::new(&file.path, opts).expect("bind coordinator socket");
        let broker = Broker::with_config(&chaos, BrokerConfig::default());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(701);
            dec.resume_with(
                model.white_box(),
                &broker,
                &mut rng,
                &sink,
                CheckpointPolicy::EVERY_CUT,
                &coord,
            )
        }));
        match attempt {
            Ok(Ok((report, status))) => {
                if crashes > 0 {
                    assert!(
                        status.resumed(),
                        "post-crash segments must resume from a checkpoint, got {status:?}"
                    );
                }
                break report;
            }
            Ok(Err(e)) => panic!("attack error during dist soak: {e}"),
            Err(payload) => {
                payload
                    .downcast::<ChaosCrash>()
                    .expect("only scheduled chaos crashes should unwind");
                crashes += 1;
                resumed_segments += 1;
            }
        }
    };
    assert!(crashes > 0, "the soak must actually crash");
    assert!(resumed_segments > 0, "the soak must actually resume");
    assert_eq!(
        report.key, reference.report.key,
        "kill-and-resume across RLCP cuts lost the key"
    );
    assert_eq!(
        report.fidelity(model.true_key()),
        1.0,
        "resumed distributed run must recover the key exactly"
    );
}
