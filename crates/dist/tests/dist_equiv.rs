//! Distributed equivalence and process-chaos suite: the multi-process
//! coordinator at 1, 2, and 4 worker processes must reproduce the
//! in-process sequential run *exactly* — recovered key, underlying query
//! count, broker accounting, and every checkpoint frame byte-for-byte —
//! and must keep doing so while workers are killed mid-query, stall their
//! heartbeats, or truncate frames on the wire. A kill-and-resume sweep
//! checks that RLCP checkpoints carry a distributed run across coordinator
//! crashes, and a budget-exhaustion test checks the circuit breaker's
//! in-process fallback.

use relock_attack::{
    AttackConfig, AttackState, CheckpointPolicy, CheckpointSink, DecryptionReport, Decryptor,
};
use relock_dist::{DistChaos, DistCoordinator, DistOptions, DistReport};
use relock_locking::{CountingOracle, LockSpec, LockedModel};
use relock_nn::{build_lenet, build_mlp, LenetSpec, MlpSpec};
use relock_serve::{
    Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle, QueryStatsSnapshot,
};
use relock_tensor::rng::Prng;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dist_worker")
}

fn mlp16_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(700);
    build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::evenly(16),
        &mut rng,
    )
    .unwrap()
}

fn lenet_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(510);
    build_lenet(
        &LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 3,
            c2: 4,
            fc1: 10,
            fc2: 8,
            classes: 4,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap()
}

/// Saves the victim where worker processes can load it; deleted by
/// [`ModelFile::drop`] even when an assertion unwinds.
struct ModelFile {
    path: PathBuf,
}

impl ModelFile {
    fn save(model: &LockedModel) -> ModelFile {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "relock-dist-test-{}-{}.model",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = std::fs::File::create(&path).expect("create model file");
        model.save(&mut f).expect("save model");
        ModelFile { path }
    }
}

impl Drop for ModelFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Records every persisted frame so whole checkpoint histories compare.
#[derive(Default)]
struct RecordingSink {
    frames: Mutex<Vec<Vec<u8>>>,
}

impl RecordingSink {
    fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.lock().expect("sink poisoned").clone()
    }
}

impl CheckpointSink for RecordingSink {
    fn save(&self, bytes: &[u8]) -> io::Result<()> {
        self.frames
            .lock()
            .expect("sink poisoned")
            .push(bytes.to_vec());
        Ok(())
    }

    fn load(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.frames.lock().expect("sink poisoned").last().cloned())
    }
}

/// Zeroes a frame's wall-clock fields; everything else must already be
/// deterministic.
fn normalize_frame(frame: &[u8]) -> Vec<u8> {
    let mut st = AttackState::decode(frame).expect("engine wrote an undecodable frame");
    st.timing_nanos = [0; 4];
    st.stats.oracle_time = Duration::ZERO;
    st.encode()
}

/// Additionally zeroes the whole broker-stats block. Under process-kill
/// chaos a re-executed item legitimately re-*requests* rows (served from
/// the memo cache, so `underlying` never moves), which perturbs the
/// request-side accounting inside frames; the attack state proper — PRNG
/// streams, key bits, phase cuts — must still be byte-identical.
fn normalize_frame_no_stats(frame: &[u8]) -> Vec<u8> {
    let mut st = AttackState::decode(frame).expect("engine wrote an undecodable frame");
    st.timing_nanos = [0; 4];
    st.stats = QueryStatsSnapshot::default();
    st.encode()
}

fn strip_clock(stats: &QueryStatsSnapshot) -> QueryStatsSnapshot {
    let mut s = stats.clone();
    s.oracle_time = Duration::ZERO;
    s
}

struct RunTrace {
    report: DecryptionReport,
    frames: Vec<Vec<u8>>,
}

/// The in-process sequential reference every distributed run is held to.
fn sequential_run(model: &LockedModel, cfg: &AttackConfig, attack_seed: u64) -> RunTrace {
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let sink = RecordingSink::default();
    let (report, _status) = Decryptor::new(*cfg)
        .resume(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();
    RunTrace {
        report,
        frames: sink.frames().iter().map(|f| normalize_frame(f)).collect(),
    }
}

/// Runs the attack through a [`DistCoordinator`] over real worker
/// processes.
fn dist_run(
    model: &LockedModel,
    model_file: &ModelFile,
    cfg: &AttackConfig,
    attack_seed: u64,
    opts: DistOptions,
) -> (RunTrace, DistReport) {
    let coord = DistCoordinator::new(&model_file.path, opts).expect("bind coordinator socket");
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let sink = RecordingSink::default();
    let (report, _status) = Decryptor::new(*cfg)
        .resume_with(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
            &sink,
            CheckpointPolicy::EVERY_CUT,
            &coord,
        )
        .unwrap();
    let dist_report = coord.report();
    (
        RunTrace {
            report,
            frames: sink.frames().iter().map(|f| normalize_frame(f)).collect(),
        },
        dist_report,
    )
}

/// Asserts every observable the engine promises to keep stable.
fn assert_traces_match(t: &RunTrace, reference: &RunTrace, ctx: &str) {
    assert_eq!(
        t.report.key, reference.report.key,
        "{ctx}: recovered key diverged"
    );
    assert_eq!(
        t.report.queries, reference.report.queries,
        "{ctx}: underlying query count diverged"
    );
    assert_eq!(
        strip_clock(&t.report.stats),
        strip_clock(&reference.report.stats),
        "{ctx}: broker accounting diverged"
    );
    assert_eq!(
        t.frames.len(),
        reference.frames.len(),
        "{ctx}: checkpoint cadence diverged"
    );
    for (i, (p, r)) in t.frames.iter().zip(&reference.frames).enumerate() {
        assert_eq!(
            p,
            r,
            "{ctx}: checkpoint frame {i} of {} is not byte-identical",
            reference.frames.len()
        );
    }
}

/// The chaos-robust observables: the key, the paper's underlying query
/// count, and every checkpoint frame modulo request-side broker stats.
fn assert_chaos_traces_match(t: &RunTrace, reference: &RunTrace, ctx: &str) {
    assert_eq!(
        t.report.key, reference.report.key,
        "{ctx}: recovered key diverged"
    );
    assert_eq!(
        t.report.queries, reference.report.queries,
        "{ctx}: underlying query count diverged"
    );
    assert_eq!(
        t.frames.len(),
        reference.frames.len(),
        "{ctx}: checkpoint cadence diverged"
    );
    for (i, (p, r)) in t.frames.iter().zip(&reference.frames).enumerate() {
        assert_eq!(
            normalize_frame_no_stats(p),
            normalize_frame_no_stats(r),
            "{ctx}: checkpoint frame {i} diverged beyond broker stats"
        );
    }
}

/// The headline contract: 1 process == 2 processes == 4 processes,
/// byte-for-byte, against the in-process sequential reference.
fn assert_dist_matches_sequential(model: &LockedModel, seeds: &[u64], label: &str) {
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(model);
    for &seed in seeds {
        let reference = sequential_run(model, &cfg, seed);
        assert_eq!(
            reference.report.fidelity(model.true_key()),
            1.0,
            "{label} seed {seed}: sequential reference must recover the key exactly"
        );
        for workers in [1usize, 2, 4] {
            let mut opts = DistOptions::new(worker_bin());
            opts.workers = workers;
            let (t, dist) = dist_run(model, &file, &cfg, seed, opts);
            let ctx = format!("{label} seed {seed} workers {workers}");
            assert_traces_match(&t, &reference, &ctx);
            assert_eq!(dist.fell_back, None, "{ctx}: no fallback expected");
            assert_eq!(dist.respawns, 0, "{ctx}: no respawns expected");
        }
    }
}

#[test]
fn mlp16_worker_sweep_is_byte_identical_to_sequential() {
    assert_dist_matches_sequential(&mlp16_victim(), &[701, 702], "mlp16");
}

#[test]
fn lenet_worker_sweep_is_byte_identical_to_sequential() {
    assert_dist_matches_sequential(&lenet_victim(), &[512], "lenet");
}

/// `kill -9` at scheduled routed-row points: the querying worker dies
/// before its batch reaches the broker, the lease expires, a replacement
/// respawns after the seeded backoff, and the final result is still
/// byte-identical to the sequential run.
#[test]
fn process_kill_chaos_recovers_the_exact_key() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 701);
    // Kill points live in routed-row space (worker-proxied traffic only),
    // so anchor them to a clean distributed run's actual totals.
    let mut probe_opts = DistOptions::new(worker_bin());
    probe_opts.workers = 4;
    let (_, clean) = dist_run(&model, &file, &cfg, 701, probe_opts);
    let rows = clean.routed_rows;
    assert!(
        rows > 20,
        "fixture must route enough traffic to kill into: {clean:?}"
    );
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 4;
    opts.chaos = DistChaos {
        kill_at_rows: vec![rows / 10, rows / 4, rows / 2],
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 701, opts);
    assert_chaos_traces_match(&t, &reference, "mlp16 kill-chaos workers 4");
    assert!(
        dist.lease_expiries >= 1,
        "at least one scheduled kill must fire: {dist:?}"
    );
    assert!(
        dist.respawns >= 1,
        "killed workers must be respawned: {dist:?}"
    );
    assert_eq!(dist.fell_back, None, "budget was not exhausted: {dist:?}");
}

/// A worker whose heartbeats stop mid-run is declared dead at the
/// deadline; its leased item is reassigned and the run completes
/// byte-identically.
#[test]
fn stalled_heartbeat_expires_the_lease_and_reassigns() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 703);
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 2;
    opts.heartbeat = Duration::from_millis(400);
    opts.chaos = DistChaos {
        stall_after_items: Some((0, 1)),
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 703, opts);
    assert_traces_match(&t, &reference, "mlp16 stalled-heartbeat workers 2");
    assert!(
        dist.lease_expiries >= 1,
        "the stalled worker must expire its lease: {dist:?}"
    );
    assert_eq!(dist.fell_back, None, "budget was not exhausted: {dist:?}");
}

/// A worker that writes a truncated frame and exits is indistinguishable
/// from wire corruption: the lease expires and the item is recomputed.
#[test]
fn truncated_frames_expire_the_lease() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 702);
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 2;
    opts.chaos = DistChaos {
        truncate_after_items: Some((1, 0)),
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 702, opts);
    assert_traces_match(&t, &reference, "mlp16 truncated-frame workers 2");
    assert!(
        dist.lease_expiries >= 1,
        "the truncating worker must expire its lease: {dist:?}"
    );
    assert_eq!(dist.fell_back, None, "budget was not exhausted: {dist:?}");
}

/// With a zero respawn budget, the first worker death opens the circuit
/// breaker: the run *falls back* to in-process execution — never a panic —
/// and still recovers the exact key with the exact query count.
#[test]
fn exhausted_respawn_budget_falls_back_in_process() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 701);
    let mut opts = DistOptions::new(worker_bin());
    opts.workers = 2;
    opts.heartbeat = Duration::from_millis(400);
    opts.respawn_budget = 0;
    opts.chaos = DistChaos {
        stall_after_items: Some((0, 0)),
        ..DistChaos::default()
    };
    let (t, dist) = dist_run(&model, &file, &cfg, 701, opts);
    assert_traces_match(&t, &reference, "mlp16 breaker workers 2");
    assert!(
        dist.fell_back.is_some(),
        "the breaker must have opened: {dist:?}"
    );
    assert_eq!(dist.respawns, 0, "budget 0 permits no respawns: {dist:?}");
}

/// Kill-and-resume across RLCP cuts: the *coordinator* process dies (a
/// `ChaosOracle` panic standing in for SIGKILL) at scheduled points, and
/// each post-crash segment resumes from the last wave-aligned checkpoint
/// with a fresh broker AND a fresh coordinator + worker fleet. The final
/// key must match the uninterrupted sequential run exactly.
#[test]
fn kill_and_resume_across_rlcp_cuts_never_loses_the_key() {
    let model = mlp16_victim();
    let cfg = AttackConfig::fast();
    let file = ModelFile::save(&model);
    let reference = sequential_run(&model, &cfg, 701);
    let q = reference.report.queries;
    let crash_at: Vec<u64> = (1..=4).map(|i| i * q / 5).collect();
    let scheduled = crash_at.len();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig::crash_only(9, crash_at),
    );
    let dec = Decryptor::new(cfg);
    let sink = RecordingSink::default();
    let mut crashes = 0usize;
    let mut resumed_segments = 0usize;
    let report = loop {
        assert!(
            crashes <= scheduled,
            "more unwinds than scheduled crash points"
        );
        let mut opts = DistOptions::new(worker_bin());
        opts.workers = 2;
        let coord = DistCoordinator::new(&file.path, opts).expect("bind coordinator socket");
        let broker = Broker::with_config(&chaos, BrokerConfig::default());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(701);
            dec.resume_with(
                model.white_box(),
                &broker,
                &mut rng,
                &sink,
                CheckpointPolicy::EVERY_CUT,
                &coord,
            )
        }));
        match attempt {
            Ok(Ok((report, status))) => {
                if crashes > 0 {
                    assert!(
                        status.resumed(),
                        "post-crash segments must resume from a checkpoint, got {status:?}"
                    );
                }
                break report;
            }
            Ok(Err(e)) => panic!("attack error during dist soak: {e}"),
            Err(payload) => {
                payload
                    .downcast::<ChaosCrash>()
                    .expect("only scheduled chaos crashes should unwind");
                crashes += 1;
                resumed_segments += 1;
            }
        }
    };
    assert!(crashes > 0, "the soak must actually crash");
    assert!(resumed_segments > 0, "the soak must actually resume");
    assert_eq!(
        report.key, reference.report.key,
        "kill-and-resume across RLCP cuts lost the key"
    );
    assert_eq!(
        report.fidelity(model.true_key()),
        1.0,
        "resumed distributed run must recover the key exactly"
    );
}
