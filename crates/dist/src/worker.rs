//! The worker-process side of the distributed executor.
//!
//! A worker is a plain child process holding one Unix-socket connection
//! back to its coordinator. It owns a full white-box copy of the victim
//! (loaded from the `model_path` in the init frame — the graph is public
//! knowledge, only the *oracle* is scarce) and computes one work item at a
//! time: an Algorithm-1 site inference or a §3.8 correction-candidate
//! validation. Every oracle query the item issues is proxied back over
//! the same socket ([`WireOracle`]), so all traffic funnels through the
//! coordinator's single broker — the memoization/accounting invariant the
//! determinism argument in DESIGN.md §4b rests on.
//!
//! Liveness is proven by a side thread emitting `hb` frames at a quarter
//! of the coordinator's read deadline; any frame (heartbeat, query,
//! result) resets the deadline on the other side. The init frame may also
//! carry **chaos directives** (`stall_after`, `truncate_after`) that make
//! this incarnation misbehave on purpose — the process-level half of the
//! `ChaosOracle` harness.

use crate::proto::{
    decode_bits, decode_config, decode_f64s, decode_oracle_error, decode_rng, decode_target,
    encode_f64s, field_str, field_u64, verdict_str,
};
use relock_attack::key_bit_inference_with;
use relock_attack::key_vector_validation_checked_with;
use relock_campaign::{read_frame, write_frame, ProtoError};
use relock_graph::{KeyAssignment, KeySlot, LockSite, Workspace};
use relock_locking::{LockedModel, Oracle, OracleError};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use relock_trace::json::Value;
use std::collections::HashMap;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Grabs a mutex even when a sibling thread died holding it — the worker
/// is a disposable process, so a poisoned lock is not worth dying over.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An [`Oracle`] whose query surface is the coordinator socket: each
/// batch becomes a `q` frame, and the answer arrives as `qok` (hex f64
/// rows) or `qerr` (a transported [`OracleError`]).
struct WireOracle {
    reader: Arc<Mutex<UnixStream>>,
    writer: Arc<Mutex<UnixStream>>,
    input_dim: usize,
    output_dim: usize,
    rows: AtomicU64,
}

impl WireOracle {
    fn link_lost(why: impl std::fmt::Display) -> OracleError {
        OracleError::Backend {
            message: format!("coordinator link lost: {why}"),
            attempts: 1,
        }
    }
}

impl Oracle for WireOracle {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        self.try_query_batch(x)
            .expect("oracle failed; budget-aware callers use try_query_batch")
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        let rows = if x.rank() == 2 { x.dims()[0] } else { 1 };
        let doc = Value::Obj(vec![
            ("t".into(), Value::str("q")),
            ("rows".into(), Value::num_u64(rows as u64)),
            ("x".into(), Value::str(encode_f64s(x.as_slice()))),
        ]);
        write_frame(&mut &*lock(&self.writer), &doc).map_err(Self::link_lost)?;
        self.rows.fetch_add(rows as u64, Ordering::Relaxed);
        // The reply is the next q-transaction frame; the coordinator never
        // initiates traffic mid-item, so whatever arrives here is ours.
        let r = lock(&self.reader);
        match read_frame(&mut &*r) {
            Ok(Some(v)) => match v.get("t").and_then(Value::as_str) {
                Some("qok") => {
                    let rows = field_u64(&v, "rows")
                        .map_err(|e| Self::link_lost(format!("bad qok frame: {e}")))?
                        as usize;
                    let data = decode_f64s(
                        field_str(&v, "y")
                            .map_err(|e| Self::link_lost(format!("bad qok frame: {e}")))?,
                    )
                    .map_err(|e| Self::link_lost(format!("bad qok payload: {e}")))?;
                    if rows == 0 || !data.len().is_multiple_of(rows) {
                        return Err(Self::link_lost("qok payload does not tile into rows"));
                    }
                    let cols = data.len() / rows;
                    Ok(Tensor::from_vec(data, [rows, cols]))
                }
                Some("qerr") => Err(v
                    .get("err")
                    .map(|e| {
                        decode_oracle_error(e)
                            .unwrap_or_else(|why| Self::link_lost(format!("bad qerr frame: {why}")))
                    })
                    .unwrap_or_else(|| Self::link_lost("qerr frame without err"))),
                other => Err(Self::link_lost(format!(
                    "unexpected frame {other:?} inside a query transaction"
                ))),
            },
            Ok(None) => Err(Self::link_lost("EOF")),
            Err(e) => Err(Self::link_lost(e)),
        }
    }

    fn query_count(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }
}

/// Runs the worker protocol over the socket at `socket_path` until the
/// coordinator says `bye` or the connection drops. This is the entire
/// body of the `dist_worker` binary (and of the CLI's hidden
/// `dist-worker` subcommand).
///
/// # Errors
///
/// Returns a description of the first protocol or I/O failure. A clean
/// `bye`/EOF is `Ok`.
pub fn worker_main(socket_path: &str) -> Result<(), String> {
    let sock = UnixStream::connect(socket_path).map_err(|e| format!("{socket_path}: {e}"))?;
    let reader = Arc::new(Mutex::new(
        sock.try_clone().map_err(|e| format!("clone socket: {e}"))?,
    ));
    let writer = Arc::new(Mutex::new(sock));

    // ---- Init: model, config, heartbeat cadence, chaos directives. ----
    let init = match read_frame(&mut &*lock(&reader)) {
        Ok(Some(v)) => v,
        Ok(None) => return Ok(()), // coordinator gone before init: nothing to do
        Err(e) => return Err(format!("reading init frame: {e}")),
    };
    if init.get("t").and_then(Value::as_str) != Some("init") {
        return Err("first frame is not init".into());
    }
    let model_path = field_str(&init, "model_path").map_err(|e| e.to_string())?;
    let cfg = decode_config(
        init.get("cfg")
            .ok_or_else(|| "init frame without cfg".to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let heartbeat = Duration::from_nanos(field_u64(&init, "hb_nanos").map_err(|e| e.to_string())?);
    let stall_after = init.get("stall_after").and_then(Value::as_u64);
    let truncate_after = init.get("truncate_after").and_then(Value::as_u64);

    let file = std::fs::File::open(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let model = LockedModel::load(&mut std::io::BufReader::new(file))
        .map_err(|e| format!("{model_path}: {e}"))?;
    let g = model.white_box();
    let n_slots = g.key_slot_count();
    let site_of_slot: HashMap<usize, LockSite> = g
        .lock_sites()
        .into_iter()
        .map(|s| (s.slot.index(), s))
        .collect();

    let oracle = WireOracle {
        reader: reader.clone(),
        writer: writer.clone(),
        input_dim: g.input_size(),
        output_dim: g.output_size(),
        rows: AtomicU64::new(0),
    };

    write_frame(
        &mut &*lock(&writer),
        &Value::Obj(vec![("t".into(), Value::str("ready"))]),
    )
    .map_err(|e| format!("sending ready: {e}"))?;

    // ---- Heartbeat thread: 4 beats per coordinator deadline. ----
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb_handle = {
        let writer = writer.clone();
        let stop = hb_stop.clone();
        let interval = (heartbeat / 4).max(Duration::from_millis(1));
        std::thread::spawn(move || {
            let beat = Value::Obj(vec![("t".into(), Value::str("hb"))]);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if write_frame(&mut &*lock(&writer), &beat).is_err() {
                    break; // coordinator gone; the main loop will notice too
                }
            }
        })
    };

    // ---- Item loop. ----
    let mut ws = Workspace::new();
    let mut items_done: u64 = 0;
    let result = loop {
        let frame = match read_frame(&mut &*lock(&reader)) {
            Ok(Some(v)) => v,
            Ok(None) => break Ok(()), // clean EOF: coordinator closed us out
            Err(ProtoError::Io(e)) => break Err(format!("reading item frame: {e}")),
            Err(e) => break Err(format!("reading item frame: {e}")),
        };
        match frame.get("t").and_then(Value::as_str) {
            Some("bye") => break Ok(()),
            Some("hb") => continue, // tolerated, though the coordinator never beats
            Some("item") => {
                // Chaos directives fire on receipt of item `k`, exercising
                // exactly the failure the supervisor must absorb.
                if stall_after == Some(items_done) {
                    // Stalled heartbeat: the process stays alive but goes
                    // silent — only the coordinator's read deadline can
                    // tell this apart from a slow item.
                    hb_stop.store(true, Ordering::Relaxed);
                    let _ = hb_handle.join();
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                if truncate_after == Some(items_done) {
                    // Truncated frame: a length line promising bytes that
                    // never arrive, then a dead socket.
                    use std::io::Write;
                    let w = lock(&writer);
                    let _ = (&*w).write_all(b"999\n{\"t\":\"done\"");
                    let _ = (&*w).flush();
                    break Ok(());
                }
                let done = match run_item(&frame, g, n_slots, &site_of_slot, &oracle, &cfg, &mut ws)
                {
                    Ok(doc) => doc,
                    Err(e) => break Err(format!("work item failed: {e}")),
                };
                if let Err(e) = write_frame(&mut &*lock(&writer), &done) {
                    break Err(format!("sending result: {e}"));
                }
                items_done += 1;
            }
            other => break Err(format!("unexpected frame {other:?} between items")),
        }
    };
    hb_stop.store(true, Ordering::Relaxed);
    result
}

/// Decodes, computes, and encodes one work item.
fn run_item(
    frame: &Value,
    g: &relock_graph::Graph,
    n_slots: usize,
    site_of_slot: &HashMap<usize, LockSite>,
    oracle: &dyn Oracle,
    cfg: &relock_attack::AttackConfig,
    ws: &mut Workspace,
) -> Result<Value, ProtoError> {
    let job = field_u64(frame, "job")?;
    let mut ka = KeyAssignment::all_zero_bits(n_slots);
    let bits = decode_bits(field_str(frame, "ka")?)?;
    if bits.len() != n_slots {
        return Err(crate::proto::malformed(format!(
            "assignment carries {} bits, graph has {n_slots} slots",
            bits.len()
        )));
    }
    for (i, &b) in bits.iter().enumerate() {
        ka.set_bit(KeySlot(i), b);
    }
    let mut rng = Prng::from_state(decode_rng(
        frame
            .get("rng")
            .ok_or_else(|| crate::proto::malformed("item without rng"))?,
    )?);
    let mut fields = vec![
        ("t".to_string(), Value::str("done")),
        ("job".to_string(), Value::num_u64(job)),
    ];
    match field_str(frame, "kind")? {
        "infer" => {
            let slot = field_u64(frame, "slot")? as usize;
            let site = site_of_slot.get(&slot).ok_or_else(|| {
                crate::proto::malformed(format!("slot {slot} is not a lock site"))
            })?;
            let bit = key_bit_inference_with(g, ws, &ka, site, oracle, cfg, &mut rng);
            fields.push((
                "bit".to_string(),
                match bit {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                },
            ));
        }
        "validate" => {
            let target = frame.get("target").and_then(|t| match t {
                Value::Null => None,
                t => Some(decode_target(t)),
            });
            let target = match target {
                Some(Ok(t)) => Some(t),
                Some(Err(e)) => return Err(e),
                None => None,
            };
            match key_vector_validation_checked_with(
                g,
                ws,
                &ka,
                target.as_ref(),
                oracle,
                cfg,
                &mut rng,
            ) {
                Ok(v) => fields.push(("verdict".to_string(), Value::str(verdict_str(v)))),
                Err(e) => fields.push(("err".to_string(), crate::proto::encode_oracle_error(&e))),
            }
        }
        other => {
            return Err(crate::proto::malformed(format!(
                "unknown item kind {other:?}"
            )))
        }
    }
    Ok(Value::Obj(fields))
}
