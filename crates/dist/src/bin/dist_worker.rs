//! Standalone attack worker: connects to a `DistCoordinator` socket and
//! serves leased work items until told to stop. Normally spawned by the
//! coordinator itself, never by hand.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(socket), None) = (args.next(), args.next()) else {
        eprintln!("usage: dist_worker <socket-path>");
        return ExitCode::from(2);
    };
    match relock_dist::worker_main(&socket) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dist_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
