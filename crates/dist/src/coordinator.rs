//! The supervising coordinator: a multi-process [`PhaseExecutor`].
//!
//! [`DistCoordinator`] implements the executor seam of the Algorithm-2
//! driver (`Decryptor::run_brokered_with` / `resume_with`) by sharding
//! each sharded phase — per-site Algorithm-1 inference and §3.8
//! correction-wave validation — across local **worker processes** talking
//! the length-prefixed JSON frame protocol of `crates/campaign` over a
//! Unix socket.
//!
//! ## Determinism (DESIGN.md §4b)
//!
//! The driver forks one PRNG stream per item in canonical order and
//! merges results by index, so scheduling freedom cannot perturb the
//! outcome; the coordinator ships each item's stream snapshot in the item
//! frame and commits results into index-addressed slots. Every worker
//! oracle query is proxied back here and answered from the driver's
//! single broker, so memoization totals are sums over the same request
//! multiset no matter which process asked — 1 process and N processes are
//! byte-for-byte identical, keys, query counts, and checkpoint frames
//! included.
//!
//! ## Supervision
//!
//! - **Leases + heartbeats**: a popped work item is leased to the worker
//!   it was sent to. The socket's read deadline is the heartbeat deadline
//!   (workers beat at deadline/4; any frame proves liveness), so a silent
//!   worker — killed, stalled, or writing garbage — expires its lease:
//!   the item returns to the queue front and the process is discarded.
//! - **At-most-once commit**: result slots commit first-write-wins;
//!   duplicate late results are discarded deterministically (counted in
//!   [`DistReport::duplicate_discards`], never merged twice).
//! - **Respawn backoff**: replacement workers start after a bounded
//!   exponential backoff with seeded decorrelating jitter (the
//!   [`RetryPolicy`] schedule, salted by worker index).
//! - **Circuit breaker**: once total respawns exceed the budget the
//!   coordinator stops supervising and computes the remaining items
//!   in-process — the run *degrades* to the `LocalExecutor` semantics
//!   (`ResumeStatus::FellBack`-style, never a panic) and the reason is
//!   reported in [`DistReport::fell_back`].

use crate::proto::{
    decode_f64s, decode_oracle_error, encode_bits, encode_config, encode_f64s, encode_oracle_error,
    encode_rng, encode_target, field_str, field_u64, malformed, parse_verdict,
};
use relock_attack::{
    key_bit_inference_with, key_vector_validation_checked_with, AttackConfig, InferredBits,
    PhaseExecutor, ValidationTarget, ValidationVerdict,
};
use relock_campaign::{read_frame, write_frame, ProtoError};
use relock_graph::{Graph, KeyAssignment, KeySlot, LockSite, Workspace, WorkspacePool};
use relock_locking::{Oracle, OracleError};
use relock_serve::RetryPolicy;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use relock_trace::json::Value;
use std::collections::VecDeque;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default jitter stream key for respawn backoff.
const DEFAULT_RESPAWN_SEED: u64 = 0xd157_ba5e_0ff5_e7ed;

/// Grabs a mutex even if a handler thread panicked while holding it (a
/// `ChaosOracle` crash unwinding through a handler must not wedge the
/// coordinator's teardown).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Process-level fault injection, the process half of the chaos harness:
/// deterministic deaths the supervisor must absorb without changing the
/// recovered key.
#[derive(Debug, Clone, Default)]
pub struct DistChaos {
    /// Cumulative *routed* row counts at which the querying worker is
    /// killed (`SIGKILL`) before its batch reaches the broker — the
    /// moral equivalent of `kill -9` mid-query. Sorted and deduplicated
    /// on coordinator construction; each point fires once.
    pub kill_at_rows: Vec<u64>,
    /// `(worker, items)`: that worker's **first** incarnation goes silent
    /// (heartbeats stop, no reply) upon receiving its `items+1`-th item.
    /// Respawned incarnations behave.
    pub stall_after_items: Option<(usize, u64)>,
    /// `(worker, items)`: that worker's first incarnation writes a
    /// truncated frame and exits upon receiving its `items+1`-th item.
    pub truncate_after_items: Option<(usize, u64)>,
}

/// Coordinator policy: how many workers, how to spawn them, and how hard
/// to try keeping them alive.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Worker processes (≥ 1; clamped up).
    pub workers: usize,
    /// Program to spawn for each worker (e.g. the `dist_worker` binary,
    /// or the `relock` CLI itself).
    pub worker_program: PathBuf,
    /// Arguments before the socket path (e.g. `["dist-worker"]` for the
    /// CLI's hidden subcommand).
    pub worker_args: Vec<String>,
    /// Heartbeat deadline: a worker silent for this long is dead. Workers
    /// beat at a quarter of it.
    pub heartbeat: Duration,
    /// Total respawns (across all workers) before the circuit breaker
    /// opens and the run falls back to in-process execution.
    pub respawn_budget: u32,
    /// Respawn backoff schedule; `backoff_for(incarnation, worker)` is
    /// slept before each replacement spawn. `max_attempts` is unused —
    /// [`DistOptions::respawn_budget`] bounds retries instead.
    pub backoff: RetryPolicy,
    /// Fault injection (off by default).
    pub chaos: DistChaos,
}

impl DistOptions {
    /// Defaults for `program`: one worker, 2 s heartbeat deadline, 8
    /// respawns, 10 ms seeded-jitter exponential backoff.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        DistOptions {
            workers: 1,
            worker_program: program.into(),
            worker_args: Vec::new(),
            heartbeat: Duration::from_secs(2),
            respawn_budget: 8,
            backoff: RetryPolicy {
                max_attempts: u32::MAX,
                base_backoff: Duration::from_millis(10),
                multiplier: 2,
                jitter_pct: 50,
                jitter_seed: DEFAULT_RESPAWN_SEED,
            },
            chaos: DistChaos::default(),
        }
    }
}

/// Supervision counters of one coordinator's lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistReport {
    /// Configured worker processes.
    pub workers: usize,
    /// Replacement spawns performed.
    pub respawns: u64,
    /// Leases reclaimed from dead workers.
    pub lease_expiries: u64,
    /// Late duplicate results discarded by the at-most-once commit.
    pub duplicate_discards: u64,
    /// Total request rows proxied from workers to the broker (cache hits
    /// included) — the coordinate space of [`DistChaos::kill_at_rows`].
    pub routed_rows: u64,
    /// `Some(reason)` once the circuit breaker opened and the run
    /// completed in-process.
    pub fell_back: Option<String>,
}

/// A live worker: the child process and its accepted socket.
struct WorkerHandle {
    child: Child,
    sock: UnixStream,
}

/// Why a worker could not be (re)placed.
enum SpawnError {
    /// This attempt failed; the budget allows another (each failed
    /// attempt consumes an incarnation, so the budget bounds retries).
    Attempt,
    /// The respawn budget is exhausted — open the circuit breaker.
    Budget(String),
}

/// The multi-process executor. See the module docs for the protocol and
/// the supervision model; construction is cheap (workers spawn lazily on
/// the first sharded phase).
pub struct DistCoordinator {
    model_path: PathBuf,
    opts: DistOptions,
    listener: UnixListener,
    socket_path: PathBuf,
    /// Serializes spawn+accept pairs so an accepted connection is always
    /// the just-spawned child's.
    spawn_lock: Mutex<()>,
    slots: Vec<Mutex<Option<WorkerHandle>>>,
    /// Spawns performed per worker slot; incarnation 0 is the only one
    /// that receives chaos directives.
    incarnations: Vec<AtomicU64>,
    respawns: AtomicU64,
    lease_expiries: AtomicU64,
    duplicates: AtomicU64,
    fell_back: Mutex<Option<String>>,
    kill_points: Mutex<VecDeque<u64>>,
    routed_rows: AtomicU64,
    pool: WorkspacePool,
}

impl DistCoordinator {
    /// Binds the coordination socket. `model_path` must point at a
    /// `LockedModel::save` file — the worker's white-box transport.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the Unix socket cannot be created.
    pub fn new(model_path: impl Into<PathBuf>, opts: DistOptions) -> io::Result<DistCoordinator> {
        static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);
        let opts = DistOptions {
            workers: opts.workers.max(1),
            ..opts
        };
        let socket_path = std::env::temp_dir().join(format!(
            "relock-dist-{}-{}.sock",
            std::process::id(),
            SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let mut kill_points = opts.chaos.kill_at_rows.clone();
        kill_points.sort_unstable();
        kill_points.dedup();
        let workers = opts.workers;
        Ok(DistCoordinator {
            model_path: model_path.into(),
            opts,
            listener,
            socket_path,
            spawn_lock: Mutex::new(()),
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            incarnations: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            respawns: AtomicU64::new(0),
            lease_expiries: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            fell_back: Mutex::new(None),
            kill_points: Mutex::new(kill_points.into()),
            routed_rows: AtomicU64::new(0),
            pool: WorkspacePool::new(),
        })
    }

    /// Supervision counters so far.
    pub fn report(&self) -> DistReport {
        DistReport {
            workers: self.opts.workers,
            respawns: self.respawns.load(Ordering::Relaxed),
            lease_expiries: self.lease_expiries.load(Ordering::Relaxed),
            duplicate_discards: self.duplicates.load(Ordering::Relaxed),
            routed_rows: self.routed_rows.load(Ordering::Relaxed),
            fell_back: lock(&self.fell_back).clone(),
        }
    }

    fn fell_back_reason(&self) -> Option<String> {
        lock(&self.fell_back).clone()
    }

    /// Opens the circuit breaker (idempotent; first reason wins).
    fn trip_breaker(&self, reason: String) {
        let mut g = lock(&self.fell_back);
        if g.is_none() {
            relock_trace::counter("dist.fellback", 1);
            *g = Some(reason);
        }
    }

    /// Accepts the connection of a child spawned under `spawn_lock`.
    fn accept_within(&self, deadline: Duration) -> Result<UnixStream, String> {
        let until = Instant::now() + deadline;
        loop {
            match self.listener.accept() {
                Ok((sock, _)) => {
                    sock.set_nonblocking(false)
                        .map_err(|e| format!("worker socket: {e}"))?;
                    return Ok(sock);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= until {
                        return Err(format!("worker did not connect within {deadline:?}"));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
    }

    /// Spawns worker `w`, pairs its connection, sends init, awaits
    /// `ready`. Chaos directives apply to first incarnations only, so a
    /// respawned replacement behaves.
    fn spawn_worker(
        &self,
        w: usize,
        cfg: &AttackConfig,
        first_incarnation: bool,
    ) -> Result<WorkerHandle, String> {
        let _pairing = lock(&self.spawn_lock);
        let mut child = Command::new(&self.opts.worker_program)
            .args(&self.opts.worker_args)
            .arg(&self.socket_path)
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", self.opts.worker_program.display()))?;
        let sock = match self.accept_within(Duration::from_secs(10)) {
            Ok(s) => s,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        // The heartbeat deadline doubles as the read timeout: ANY frame —
        // beat, query, result — proves liveness and rearms it.
        if let Err(e) = sock.set_read_timeout(Some(self.opts.heartbeat)) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("worker socket: {e}"));
        }
        let mut init = vec![
            ("t".to_string(), Value::str("init")),
            (
                "model_path".to_string(),
                Value::str(self.model_path.display().to_string()),
            ),
            ("cfg".to_string(), encode_config(cfg)),
            (
                "hb_nanos".to_string(),
                Value::num_u64(self.opts.heartbeat.as_nanos() as u64),
            ),
        ];
        if first_incarnation {
            if let Some((cw, items)) = self.opts.chaos.stall_after_items {
                if cw == w {
                    init.push(("stall_after".to_string(), Value::num_u64(items)));
                }
            }
            if let Some((cw, items)) = self.opts.chaos.truncate_after_items {
                if cw == w {
                    init.push(("truncate_after".to_string(), Value::num_u64(items)));
                }
            }
        }
        let handshake = write_frame(&mut &sock, &Value::Obj(init)).map_err(|e| e.to_string());
        let handshake = handshake.and_then(|()| match read_frame(&mut &sock) {
            Ok(Some(v)) if v.get("t").and_then(Value::as_str) == Some("ready") => Ok(()),
            Ok(Some(v)) => Err(format!("expected ready, got {}", v.to_compact())),
            Ok(None) => Err("worker closed before ready".into()),
            Err(e) => Err(format!("waiting for ready: {e}")),
        });
        match handshake {
            Ok(()) => {
                relock_trace::counter("dist.worker", 1);
                Ok(WorkerHandle { child, sock })
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }

    /// Places a worker in slot `w`, paying the respawn budget and the
    /// seeded-jitter backoff for every incarnation after the first.
    fn ensure_worker(&self, w: usize, cfg: &AttackConfig) -> Result<WorkerHandle, SpawnError> {
        let incarnation = self.incarnations[w].fetch_add(1, Ordering::Relaxed);
        if incarnation > 0 {
            let total = self.respawns.fetch_add(1, Ordering::Relaxed) + 1;
            if total > self.opts.respawn_budget as u64 {
                // Refused, not performed: keep the report's respawn count
                // honest.
                self.respawns.fetch_sub(1, Ordering::Relaxed);
                return Err(SpawnError::Budget(format!(
                    "respawn budget exhausted: worker {w} died with {} respawns already spent",
                    self.opts.respawn_budget
                )));
            }
            relock_trace::counter("dist.respawn", 1);
            let backoff = self
                .opts
                .backoff
                .backoff_for(incarnation.min(u32::MAX as u64) as u32, w as u64);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        self.spawn_worker(w, cfg, incarnation == 0)
            .map_err(|_| SpawnError::Attempt)
    }

    /// Answers one proxied oracle query from the driver's broker. The
    /// chaos kill check runs *before* the broker sees the batch, so an
    /// injected `kill -9` leaves the broker's accounting untouched — the
    /// re-executed item re-requests the same rows and the underlying
    /// totals match the clean run.
    fn route_query(
        &self,
        sock: &UnixStream,
        frame: &Value,
        oracle: &dyn Oracle,
    ) -> Result<(), String> {
        let rows = field_u64(frame, "rows").map_err(|e| e.to_string())? as usize;
        let data = decode_f64s(field_str(frame, "x").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        if rows == 0 || !data.len().is_multiple_of(rows) {
            return Err("query payload does not tile into rows".into());
        }
        let before = self.routed_rows.fetch_add(rows as u64, Ordering::Relaxed);
        let after = before + rows as u64;
        {
            let mut kp = lock(&self.kill_points);
            if kp.front().is_some_and(|&p| p > before && p <= after) {
                kp.pop_front();
                return Err(format!("chaos: kill -9 at routed row {after}"));
            }
        }
        let cols = data.len() / rows;
        let x = Tensor::from_vec(data, [rows, cols]);
        let reply = match oracle.try_query_batch(&x) {
            Ok(y) => {
                let y_rows = if y.rank() == 2 { y.dims()[0] } else { 1 };
                Value::Obj(vec![
                    ("t".into(), Value::str("qok")),
                    ("rows".into(), Value::num_u64(y_rows as u64)),
                    ("y".into(), Value::str(encode_f64s(y.as_slice()))),
                ])
            }
            Err(e) => Value::Obj(vec![
                ("t".into(), Value::str("qerr")),
                ("err".into(), encode_oracle_error(&e)),
            ]),
        };
        write_frame(&mut &*sock, &reply).map_err(|e| format!("answering query: {e}"))
    }

    /// Sends one leased item and serves the worker until its result
    /// frame. Any error — heartbeat deadline, EOF, malformed bytes, a
    /// chaos kill — means the lease expired.
    fn dispatch<T>(
        &self,
        handle: &mut WorkerHandle,
        index: usize,
        item: &Value,
        oracle: &dyn Oracle,
        decode: &(dyn Fn(usize, &Value) -> Result<T, ProtoError> + Sync),
    ) -> Result<T, String> {
        write_frame(&mut &handle.sock, item).map_err(|e| format!("sending item: {e}"))?;
        loop {
            match read_frame(&mut &handle.sock) {
                Ok(Some(v)) => match v.get("t").and_then(Value::as_str) {
                    Some("hb") => continue,
                    Some("q") => self.route_query(&handle.sock, &v, oracle)?,
                    Some("done") => {
                        if field_u64(&v, "job").ok() != Some(index as u64) {
                            return Err("result for a different job".into());
                        }
                        return decode(index, &v).map_err(|e| format!("bad result: {e}"));
                    }
                    other => return Err(format!("unexpected frame {other:?}")),
                },
                Ok(None) => return Err("worker EOF".into()),
                // Read timeouts (missed heartbeat deadline) land here as
                // Io errors, truncated frames as Malformed.
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    /// One supervision thread per worker slot: pull a lease, keep the
    /// slot's process alive, commit at most once, reclaim on death.
    #[allow(clippy::too_many_arguments)]
    fn handler<T: Send>(
        &self,
        w: usize,
        cfg: &AttackConfig,
        oracle: &dyn Oracle,
        items: &[Value],
        decode: &(dyn Fn(usize, &Value) -> Result<T, ProtoError> + Sync),
        queue: &Mutex<VecDeque<usize>>,
        results: &Mutex<Vec<Option<T>>>,
        committed: &AtomicUsize,
        phase_panic: &Mutex<Option<Box<dyn std::any::Any + Send>>>,
    ) {
        let mut slot = lock(&self.slots[w]);
        let n = items.len();
        loop {
            if self.fell_back_reason().is_some() || lock(phase_panic).is_some() {
                return;
            }
            let Some(i) = lock(queue).pop_front() else {
                if committed.load(Ordering::Acquire) >= n {
                    return;
                }
                // Another worker holds the remaining leases; stay around
                // in case one dies and its item comes back.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            };
            if slot.is_none() {
                match self.ensure_worker(w, cfg) {
                    Ok(h) => *slot = Some(h),
                    Err(SpawnError::Attempt) => {
                        lock(queue).push_front(i);
                        continue; // the budget pays for another attempt
                    }
                    Err(SpawnError::Budget(reason)) => {
                        lock(queue).push_front(i);
                        self.trip_breaker(reason);
                        return;
                    }
                }
            }
            let handle = slot.as_mut().expect("worker placed above");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.dispatch(handle, i, &items[i], oracle, decode)
            }));
            let outcome = match outcome {
                Ok(o) => o,
                Err(payload) => {
                    // The backend oracle panicked (e.g. an injected
                    // `ChaosCrash`). The phase cannot complete: park the
                    // payload so every handler stops and `run_phase`
                    // re-raises it after the scope joins, and discard the
                    // worker stuck mid-item.
                    if let Some(mut dead) = slot.take() {
                        let _ = dead.child.kill();
                        let _ = dead.child.wait();
                    }
                    lock(queue).push_front(i);
                    let mut g = lock(phase_panic);
                    if g.is_none() {
                        *g = Some(payload);
                    }
                    return;
                }
            };
            match outcome {
                Ok(v) => {
                    let mut res = lock(results);
                    if res[i].is_some() {
                        // A duplicate late result: the first commit won,
                        // deterministically.
                        self.duplicates.fetch_add(1, Ordering::Relaxed);
                    } else {
                        res[i] = Some(v);
                        committed.fetch_add(1, Ordering::Release);
                    }
                }
                Err(_why) => {
                    // Lease expired: reclaim the item, discard the process.
                    relock_trace::counter("dist.lease_expired", 1);
                    self.lease_expiries.fetch_add(1, Ordering::Relaxed);
                    let mut dead = slot.take().expect("worker placed above");
                    let _ = dead.child.kill();
                    let _ = dead.child.wait();
                    lock(queue).push_front(i);
                }
            }
        }
    }

    /// Runs one sharded phase: distribute `items` under supervision, then
    /// compute whatever is missing in-process (everything, if the breaker
    /// was already open; the stragglers, if it opened mid-phase).
    fn run_phase<T: Send>(
        &self,
        cfg: &AttackConfig,
        oracle: &dyn Oracle,
        items: &[Value],
        decode: &(dyn Fn(usize, &Value) -> Result<T, ProtoError> + Sync),
        fallback: &(dyn Fn(usize, &mut Workspace) -> T + Sync),
    ) -> Vec<T> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        if self.fell_back_reason().is_none() {
            let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
            let committed = AtomicUsize::new(0);
            let phase_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for w in 0..self.opts.workers {
                    let (queue, results, committed) = (&queue, &results, &committed);
                    let phase_panic = &phase_panic;
                    scope.spawn(move || {
                        self.handler(
                            w,
                            cfg,
                            oracle,
                            items,
                            decode,
                            queue,
                            results,
                            committed,
                            phase_panic,
                        )
                    });
                }
            });
            let payload = lock(&phase_panic).take();
            if let Some(payload) = payload {
                std::panic::resume_unwind(payload);
            }
        }
        let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut ws = None;
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(v) => v,
                None => {
                    let ws = ws.get_or_insert_with(|| self.pool.acquire());
                    fallback(i, ws)
                }
            })
            .collect()
    }
}

impl PhaseExecutor for DistCoordinator {
    fn infer_sites(
        &self,
        g: &Graph,
        ka: &KeyAssignment,
        sites: &[LockSite],
        oracle: &dyn Oracle,
        cfg: &AttackConfig,
        rngs: &[Prng],
    ) -> InferredBits {
        let ka_bits = encode_bits(&ka.to_bits());
        let items: Vec<Value> = sites
            .iter()
            .zip(rngs)
            .enumerate()
            .map(|(i, (site, rng))| {
                Value::Obj(vec![
                    ("t".into(), Value::str("item")),
                    ("job".into(), Value::num_u64(i as u64)),
                    ("kind".into(), Value::str("infer")),
                    ("slot".into(), Value::num_u64(site.slot.index() as u64)),
                    ("ka".into(), Value::str(ka_bits.clone())),
                    ("rng".into(), encode_rng(&rng.state())),
                ])
            })
            .collect();
        self.run_phase(
            cfg,
            oracle,
            &items,
            &|i, doc| match doc.get("bit") {
                Some(Value::Null) => Ok((sites[i].slot, None)),
                Some(Value::Bool(b)) => Ok((sites[i].slot, Some(*b))),
                _ => Err(malformed("done frame without bit")),
            },
            &|i, ws| {
                let mut rng = rngs[i].clone();
                (
                    sites[i].slot,
                    key_bit_inference_with(g, ws, ka, &sites[i], oracle, cfg, &mut rng),
                )
            },
        )
    }

    fn validate_wave(
        &self,
        g: &Graph,
        base: &KeyAssignment,
        layer_slots: &[KeySlot],
        wave: &[Vec<usize>],
        target: Option<&ValidationTarget>,
        oracle: &dyn Oracle,
        cfg: &AttackConfig,
        rngs: &[Prng],
    ) -> Vec<Result<ValidationVerdict, OracleError>> {
        let target_doc = target.map(encode_target).unwrap_or(Value::Null);
        // Flips are applied coordinator-side: the worker just validates a
        // complete trial assignment, keeping the item format phase-local.
        let trial_for = |i: usize| -> KeyAssignment {
            let mut trial = base.clone();
            for &flip in &wave[i] {
                let s = layer_slots[flip];
                let cur = trial.to_bits()[s.index()];
                trial.set_bit(s, !cur);
            }
            trial
        };
        let items: Vec<Value> = (0..wave.len())
            .map(|i| {
                Value::Obj(vec![
                    ("t".into(), Value::str("item")),
                    ("job".into(), Value::num_u64(i as u64)),
                    ("kind".into(), Value::str("validate")),
                    (
                        "ka".into(),
                        Value::str(encode_bits(&trial_for(i).to_bits())),
                    ),
                    ("target".into(), target_doc.clone()),
                    ("rng".into(), encode_rng(&rngs[i].state())),
                ])
            })
            .collect();
        self.run_phase(
            cfg,
            oracle,
            &items,
            &|_i, doc| {
                if let Some(v) = doc.get("verdict").and_then(Value::as_str) {
                    Ok(Ok(parse_verdict(v)?))
                } else if let Some(e) = doc.get("err") {
                    Ok(Err(decode_oracle_error(e)?))
                } else {
                    Err(malformed("done frame without verdict or err"))
                }
            },
            &|i, ws| {
                let trial = trial_for(i);
                let mut rng = rngs[i].clone();
                key_vector_validation_checked_with(g, ws, &trial, target, oracle, cfg, &mut rng)
            },
        )
    }
}

impl Drop for DistCoordinator {
    fn drop(&mut self) {
        let bye = Value::Obj(vec![("t".into(), Value::str("bye"))]);
        for slot in &self.slots {
            if let Some(mut h) = lock(slot).take() {
                let _ = write_frame(&mut &h.sock, &bye);
                let _ = h.child.kill();
                let _ = h.child.wait();
            }
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}
