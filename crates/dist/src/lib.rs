//! Multi-process execution of the DAC'24 decryption attack.
//!
//! This crate turns the Algorithm-2 driver's [`PhaseExecutor`] seam
//! (`relock-attack`, DESIGN.md §3e) into a coordinator/worker system:
//! [`DistCoordinator`] shards each per-site inference and per-candidate
//! validation phase across local worker processes connected over a Unix
//! socket speaking the `crates/campaign` length-prefixed JSON frame
//! protocol, and [`worker_main`] is the worker side, exposed through the
//! `dist_worker` binary (and the CLI's hidden `dist-worker` subcommand).
//!
//! The robustness model — heartbeat deadlines, work-item leases with
//! at-most-once commit, seeded-jitter respawn backoff, and a circuit
//! breaker that falls back to in-process execution — is documented on
//! [`coordinator`](DistCoordinator) and in DESIGN.md §4b. The headline
//! invariant: with the same seed, 1 worker and N workers produce
//! byte-for-byte identical keys, query counts, and checkpoint frames,
//! even while workers are being killed.
//!
//! [`PhaseExecutor`]: relock_attack::PhaseExecutor

mod coordinator;
mod proto;
mod worker;

pub use coordinator::{DistChaos, DistCoordinator, DistOptions, DistReport};
pub use proto::{decode_bits, decode_f64s, encode_bits, encode_f64s};
pub use worker::worker_main;
