//! Wire codecs for the coordinator ↔ worker protocol (DESIGN.md §4b).
//!
//! Frames reuse the campaign conventions — one length-prefixed compact
//! JSON object per frame, read and written with
//! [`relock_campaign::read_frame`] / [`relock_campaign::write_frame`] —
//! so the stream stays inspectable with `nc`/`socat` and the framing code
//! is shared, not re-invented.
//!
//! Everything that feeds the attack's arithmetic crosses the wire
//! **exactly**: `f64` values travel as their IEEE-754 bit patterns
//! (config fields, PRNG spare normals) or as lowercase-hex little-endian
//! byte strings (tensor payloads). JSON's decimal notation is never used
//! for a value the worker computes with, so a distributed run consumes
//! bit-identical inputs to an in-process one.

use relock_attack::{AttackConfig, LearningConfig, ValidationTarget, ValidationVerdict};
use relock_campaign::ProtoError;
use relock_graph::{KeySlot, NodeId, UnitLayout};
use relock_locking::{LockVariant, OracleError};
use relock_tensor::rng::PrngState;
use relock_trace::json::Value;
use std::time::Duration;

pub(crate) fn malformed(why: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(why.into())
}

/// Required `u64` field.
pub(crate) fn field_u64(doc: &Value, key: &str) -> Result<u64, ProtoError> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| malformed(format!("missing or non-integer field {key:?}")))
}

/// Required string field.
pub(crate) fn field_str<'a>(doc: &'a Value, key: &str) -> Result<&'a str, ProtoError> {
    doc.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| malformed(format!("missing or non-string field {key:?}")))
}

/// Required `f64` field, transported as its bit pattern.
fn field_f64_bits(doc: &Value, key: &str) -> Result<f64, ProtoError> {
    Ok(f64::from_bits(field_u64(doc, key)?))
}

/// Required bool field.
fn field_bool(doc: &Value, key: &str) -> Result<bool, ProtoError> {
    doc.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| malformed(format!("missing or non-bool field {key:?}")))
}

fn num_f64_bits(v: f64) -> Value {
    Value::num_u64(v.to_bits())
}

/// Encodes an `f64` slice as lowercase hex of the little-endian bytes
/// (16 hex chars per value) — exact and allocation-cheap to parse.
pub fn encode_f64s(data: &[f64]) -> String {
    let mut out = String::with_capacity(data.len() * 16);
    for v in data {
        for b in v.to_le_bytes() {
            out.push_str(&format!("{b:02x}"));
        }
    }
    out
}

/// Decodes [`encode_f64s`] output.
pub fn decode_f64s(text: &str) -> Result<Vec<f64>, ProtoError> {
    if !text.len().is_multiple_of(16) {
        return Err(malformed("f64 hex payload length not a multiple of 16"));
    }
    let bytes = text.as_bytes();
    let nib = |c: u8| -> Result<u8, ProtoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(malformed("invalid hex digit in f64 payload")),
        }
    };
    let mut out = Vec::with_capacity(text.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let mut le = [0u8; 8];
        for (i, pair) in chunk.chunks_exact(2).enumerate() {
            le[i] = (nib(pair[0])? << 4) | nib(pair[1])?;
        }
        out.push(f64::from_le_bytes(le));
    }
    Ok(out)
}

/// Key-assignment bits as a `"0101…"` string.
pub fn encode_bits(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Decodes [`encode_bits`] output.
pub fn decode_bits(text: &str) -> Result<Vec<bool>, ProtoError> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            _ => Err(malformed("key bits must be 0 or 1")),
        })
        .collect()
}

/// Encodes the full [`AttackConfig`] (floats as bit patterns).
pub fn encode_config(cfg: &AttackConfig) -> Value {
    Value::Obj(vec![
        ("input_scale".into(), num_f64_bits(cfg.input_scale)),
        (
            "line_samples".into(),
            Value::num_u64(cfg.line_samples as u64),
        ),
        ("line_extent".into(), num_f64_bits(cfg.line_extent)),
        ("bisect_tol".into(), num_f64_bits(cfg.bisect_tol)),
        (
            "bisect_iters".into(),
            Value::num_u64(cfg.bisect_iters as u64),
        ),
        ("max_lines".into(), Value::num_u64(cfg.max_lines as u64)),
        (
            "max_site_attempts".into(),
            Value::num_u64(cfg.max_site_attempts as u64),
        ),
        ("epsilon".into(), num_f64_bits(cfg.epsilon)),
        ("epsilon_min".into(), num_f64_bits(cfg.epsilon_min)),
        ("eq_tol".into(), num_f64_bits(cfg.eq_tol)),
        ("diff_tol".into(), num_f64_bits(cfg.diff_tol)),
        ("preimage_tol".into(), num_f64_bits(cfg.preimage_tol)),
        ("skip_expansive".into(), Value::Bool(cfg.skip_expansive)),
        (
            "learn_samples".into(),
            Value::num_u64(cfg.learning.samples as u64),
        ),
        (
            "learn_batch".into(),
            Value::num_u64(cfg.learning.batch as u64),
        ),
        (
            "learn_epochs".into(),
            Value::num_u64(cfg.learning.epochs as u64),
        ),
        ("learn_lr".into(), num_f64_bits(cfg.learning.lr)),
        (
            "learn_confidence".into(),
            num_f64_bits(cfg.learning.confidence),
        ),
        (
            "learn_patience".into(),
            Value::num_u64(cfg.learning.patience as u64),
        ),
        (
            "learn_precision".into(),
            Value::str(cfg.learning.precision.name()),
        ),
        (
            "validation_neurons".into(),
            Value::num_u64(cfg.validation_neurons as u64),
        ),
        (
            "validation_majority".into(),
            num_f64_bits(cfg.validation_majority),
        ),
        (
            "validation_directions".into(),
            Value::num_u64(cfg.validation_directions as u64),
        ),
        (
            "witness_attempts".into(),
            Value::num_u64(cfg.witness_attempts as u64),
        ),
        ("probe_delta".into(), num_f64_bits(cfg.probe_delta)),
        ("kink_tol".into(), num_f64_bits(cfg.kink_tol)),
        (
            "continue_on_failure".into(),
            Value::Bool(cfg.continue_on_failure),
        ),
        (
            "final_check_samples".into(),
            Value::num_u64(cfg.final_check_samples as u64),
        ),
        ("max_hamming".into(), Value::num_u64(cfg.max_hamming as u64)),
        (
            "max_candidates_per_hd".into(),
            Value::num_u64(cfg.max_candidates_per_hd as u64),
        ),
        (
            "correction_window".into(),
            Value::num_u64(cfg.correction_window as u64),
        ),
        ("threads".into(), Value::num_u64(cfg.threads as u64)),
        (
            "correction_wave".into(),
            Value::num_u64(cfg.correction_wave as u64),
        ),
        (
            "disable_algebraic".into(),
            Value::Bool(cfg.disable_algebraic),
        ),
        (
            "preimage_perturbation".into(),
            num_f64_bits(cfg.preimage_perturbation),
        ),
        (
            "query_budget".into(),
            match cfg.query_budget {
                Some(b) => Value::num_u64(b),
                None => Value::Null,
            },
        ),
        (
            "variant".into(),
            Value::str(match cfg.variant {
                LockVariant::Sign => "sign",
                LockVariant::Scale(_) => "scale",
                LockVariant::SarTrigger => "sar",
                LockVariant::AntiSatTrigger => "antisat",
            }),
        ),
        (
            "variant_factor".into(),
            match cfg.variant {
                // The scale factor feeds the arithmetic, so it crosses the
                // wire as its bit pattern like every other f64 field.
                LockVariant::Scale(factor) => Value::num_u64(factor.to_bits()),
                _ => Value::Null,
            },
        ),
        ("adaptive".into(), Value::Bool(cfg.adaptive)),
    ])
}

/// Decodes [`encode_config`] output.
pub fn decode_config(doc: &Value) -> Result<AttackConfig, ProtoError> {
    Ok(AttackConfig {
        input_scale: field_f64_bits(doc, "input_scale")?,
        line_samples: field_u64(doc, "line_samples")? as usize,
        line_extent: field_f64_bits(doc, "line_extent")?,
        bisect_tol: field_f64_bits(doc, "bisect_tol")?,
        bisect_iters: field_u64(doc, "bisect_iters")? as usize,
        max_lines: field_u64(doc, "max_lines")? as usize,
        max_site_attempts: field_u64(doc, "max_site_attempts")? as usize,
        epsilon: field_f64_bits(doc, "epsilon")?,
        epsilon_min: field_f64_bits(doc, "epsilon_min")?,
        eq_tol: field_f64_bits(doc, "eq_tol")?,
        diff_tol: field_f64_bits(doc, "diff_tol")?,
        preimage_tol: field_f64_bits(doc, "preimage_tol")?,
        skip_expansive: field_bool(doc, "skip_expansive")?,
        learning: LearningConfig {
            samples: field_u64(doc, "learn_samples")? as usize,
            batch: field_u64(doc, "learn_batch")? as usize,
            epochs: field_u64(doc, "learn_epochs")? as usize,
            lr: field_f64_bits(doc, "learn_lr")?,
            confidence: field_f64_bits(doc, "learn_confidence")?,
            patience: field_u64(doc, "learn_patience")? as usize,
            precision: {
                let name = field_str(doc, "learn_precision")?;
                relock_graph::Precision::parse(name)
                    .ok_or_else(|| malformed(format!("unknown precision {name:?}")))?
            },
        },
        validation_neurons: field_u64(doc, "validation_neurons")? as usize,
        validation_majority: field_f64_bits(doc, "validation_majority")?,
        validation_directions: field_u64(doc, "validation_directions")? as usize,
        witness_attempts: field_u64(doc, "witness_attempts")? as usize,
        probe_delta: field_f64_bits(doc, "probe_delta")?,
        kink_tol: field_f64_bits(doc, "kink_tol")?,
        continue_on_failure: field_bool(doc, "continue_on_failure")?,
        final_check_samples: field_u64(doc, "final_check_samples")? as usize,
        max_hamming: field_u64(doc, "max_hamming")? as usize,
        max_candidates_per_hd: field_u64(doc, "max_candidates_per_hd")? as usize,
        correction_window: field_u64(doc, "correction_window")? as usize,
        threads: field_u64(doc, "threads")? as usize,
        correction_wave: field_u64(doc, "correction_wave")? as usize,
        disable_algebraic: field_bool(doc, "disable_algebraic")?,
        preimage_perturbation: field_f64_bits(doc, "preimage_perturbation")?,
        query_budget: doc.get("query_budget").and_then(Value::as_u64),
        variant: match field_str(doc, "variant")? {
            "sign" => LockVariant::Sign,
            "scale" => LockVariant::Scale(field_f64_bits(doc, "variant_factor")?),
            "sar" => LockVariant::SarTrigger,
            "antisat" => LockVariant::AntiSatTrigger,
            other => return Err(malformed(format!("unknown lock variant {other:?}"))),
        },
        // Absent on frames from older coordinators: default to the static
        // path rather than rejecting the whole config.
        adaptive: doc
            .get("adaptive")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    })
}

/// Encodes a PRNG snapshot: the four xoshiro state words plus the cached
/// Box–Muller spare (as a bit pattern when present).
pub fn encode_rng(st: &PrngState) -> Value {
    Value::Obj(vec![
        (
            "s".into(),
            Value::Arr(st.s.iter().map(|&w| Value::num_u64(w)).collect()),
        ),
        (
            "spare".into(),
            match st.spare_normal {
                Some(v) => Value::num_u64(v.to_bits()),
                None => Value::Null,
            },
        ),
    ])
}

/// Decodes [`encode_rng`] output.
pub fn decode_rng(doc: &Value) -> Result<PrngState, ProtoError> {
    let words = doc
        .get("s")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("rng state missing \"s\""))?;
    if words.len() != 4 {
        return Err(malformed("rng state needs 4 words"));
    }
    let mut s = [0u64; 4];
    for (i, w) in words.iter().enumerate() {
        s[i] = w
            .as_u64()
            .ok_or_else(|| malformed("rng state word is not an integer"))?;
    }
    let spare_normal = match doc.get("spare") {
        None | Some(Value::Null) => None,
        Some(v) => {
            Some(f64::from_bits(v.as_u64().ok_or_else(|| {
                malformed("rng spare is neither null nor an integer")
            })?))
        }
    };
    Ok(PrngState { s, spare_normal })
}

/// Encodes a validation target (node/layout indices plus the probed units
/// with their optional key slots).
pub fn encode_target(t: &ValidationTarget) -> Value {
    Value::Obj(vec![
        (
            "surface".into(),
            Value::num_u64(t.surface_node.index() as u64),
        ),
        ("n_units".into(), Value::num_u64(t.layout.n_units as u64)),
        ("unit_len".into(), Value::num_u64(t.layout.unit_len as u64)),
        (
            "unit_stride".into(),
            Value::num_u64(t.layout.unit_stride as u64),
        ),
        (
            "elem_stride".into(),
            Value::num_u64(t.layout.elem_stride as u64),
        ),
        (
            "units".into(),
            Value::Arr(
                t.units
                    .iter()
                    .map(|&(u, slot)| {
                        Value::Arr(vec![
                            Value::num_u64(u as u64),
                            match slot {
                                Some(s) => Value::num_u64(s.index() as u64),
                                None => Value::Null,
                            },
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes [`encode_target`] output.
pub fn decode_target(doc: &Value) -> Result<ValidationTarget, ProtoError> {
    let units =
        doc.get("units")
            .and_then(Value::as_arr)
            .ok_or_else(|| malformed("target missing \"units\""))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| malformed("target unit is not a pair"))?;
                let u = pair[0]
                    .as_u64()
                    .ok_or_else(|| malformed("target unit index is not an integer"))?
                    as usize;
                let slot =
                    match &pair[1] {
                        Value::Null => None,
                        v => Some(KeySlot(v.as_u64().ok_or_else(|| {
                            malformed("target slot is neither null nor an integer")
                        })? as usize)),
                    };
                Ok((u, slot))
            })
            .collect::<Result<Vec<_>, ProtoError>>()?;
    Ok(ValidationTarget {
        surface_node: NodeId(field_u64(doc, "surface")? as usize),
        layout: UnitLayout {
            n_units: field_u64(doc, "n_units")? as usize,
            unit_len: field_u64(doc, "unit_len")? as usize,
            unit_stride: field_u64(doc, "unit_stride")? as usize,
            elem_stride: field_u64(doc, "elem_stride")? as usize,
        },
        units,
    })
}

/// Encodes an oracle error for a `qerr` or `done` frame.
pub fn encode_oracle_error(e: &OracleError) -> Value {
    match e {
        OracleError::BudgetExhausted {
            spent,
            budget,
            requested,
        } => Value::Obj(vec![
            ("kind".into(), Value::str("budget")),
            ("spent".into(), Value::num_u64(*spent)),
            ("budget".into(), Value::num_u64(*budget)),
            ("requested".into(), Value::num_u64(*requested)),
        ]),
        OracleError::DeadlineExceeded { elapsed, deadline } => Value::Obj(vec![
            ("kind".into(), Value::str("deadline")),
            ("elapsed".into(), Value::num_u64(elapsed.as_nanos() as u64)),
            (
                "deadline".into(),
                Value::num_u64(deadline.as_nanos() as u64),
            ),
        ]),
        OracleError::Backend { message, attempts } => Value::Obj(vec![
            ("kind".into(), Value::str("backend")),
            ("message".into(), Value::str(message.clone())),
            ("attempts".into(), Value::num_u64(*attempts as u64)),
        ]),
    }
}

/// Decodes [`encode_oracle_error`] output.
pub fn decode_oracle_error(doc: &Value) -> Result<OracleError, ProtoError> {
    Ok(match field_str(doc, "kind")? {
        "budget" => OracleError::BudgetExhausted {
            spent: field_u64(doc, "spent")?,
            budget: field_u64(doc, "budget")?,
            requested: field_u64(doc, "requested")?,
        },
        "deadline" => OracleError::DeadlineExceeded {
            elapsed: Duration::from_nanos(field_u64(doc, "elapsed")?),
            deadline: Duration::from_nanos(field_u64(doc, "deadline")?),
        },
        "backend" => OracleError::Backend {
            message: field_str(doc, "message")?.to_string(),
            attempts: field_u64(doc, "attempts")? as u32,
        },
        other => return Err(malformed(format!("unknown oracle error kind {other:?}"))),
    })
}

/// Stable wire name of a verdict.
pub fn verdict_str(v: ValidationVerdict) -> &'static str {
    match v {
        ValidationVerdict::Pass => "pass",
        ValidationVerdict::Fail => "fail",
        ValidationVerdict::NoEvidence => "no_evidence",
    }
}

/// Inverse of [`verdict_str`].
pub fn parse_verdict(s: &str) -> Result<ValidationVerdict, ProtoError> {
    match s {
        "pass" => Ok(ValidationVerdict::Pass),
        "fail" => Ok(ValidationVerdict::Fail),
        "no_evidence" => Ok(ValidationVerdict::NoEvidence),
        other => Err(malformed(format!("unknown verdict {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_tensor::rng::Prng;

    #[test]
    fn f64_hex_round_trips_exactly() {
        let values = [
            0.0,
            -0.0,
            1.0,
            -3.5e-17,
            f64::MIN_POSITIVE,
            f64::MAX,
            std::f64::consts::PI,
        ];
        let hex = encode_f64s(&values);
        let back = decode_f64s(&hex).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f64s("abc").is_err());
        assert!(decode_f64s(&"zz".repeat(8)).is_err());
    }

    #[test]
    fn config_round_trips_bit_exactly() {
        let mut cfg = AttackConfig::fast();
        cfg.query_budget = Some(123_456);
        cfg.threads = 3;
        cfg.diff_tol = 5.4321e-5;
        cfg.adaptive = true;
        let doc = encode_config(&cfg);
        let back = decode_config(&doc).unwrap();
        assert_eq!(back.diff_tol.to_bits(), cfg.diff_tol.to_bits());
        assert_eq!(back.learning.lr.to_bits(), cfg.learning.lr.to_bits());
        assert_eq!(back.query_budget, cfg.query_budget);
        assert_eq!(back.threads, 3);
        assert_eq!(back.correction_wave, cfg.correction_wave);
        assert!(back.adaptive);
        // And through an actual frame serialization.
        let text = doc.to_compact();
        let reparsed = Value::parse(&text).unwrap();
        let back2 = decode_config(&reparsed).unwrap();
        assert_eq!(back2.epsilon_min.to_bits(), cfg.epsilon_min.to_bits());
    }

    #[test]
    fn config_variant_round_trips_and_rejects_unknowns() {
        for variant in [
            LockVariant::Sign,
            LockVariant::Scale(-0.7543e-3),
            LockVariant::SarTrigger,
            LockVariant::AntiSatTrigger,
        ] {
            let cfg = AttackConfig {
                variant,
                ..AttackConfig::fast()
            };
            let back = decode_config(&encode_config(&cfg)).unwrap();
            match (back.variant, variant) {
                (LockVariant::Scale(a), LockVariant::Scale(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        // A coordinator speaking a newer dialect must be rejected, not
        // silently downgraded to some default variant.
        let mut doc = encode_config(&AttackConfig::fast());
        if let Value::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "variant" {
                    *v = Value::str("quantum");
                }
            }
        }
        assert!(matches!(decode_config(&doc), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn rng_state_round_trip_preserves_the_stream() {
        let mut rng = Prng::seed_from_u64(99);
        rng.normal(); // leave a cached spare behind
        let st = rng.state();
        let back = decode_rng(&encode_rng(&st)).unwrap();
        let mut a = Prng::from_state(st);
        let mut b = Prng::from_state(back);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.normal().to_bits(), b.normal().to_bits());
    }

    #[test]
    fn target_and_error_codecs_round_trip() {
        let t = ValidationTarget {
            surface_node: NodeId(7),
            layout: UnitLayout {
                n_units: 10,
                unit_len: 2,
                unit_stride: 2,
                elem_stride: 1,
            },
            units: vec![(0, None), (3, Some(KeySlot(5))), (9, None)],
        };
        let back = decode_target(&encode_target(&t)).unwrap();
        assert_eq!(back.surface_node, t.surface_node);
        assert_eq!(back.layout.n_units, 10);
        assert_eq!(back.units, t.units);

        for e in [
            OracleError::BudgetExhausted {
                spent: 1,
                budget: 2,
                requested: 3,
            },
            OracleError::DeadlineExceeded {
                elapsed: Duration::from_millis(5),
                deadline: Duration::from_millis(4),
            },
            OracleError::Backend {
                message: "lost".into(),
                attempts: 2,
            },
        ] {
            let back = decode_oracle_error(&encode_oracle_error(&e)).unwrap();
            assert_eq!(back, e);
        }
        for v in [
            ValidationVerdict::Pass,
            ValidationVerdict::Fail,
            ValidationVerdict::NoEvidence,
        ] {
            assert_eq!(parse_verdict(verdict_str(v)).unwrap(), v);
        }
    }
}
