//! The LeNet-5 ReLU variant victim (paper §4.2 "LeNet").

use crate::error::BuildError;
use crate::lockwire::add_lock_stage;
use relock_graph::{GraphBuilder, Op, UnitLayout};
use relock_locking::{apply_key_constraints, Key, LockAllocator, LockSpec, LockedModel};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::rng::Prng;

/// Architecture of the ReLU LeNet-5 variant: two locked convolutions with
/// max pooling, then two locked fully-connected layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LenetSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Channels of the first convolution.
    pub c1: usize,
    /// Channels of the second convolution.
    pub c2: usize,
    /// Width of the first fully-connected layer.
    pub fc1: usize,
    /// Width of the second fully-connected layer.
    pub fc2: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Default for LenetSpec {
    /// The classic 28×28 grayscale geometry: 6/16 conv channels, 120/84 FC.
    fn default() -> Self {
        LenetSpec {
            in_channels: 1,
            h: 28,
            w: 28,
            c1: 6,
            c2: 16,
            fc1: 120,
            fc2: 84,
            classes: 10,
        }
    }
}

/// Builds an HPNN-locked LeNet. Convolutions get §3.9(c) channel locks;
/// fully-connected layers get per-neuron locks; four lockable layers total.
///
/// # Errors
///
/// Returns [`BuildError`] on a degenerate spec or an unsatisfiable lock
/// plan.
pub fn build_lenet(
    spec: &LenetSpec,
    lock: LockSpec,
    rng: &mut Prng,
) -> Result<LockedModel, BuildError> {
    if spec.h < 12 || spec.w < 12 {
        return Err(BuildError::BadSpec(
            "LeNet needs at least a 12×12 input for its two 5×5 conv + pool stages".into(),
        ));
    }
    let input_dim = spec.in_channels * spec.h * spec.w;
    let trigger = lock.variant.is_trigger();
    let mut alloc = if trigger {
        LockAllocator::for_trigger(lock, 4, input_dim, rng.fork())?
    } else {
        LockAllocator::with_capacities(lock, &[spec.c1, spec.c2, spec.fc1, spec.fc2], rng.fork())?
    };
    let mut gb = GraphBuilder::new();
    let x = gb.input(input_dim);

    // conv1: 5×5, pad 2 (shape-preserving), then 2×2 max pool.
    let g1 = ConvGeometry {
        in_channels: spec.in_channels,
        in_h: spec.h,
        in_w: spec.w,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 2,
    };
    let conv1 = gb.add(
        Op::Conv2d {
            w: rng.kaiming_tensor([spec.c1, g1.patch_len()], g1.patch_len()),
            b: rng.kaiming_tensor([spec.c1], g1.patch_len()),
            geom: g1,
        },
        &[x],
    )?;
    let k1 = add_lock_stage(
        &mut gb,
        &mut alloc,
        trigger,
        UnitLayout::channel_major(spec.c1, g1.out_positions()),
        conv1,
        x,
        input_dim,
    )?;
    let r1 = gb.add(Op::Relu, &[k1])?;
    let p1 = gb.add(
        Op::MaxPool2d {
            channels: spec.c1,
            in_h: g1.out_h(),
            in_w: g1.out_w(),
            k: 2,
            stride: 2,
        },
        &[r1],
    )?;
    let (h1, w1) = (g1.out_h() / 2, g1.out_w() / 2);

    // conv2: 5×5, no padding, then 2×2 max pool.
    let g2 = ConvGeometry {
        in_channels: spec.c1,
        in_h: h1,
        in_w: w1,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 0,
    };
    let conv2 = gb.add(
        Op::Conv2d {
            w: rng.kaiming_tensor([spec.c2, g2.patch_len()], g2.patch_len()),
            b: rng.kaiming_tensor([spec.c2], g2.patch_len()),
            geom: g2,
        },
        &[p1],
    )?;
    let k2 = add_lock_stage(
        &mut gb,
        &mut alloc,
        trigger,
        UnitLayout::channel_major(spec.c2, g2.out_positions()),
        conv2,
        x,
        input_dim,
    )?;
    let r2 = gb.add(Op::Relu, &[k2])?;
    let p2 = gb.add(
        Op::MaxPool2d {
            channels: spec.c2,
            in_h: g2.out_h(),
            in_w: g2.out_w(),
            k: 2,
            stride: 2,
        },
        &[r2],
    )?;
    let flat = spec.c2 * (g2.out_h() / 2) * (g2.out_w() / 2);

    // fc1 and fc2 with per-neuron locks, then the output layer.
    let l1 = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.fc1, flat], flat),
            b: rng.kaiming_tensor([spec.fc1], flat),
            weight_locks: vec![],
        },
        &[p2],
    )?;
    let k3 = add_lock_stage(
        &mut gb,
        &mut alloc,
        trigger,
        UnitLayout::scalar(spec.fc1),
        l1,
        x,
        input_dim,
    )?;
    let r3 = gb.add(Op::Relu, &[k3])?;
    let l2 = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.fc2, spec.fc1], spec.fc1),
            b: rng.kaiming_tensor([spec.fc2], spec.fc1),
            weight_locks: vec![],
        },
        &[r3],
    )?;
    let k4 = add_lock_stage(
        &mut gb,
        &mut alloc,
        trigger,
        UnitLayout::scalar(spec.fc2),
        l2,
        x,
        input_dim,
    )?;
    let r4 = gb.add(Op::Relu, &[k4])?;
    let out = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.classes, spec.fc2], spec.fc2),
            b: rng.kaiming_tensor([spec.classes], spec.fc2),
            weight_locks: vec![],
        },
        &[r4],
    )?;
    let constraints = alloc.take_constraints();
    let slots = alloc.finish()?;
    let graph = gb.build(out)?;
    let mut key = Key::random(slots, rng);
    apply_key_constraints(&mut key, &constraints);
    Ok(LockedModel::new(graph, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds_with_paper_key_sizes() {
        let mut rng = Prng::seed_from_u64(50);
        for bits in [16usize, 24] {
            let m = build_lenet(&LenetSpec::default(), LockSpec::evenly(bits), &mut rng).unwrap();
            assert_eq!(m.true_key().len(), bits);
            assert_eq!(m.white_box().input_size(), 784);
            assert_eq!(m.white_box().output_size(), 10);
        }
    }

    #[test]
    fn forward_shape_is_consistent() {
        let mut rng = Prng::seed_from_u64(51);
        let spec = LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 3,
            c2: 4,
            fc1: 10,
            fc2: 8,
            classes: 4,
        };
        let m = build_lenet(&spec, LockSpec::evenly(8), &mut rng).unwrap();
        let y = m.logits(&rng.normal_tensor([144]));
        assert_eq!(y.numel(), 4);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn too_small_input_rejected() {
        let mut rng = Prng::seed_from_u64(52);
        let spec = LenetSpec {
            h: 8,
            w: 8,
            ..LenetSpec::default()
        };
        assert!(build_lenet(&spec, LockSpec::none(), &mut rng).is_err());
    }

    #[test]
    fn channel_locks_flip_whole_channels() {
        let mut rng = Prng::seed_from_u64(53);
        let spec = LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 4,
            c2: 4,
            fc1: 8,
            fc2: 8,
            classes: 3,
        };
        let m = build_lenet(&spec, LockSpec::evenly(4), &mut rng).unwrap();
        let sites = m.white_box().lock_sites();
        assert_eq!(sites.len(), 4);
        // First lockable layer is conv1: its sites must be channel units.
        assert!(sites[0].layout.unit_len > 1);
    }
}
