//! Model construction errors.

use relock_graph::GraphError;
use relock_locking::LockError;
use std::fmt;

/// Errors raised while assembling a locked model.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The underlying graph rejected an operator.
    Graph(GraphError),
    /// The lock plan could not be satisfied by the architecture.
    Lock(LockError),
    /// A specification field is inconsistent (message explains).
    BadSpec(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Graph(e) => write!(f, "graph construction failed: {e}"),
            BuildError::Lock(e) => write!(f, "lock plan failed: {e}"),
            BuildError::BadSpec(msg) => write!(f, "invalid model spec: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Graph(e) => Some(e),
            BuildError::Lock(e) => Some(e),
            BuildError::BadSpec(_) => None,
        }
    }
}

impl From<GraphError> for BuildError {
    fn from(e: GraphError) -> Self {
        BuildError::Graph(e)
    }
}

impl From<LockError> for BuildError {
    fn from(e: LockError) -> Self {
        BuildError::Lock(e)
    }
}
