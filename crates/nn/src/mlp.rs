//! The multilayer-perceptron victim (paper §4.2 "MLP").

use crate::error::BuildError;
use crate::lockwire::add_lock_stage;
use relock_graph::{GraphBuilder, KeySlot, Op, UnitLayout, WeightLock};
use relock_locking::{apply_key_constraints, Key, LockAllocator, LockSpec, LockedModel};
use relock_tensor::rng::Prng;

/// Architecture of a fully-connected ReLU network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Input dimensionality.
    pub input: usize,
    /// Hidden layer widths (each followed by a lock stage and ReLU).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
}

impl Default for MlpSpec {
    /// The paper's MNIST MLP: 784 → 256 → 64 → 10.
    fn default() -> Self {
        MlpSpec {
            input: 784,
            hidden: vec![256, 64],
            classes: 10,
        }
    }
}

/// Builds an HPNN-locked MLP: `Linear → KeyedSign → ReLU` per hidden layer,
/// then an unlocked output layer. The secret key is sampled uniformly.
///
/// # Errors
///
/// Returns [`BuildError`] if the spec is degenerate or the lock plan does
/// not fit (e.g. more bits than neurons in a layer).
pub fn build_mlp(
    spec: &MlpSpec,
    lock: LockSpec,
    rng: &mut Prng,
) -> Result<LockedModel, BuildError> {
    if spec.hidden.is_empty() {
        return Err(BuildError::BadSpec(
            "MLP needs at least one hidden layer".into(),
        ));
    }
    if spec.input == 0 || spec.classes < 2 {
        return Err(BuildError::BadSpec(
            "MLP needs input > 0 and ≥ 2 classes".into(),
        ));
    }
    let trigger = lock.variant.is_trigger();
    let mut alloc = if trigger {
        LockAllocator::for_trigger(lock, spec.hidden.len(), spec.input, rng.fork())?
    } else {
        LockAllocator::with_capacities(lock, &spec.hidden, rng.fork())?
    };
    let mut gb = GraphBuilder::new();
    let input_node = gb.input(spec.input);
    let mut prev = input_node;
    let mut prev_width = spec.input;
    for &width in &spec.hidden {
        let lin = gb.add(
            Op::Linear {
                w: rng.kaiming_tensor([width, prev_width], prev_width),
                b: rng.kaiming_tensor([width], prev_width),
                weight_locks: vec![],
            },
            &[prev],
        )?;
        let keyed = add_lock_stage(
            &mut gb,
            &mut alloc,
            trigger,
            UnitLayout::scalar(width),
            lin,
            input_node,
            spec.input,
        )?;
        prev = gb.add(Op::Relu, &[keyed])?;
        prev_width = width;
    }
    let out = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.classes, prev_width], prev_width),
            b: rng.kaiming_tensor([spec.classes], prev_width),
            weight_locks: vec![],
        },
        &[prev],
    )?;
    let constraints = alloc.take_constraints();
    let slots = alloc.finish()?;
    let graph = gb.build(out)?;
    let mut key = Key::random(slots, rng);
    apply_key_constraints(&mut key, &constraints);
    Ok(LockedModel::new(graph, key))
}

/// Builds an MLP protected by the §3.9(b) *weight-element* variant: key
/// bits flip the sign of randomly chosen weight matrix elements in the
/// hidden layers instead of pre-activations.
///
/// # Errors
///
/// Returns [`BuildError::BadSpec`] if there are more bits than hidden-layer
/// weight elements.
pub fn build_mlp_weight_locked(
    spec: &MlpSpec,
    total_bits: usize,
    rng: &mut Prng,
) -> Result<LockedModel, BuildError> {
    if spec.hidden.is_empty() {
        return Err(BuildError::BadSpec(
            "MLP needs at least one hidden layer".into(),
        ));
    }
    let n_layers = spec.hidden.len();
    let base = total_bits / n_layers;
    let extra = total_bits % n_layers;
    let mut gb = GraphBuilder::new();
    let mut prev = gb.input(spec.input);
    let mut prev_width = spec.input;
    let mut next_slot = 0usize;
    for (li, &width) in spec.hidden.iter().enumerate() {
        let bits_here = base + usize::from(li < extra);
        let n_elems = width * prev_width;
        if bits_here > n_elems {
            return Err(BuildError::BadSpec(format!(
                "layer {li} has {n_elems} weights but {bits_here} bits were requested"
            )));
        }
        let chosen = rng.choose_indices(n_elems, bits_here);
        let weight_locks: Vec<WeightLock> = chosen
            .into_iter()
            .map(|flat| {
                let l = WeightLock {
                    row: flat / prev_width,
                    col: flat % prev_width,
                    slot: KeySlot(next_slot),
                };
                next_slot += 1;
                l
            })
            .collect();
        let lin = gb.add(
            Op::Linear {
                w: rng.kaiming_tensor([width, prev_width], prev_width),
                b: rng.kaiming_tensor([width], prev_width),
                weight_locks,
            },
            &[prev],
        )?;
        prev = gb.add(Op::Relu, &[lin])?;
        prev_width = width;
    }
    let out = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.classes, prev_width], prev_width),
            b: rng.kaiming_tensor([spec.classes], prev_width),
            weight_locks: vec![],
        },
        &[prev],
    )?;
    let graph = gb.build(out)?;
    Ok(LockedModel::new(graph, Key::random(next_slot, rng)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_paper() {
        let s = MlpSpec::default();
        assert_eq!(s.input, 784);
        assert_eq!(s.hidden, vec![256, 64]);
    }

    #[test]
    fn build_allocates_requested_bits() {
        let mut rng = Prng::seed_from_u64(40);
        let m = build_mlp(
            &MlpSpec {
                input: 8,
                hidden: vec![6, 4],
                classes: 3,
            },
            LockSpec::evenly(5),
            &mut rng,
        )
        .unwrap();
        assert_eq!(m.true_key().len(), 5);
        assert_eq!(m.white_box().lock_sites().len(), 5);
        assert_eq!(m.white_box().input_size(), 8);
        assert_eq!(m.white_box().output_size(), 3);
    }

    #[test]
    fn too_many_bits_fail() {
        let mut rng = Prng::seed_from_u64(41);
        let err = build_mlp(
            &MlpSpec {
                input: 8,
                hidden: vec![2],
                classes: 3,
            },
            LockSpec::evenly(5),
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn locked_model_is_key_sensitive() {
        let mut rng = Prng::seed_from_u64(42);
        let m = build_mlp(
            &MlpSpec {
                input: 4,
                hidden: vec![8],
                classes: 2,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        let x = rng.normal_tensor([4]);
        let right = m.logits(&x);
        let mut wrong_key = m.true_key().clone();
        wrong_key.flip_bit(0);
        let wrong = m.logits_with(&x, &wrong_key);
        // Should differ for a generic input (the flipped neuron is active
        // on one of the two sides).
        let differs = right.max_abs_diff(&wrong) > 1e-12
            || m.logits(&rng.normal_tensor([4]))
                .max_abs_diff(&m.logits_with(&rng.normal_tensor([4]), &wrong_key))
                > 1e-12;
        assert!(differs);
    }

    #[test]
    fn trigger_locked_mlp_builds_with_constrained_key() {
        let spec = MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        };
        for lock in [LockSpec::sar(8), LockSpec::antisat(8)] {
            let mut rng = Prng::seed_from_u64(44);
            let m = build_mlp(&spec, lock, &mut rng).unwrap();
            assert_eq!(m.true_key().len(), 8);
            assert_eq!(m.white_box().key_slot_count(), 8);
            // Trigger comparators are not per-unit lock sites.
            assert!(m.white_box().lock_sites().is_empty());
            // The sampled key satisfies the lock's constraints: with the
            // true key the comparator never fires, so logits match the
            // all-pass-through evaluation on any input.
            for _ in 0..8 {
                let x = rng.normal_tensor([12]);
                let y = m.logits(&x);
                assert!(y.as_slice().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn weight_locked_mlp_builds_and_is_key_sensitive() {
        let mut rng = Prng::seed_from_u64(43);
        let m = build_mlp_weight_locked(
            &MlpSpec {
                input: 4,
                hidden: vec![6],
                classes: 2,
            },
            3,
            &mut rng,
        )
        .unwrap();
        assert_eq!(m.true_key().len(), 3);
        assert!(m.white_box().lock_sites().is_empty());
        assert_eq!(m.white_box().weight_lock_slots().len(), 3);
        let mut wrong = m.true_key().clone();
        wrong.flip_bit(1);
        // The flipped weight only shows when its hidden neuron is active,
        // so probe several random inputs.
        let differs = (0..20).any(|_| {
            let x = rng.normal_tensor([4]);
            m.logits(&x).max_abs_diff(&m.logits_with(&x, &wrong)) > 0.0
        });
        assert!(differs);
    }
}
