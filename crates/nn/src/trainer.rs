//! Training locked models as functions of their keys (HPNN protocol).

use relock_data::Dataset;
use relock_graph::{Graph, NodeId, Precision};
use relock_locking::LockedModel;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::collections::HashMap;

/// Softmax cross-entropy loss and its gradient at the logits.
///
/// Returns `(mean loss, (B, Q) gradient)`.
///
/// # Panics
///
/// Panics if a label is out of range for the logits width.
pub(crate) fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let (b, q) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(b, labels.len(), "batch/labels mismatch");
    let mut grad = Tensor::zeros([b, q]);
    let mut loss = 0.0;
    let inv_b = 1.0 / b as f64;
    for s in 0..b {
        let row = Tensor::from_slice(logits.row(s));
        let probs = row.softmax();
        let label = labels[s];
        assert!(label < q, "label {label} out of range for {q} classes");
        loss -= probs.as_slice()[label].max(1e-300).ln();
        let g = grad.row_mut(s);
        for (c, &p) in probs.as_slice().iter().enumerate() {
            g[c] = (p - f64::from(u8::from(c == label))) * inv_b;
        }
    }
    (loss * inv_b, grad)
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
struct AdamState {
    m: Tensor,
    v: Tensor,
}

/// Adam optimizer over a graph's `(weight, bias)` parameter pairs.
#[derive(Debug)]
pub(crate) struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    state: HashMap<(usize, u8), AdamState>,
}

impl Adam {
    pub(crate) fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Applies one step given per-node `(weight, bias)` gradients.
    pub(crate) fn step(&mut self, graph: &mut Graph, param_grads: &[Option<(Tensor, Tensor)>]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, grads) in param_grads.iter().enumerate() {
            let Some((gw, gb)) = grads else { continue };
            let Some((w, b)) = graph.params_mut(NodeId(idx)) else {
                continue;
            };
            for (which, (param, grad)) in [(0u8, (w, gw)), (1u8, (b, gb))] {
                let st = self.state.entry((idx, which)).or_insert_with(|| AdamState {
                    m: Tensor::zeros(param.dims()),
                    v: Tensor::zeros(param.dims()),
                });
                let p = param.as_mut_slice();
                let g = grad.as_slice();
                let m = st.m.as_mut_slice();
                let v = st.v.as_mut_slice();
                for i in 0..p.len() {
                    m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                    v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainingSummary {
    /// Mean loss per epoch.
    pub loss_history: Vec<f64>,
    /// Accuracy on the training split after the final epoch.
    pub final_train_accuracy: f64,
    /// Accuracy on the test split after the final epoch.
    pub final_test_accuracy: f64,
}

/// Mini-batch Adam trainer.
///
/// Training follows the HPNN protocol (paper §2.2): the true key is fixed
/// in its hardware slots while every weight and bias adapts, entangling
/// parameters with the key.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    /// Adam learning rate.
    pub lr: f64,
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Numeric precision of the `Linear` matrix products in the training
    /// loop ([`Precision::F32`] is the opt-in fast path; the default
    /// [`Precision::F64`] reproduces historical runs bit-for-bit).
    pub precision: Precision,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            lr: 3e-3,
            epochs: 20,
            batch_size: 32,
            precision: Precision::F64,
        }
    }
}

impl Trainer {
    /// A short schedule for tests and examples.
    pub fn quick() -> Self {
        Trainer {
            lr: 5e-3,
            epochs: 8,
            batch_size: 32,
            precision: Precision::F64,
        }
    }

    /// Trains `model` in place on `data` under its true key.
    pub fn fit(&self, model: &mut LockedModel, data: &Dataset, rng: &mut Prng) -> TrainingSummary {
        let keys = model.true_key().to_assignment();
        let mut adam = Adam::new(self.lr);
        let mut loss_history = Vec::with_capacity(self.epochs);
        // One workspace across every Adam step of the run; the planned
        // forward/backward reuse its per-node buffers each mini-batch.
        let mut ws = relock_graph::Workspace::new();
        ws.set_precision(self.precision);
        for _ in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            // Collect batches up front to sidestep borrowing the model
            // inside the iterator.
            let batch_list: Vec<(Tensor, Vec<usize>)> =
                data.train.batches(self.batch_size, rng).collect();
            for (x, y) in batch_list {
                let graph = model.white_box();
                graph.forward_into(&mut ws, &x, &keys);
                let logits = ws.value(graph.output_id());
                let (loss, grad) = softmax_cross_entropy(logits, &y);
                let grads = graph.backward_into(&mut ws, &grad, &keys, true);
                adam.step(model.white_box_mut(), &grads.params);
                epoch_loss += loss;
                batches += 1;
            }
            loss_history.push(epoch_loss / batches.max(1) as f64);
        }
        let final_train_accuracy = model.accuracy(data.train.inputs(), data.train.labels());
        let final_test_accuracy = model.accuracy(data.test.inputs(), data.test.labels());
        TrainingSummary {
            loss_history,
            final_train_accuracy,
            final_test_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{build_mlp, MlpSpec};
    use relock_data::mnist_like;
    use relock_locking::{Key, LockSpec};

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(&[&[0.5, -1.0, 2.0], &[0.0, 0.0, 0.0]]);
        let labels = vec![2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for s in 0..2 {
            for c in 0..3 {
                let mut up = logits.clone();
                *up.at_mut(&[s, c]) += eps;
                let mut down = logits.clone();
                *down.at_mut(&[s, c]) -= eps;
                let (lu, _) = softmax_cross_entropy(&up, &labels);
                let (ld, _) = softmax_cross_entropy(&down, &labels);
                let fd = (lu - ld) / (2.0 * eps);
                assert!(
                    (fd - grad.get2(s, c)).abs() < 1e-6,
                    "({s},{c}): {fd} vs {}",
                    grad.get2(s, c)
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut rng = Prng::seed_from_u64(80);
        let task = mnist_like(&mut rng, 300, 100, 20);
        let mut model = build_mlp(
            &MlpSpec {
                input: 20,
                hidden: vec![24, 16],
                classes: 10,
            },
            LockSpec::evenly(8),
            &mut rng,
        )
        .unwrap();
        let summary = Trainer {
            lr: 5e-3,
            epochs: 15,
            batch_size: 32,
            ..Trainer::default()
        }
        .fit(&mut model, &task, &mut rng);
        assert!(
            summary.loss_history.first().unwrap() > summary.loss_history.last().unwrap(),
            "loss should decrease: {:?}",
            summary.loss_history
        );
        assert!(
            summary.final_test_accuracy > 0.85,
            "test accuracy {}",
            summary.final_test_accuracy
        );
    }

    #[test]
    fn wrong_key_degrades_trained_model() {
        let mut rng = Prng::seed_from_u64(81);
        let task = mnist_like(&mut rng, 300, 100, 16);
        let mut model = build_mlp(
            &MlpSpec {
                input: 16,
                hidden: vec![24],
                classes: 10,
            },
            LockSpec::evenly(12),
            &mut rng,
        )
        .unwrap();
        Trainer {
            lr: 5e-3,
            epochs: 15,
            batch_size: 32,
            ..Trainer::default()
        }
        .fit(&mut model, &task, &mut rng);
        let right = model.accuracy(task.test.inputs(), task.test.labels());
        // Average accuracy over a few random wrong keys (the paper's
        // baseline-accuracy protocol with 16 keys, abbreviated).
        let mut wrong_sum = 0.0;
        for _ in 0..4 {
            let wrong = Key::random(12, &mut rng);
            wrong_sum += model.accuracy_with(task.test.inputs(), task.test.labels(), &wrong);
        }
        let wrong_avg = wrong_sum / 4.0;
        assert!(
            wrong_avg < right - 0.2,
            "locking should matter: right {right}, wrong {wrong_avg}"
        );
    }
}

#[cfg(test)]
mod conv_attention_training_tests {
    use super::*;
    use crate::lenet::{build_lenet, LenetSpec};
    use crate::vit::{build_vit, VitSpec};
    use relock_data::cifar_like;
    use relock_locking::LockSpec;

    #[test]
    fn lenet_training_reduces_loss() {
        let mut rng = Prng::seed_from_u64(900);
        let task = cifar_like(&mut rng, 120, 40, 1, 12, 12);
        let spec = LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 3,
            c2: 4,
            fc1: 10,
            fc2: 8,
            classes: 10,
        };
        let mut model = build_lenet(&spec, LockSpec::evenly(4), &mut rng).unwrap();
        let summary = Trainer {
            lr: 5e-3,
            epochs: 5,
            batch_size: 16,
            ..Trainer::default()
        }
        .fit(&mut model, &task, &mut rng);
        assert!(
            summary.loss_history.first().unwrap() > summary.loss_history.last().unwrap(),
            "{:?}",
            summary.loss_history
        );
    }

    #[test]
    fn vit_training_reduces_loss() {
        let mut rng = Prng::seed_from_u64(901);
        let task = cifar_like(&mut rng, 120, 40, 1, 8, 8);
        let spec = VitSpec {
            in_channels: 1,
            h: 8,
            w: 8,
            patch: 4,
            embed: 8,
            heads: 2,
            blocks: 1,
            mlp_hidden: 12,
            classes: 10,
        };
        let mut model = build_vit(&spec, LockSpec::evenly(4), &mut rng).unwrap();
        let summary = Trainer {
            lr: 3e-3,
            epochs: 6,
            batch_size: 16,
            ..Trainer::default()
        }
        .fit(&mut model, &task, &mut rng);
        assert!(
            summary.loss_history.first().unwrap() > summary.loss_history.last().unwrap(),
            "{:?}",
            summary.loss_history
        );
    }

    #[test]
    fn training_only_moves_parameters_not_the_key() {
        let mut rng = Prng::seed_from_u64(902);
        let task = relock_data::mnist_like(&mut rng, 100, 30, 8);
        let mut model = crate::mlp::build_mlp(
            &crate::mlp::MlpSpec {
                input: 8,
                hidden: vec![6],
                classes: 10,
            },
            LockSpec::evenly(3),
            &mut rng,
        )
        .unwrap();
        let key_before = model.true_key().clone();
        Trainer::quick().fit(&mut model, &task, &mut rng);
        assert_eq!(
            model.true_key(),
            &key_before,
            "the key is fixed during training"
        );
    }
}
