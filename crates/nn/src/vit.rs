//! The ReLU Vision-Transformer victim (paper §4.2 "V-Transformer").
//!
//! A width/depth-scaled ViT (see DESIGN.md §2): patch embedding, pre-LN
//! transformer blocks with multi-head softmax self-attention and a
//! **ReLU** MLP (the paper's "ReLU variant"), mean-token pooling and a
//! linear head. HPNN key bits protect the MLP hidden features of every
//! block (one key bit per feature, shared across tokens, mirroring the
//! §3.9(c) channel treatment).

use crate::error::BuildError;
use relock_graph::{GraphBuilder, NodeId, Op, UnitLayout};
use relock_locking::{Key, LockAllocator, LockSpec, LockedModel};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Architecture of the scaled ReLU-ViT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VitSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Patch side length (stride of the patch embedding).
    pub patch: usize,
    /// Embedding dimension.
    pub embed: usize,
    /// Attention heads (must divide `embed`).
    pub heads: usize,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Hidden width of each block's MLP (the locked layer).
    pub mlp_hidden: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Default for VitSpec {
    /// The scaled CIFAR-like geometry used in the experiments: 16 tokens of
    /// dimension 24, 3 heads, 4 blocks, 64-wide ReLU MLPs — 256 lockable
    /// features, enough for the paper's 196-bit key.
    fn default() -> Self {
        VitSpec {
            in_channels: 3,
            h: 16,
            w: 16,
            patch: 4,
            embed: 24,
            heads: 3,
            blocks: 4,
            mlp_hidden: 64,
            classes: 10,
        }
    }
}

impl VitSpec {
    /// Number of tokens (patches).
    pub fn tokens(&self) -> usize {
        (self.h / self.patch) * (self.w / self.patch)
    }
}

fn token_linear(
    gb: &mut GraphBuilder,
    rng: &mut Prng,
    tokens: usize,
    in_dim: usize,
    out_dim: usize,
    input: NodeId,
) -> Result<NodeId, BuildError> {
    Ok(gb.add(
        Op::TokenLinear {
            tokens,
            w: rng.kaiming_tensor([out_dim, in_dim], in_dim),
            b: rng.kaiming_tensor([out_dim], in_dim),
        },
        &[input],
    )?)
}

fn layer_norm(
    gb: &mut GraphBuilder,
    tokens: usize,
    dim: usize,
    input: NodeId,
) -> Result<NodeId, BuildError> {
    Ok(gb.add(
        Op::LayerNorm {
            tokens,
            dim,
            gamma: Tensor::ones([dim]),
            beta: Tensor::zeros([dim]),
        },
        &[input],
    )?)
}

/// Builds an HPNN-locked ReLU-ViT per `spec`.
///
/// # Errors
///
/// Returns [`BuildError`] if `heads` does not divide `embed`, the patch
/// size does not tile the image, or the lock plan does not fit.
pub fn build_vit(
    spec: &VitSpec,
    lock: LockSpec,
    rng: &mut Prng,
) -> Result<LockedModel, BuildError> {
    if !spec.embed.is_multiple_of(spec.heads) {
        return Err(BuildError::BadSpec(format!(
            "heads {} must divide embed {}",
            spec.heads, spec.embed
        )));
    }
    if !spec.h.is_multiple_of(spec.patch) || !spec.w.is_multiple_of(spec.patch) {
        return Err(BuildError::BadSpec(format!(
            "patch {} must tile the {}×{} input",
            spec.patch, spec.h, spec.w
        )));
    }
    if spec.blocks == 0 {
        return Err(BuildError::BadSpec("ViT needs at least one block".into()));
    }
    let tokens = spec.tokens();
    let head_dim = spec.embed / spec.heads;
    let mut alloc =
        LockAllocator::with_capacities(lock, &vec![spec.mlp_hidden; spec.blocks], rng.fork())?;
    let mut gb = GraphBuilder::new();
    let x = gb.input(spec.in_channels * spec.h * spec.w);

    // Patch embedding: a stride-`patch` convolution, then transpose the
    // channel-major (embed, tokens) map into token-major (tokens, embed).
    let g_patch = ConvGeometry {
        in_channels: spec.in_channels,
        in_h: spec.h,
        in_w: spec.w,
        k_h: spec.patch,
        k_w: spec.patch,
        stride: spec.patch,
        pad: 0,
    };
    let embed_conv = gb.add(
        Op::Conv2d {
            w: rng.kaiming_tensor([spec.embed, g_patch.patch_len()], g_patch.patch_len()),
            b: rng.kaiming_tensor([spec.embed], g_patch.patch_len()),
            geom: g_patch,
        },
        &[x],
    )?;
    let mut stream = gb.add(
        Op::TokenTranspose {
            rows: spec.embed,
            cols: tokens,
        },
        &[embed_conv],
    )?;

    for _ in 0..spec.blocks {
        // Attention sub-block (pre-LN).
        let normed = layer_norm(&mut gb, tokens, spec.embed, stream)?;
        let q = token_linear(&mut gb, rng, tokens, spec.embed, spec.embed, normed)?;
        let k = token_linear(&mut gb, rng, tokens, spec.embed, spec.embed, normed)?;
        let v = token_linear(&mut gb, rng, tokens, spec.embed, spec.embed, normed)?;
        let attn = gb.add(
            Op::Attention {
                tokens,
                heads: spec.heads,
                head_dim,
            },
            &[q, k, v],
        )?;
        let proj = token_linear(&mut gb, rng, tokens, spec.embed, spec.embed, attn)?;
        let after_attn = gb.add(Op::Add, &[stream, proj])?;

        // Locked ReLU MLP sub-block (pre-LN).
        let normed2 = layer_norm(&mut gb, tokens, spec.embed, after_attn)?;
        let up = token_linear(&mut gb, rng, tokens, spec.embed, spec.mlp_hidden, normed2)?;
        let keyed = gb.add(
            alloc.lock_layer(UnitLayout::token_feature(tokens, spec.mlp_hidden))?,
            &[up],
        )?;
        let act = gb.add(Op::Relu, &[keyed])?;
        let down = token_linear(&mut gb, rng, tokens, spec.mlp_hidden, spec.embed, act)?;
        stream = gb.add(Op::Add, &[after_attn, down])?;
    }

    let final_norm = layer_norm(&mut gb, tokens, spec.embed, stream)?;
    let pooled = gb.add(
        Op::MeanTokens {
            tokens,
            dim: spec.embed,
        },
        &[final_norm],
    )?;
    let out = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.classes, spec.embed], spec.embed),
            b: rng.kaiming_tensor([spec.classes], spec.embed),
            weight_locks: vec![],
        },
        &[pooled],
    )?;
    let slots = alloc.finish()?;
    let graph = gb.build(out)?;
    Ok(LockedModel::new(graph, Key::random(slots, rng)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> VitSpec {
        VitSpec {
            in_channels: 1,
            h: 8,
            w: 8,
            patch: 4,
            embed: 8,
            heads: 2,
            blocks: 2,
            mlp_hidden: 12,
            classes: 3,
        }
    }

    #[test]
    fn token_count() {
        assert_eq!(VitSpec::default().tokens(), 16);
        assert_eq!(tiny_spec().tokens(), 4);
    }

    #[test]
    fn builds_and_evaluates() {
        let mut rng = Prng::seed_from_u64(70);
        let m = build_vit(&tiny_spec(), LockSpec::evenly(6), &mut rng).unwrap();
        assert_eq!(m.true_key().len(), 6);
        let y = m.logits(&rng.normal_tensor([64]));
        assert_eq!(y.numel(), 3);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bad_head_split_rejected() {
        let mut rng = Prng::seed_from_u64(71);
        let spec = VitSpec {
            heads: 3,
            embed: 8,
            ..tiny_spec()
        };
        assert!(build_vit(&spec, LockSpec::none(), &mut rng).is_err());
    }

    #[test]
    fn default_supports_paper_key_sizes() {
        let mut rng = Prng::seed_from_u64(72);
        let m = build_vit(&VitSpec::default(), LockSpec::evenly(196), &mut rng).unwrap();
        assert_eq!(m.true_key().len(), 196);
        // Locks live on MLP features: unit_len == tokens.
        let sites = m.white_box().lock_sites();
        assert!(sites.iter().all(|s| s.layout.unit_len == 16));
    }

    #[test]
    fn key_sensitivity() {
        let mut rng = Prng::seed_from_u64(73);
        let m = build_vit(&tiny_spec(), LockSpec::evenly(8), &mut rng).unwrap();
        let mut wrong = m.true_key().clone();
        wrong.flip_bit(3);
        let mut differs = false;
        for _ in 0..5 {
            let x = rng.normal_tensor([64]);
            if m.logits(&x).max_abs_diff(&m.logits_with(&x, &wrong)) > 1e-9 {
                differs = true;
            }
        }
        assert!(differs);
    }
}
