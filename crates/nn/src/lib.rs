//! Model zoo and trainer for the relock experiments.
//!
//! Builds the paper's four victim architectures (§4.2) as locked
//! computation graphs, and trains them **as functions of their keys** (the
//! HPNN protocol: the key is fixed while every weight and bias adapts to
//! it):
//!
//! - [`build_mlp`] — multilayer perceptron, the paper's contractive case
//!   where the algebraic attack alone suffices;
//! - [`build_lenet`] — a ReLU LeNet-5 variant with channel-locked
//!   convolutions and neuron-locked fully-connected layers;
//! - [`build_resnet`] — a width-scaled residual network with channel locks
//!   in every block (expansive: the learning attack must take over);
//! - [`build_vit`] — a width/depth-scaled ReLU Vision Transformer with
//!   feature locks in every block's MLP.
//!
//! Scale substitutions relative to the paper are documented in DESIGN.md §2.
//!
//! # Example
//!
//! ```
//! use relock_nn::{build_mlp, MlpSpec, Trainer};
//! use relock_locking::LockSpec;
//! use relock_data::mnist_like;
//! use relock_tensor::rng::Prng;
//!
//! let mut rng = Prng::seed_from_u64(1);
//! let task = mnist_like(&mut rng, 200, 50, 16);
//! let mut model = build_mlp(
//!     &MlpSpec { input: 16, hidden: vec![12, 8], classes: 10 },
//!     LockSpec::evenly(4),
//!     &mut rng,
//! )?;
//! let summary = Trainer::quick().fit(&mut model, &task, &mut rng);
//! assert!(summary.final_train_accuracy > 0.5);
//! # Ok::<(), relock_nn::BuildError>(())
//! ```

mod error;
mod lenet;
mod lockwire;
mod mlp;
mod resnet;
mod trainer;
mod vit;

pub use error::BuildError;
pub use lenet::{build_lenet, LenetSpec};
pub use mlp::{build_mlp, build_mlp_weight_locked, MlpSpec};
pub use resnet::{build_resnet, ResnetSpec, StageSpec};
pub use trainer::{Trainer, TrainingSummary};
pub use vit::{build_vit, VitSpec};
