//! The residual-network victim (paper §4.2 "ResNet").
//!
//! A width/depth-scaled CIFAR-style ResNet (see DESIGN.md §2): a stem
//! convolution followed by stages of basic blocks
//! `conv → lock → relu → conv → lock → (+skip) → relu`, a global average
//! pool, and a linear classifier. Every convolution inside a block (and the
//! stem) carries §3.9(c) channel locks, making the network expansive almost
//! everywhere — the regime where the paper's algebraic step yields ⊥ and
//! the learning attack plus validation/correction must carry the attack.

use crate::error::BuildError;
use relock_graph::{GraphBuilder, NodeId, Op, UnitLayout};
use relock_locking::{Key, LockAllocator, LockSpec, LockedModel};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::rng::Prng;

/// One stage of the residual network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Output channels of every block in the stage.
    pub channels: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Stride of the stage's first convolution (2 = downsample).
    pub stride: usize,
}

/// Architecture of the scaled ResNet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResnetSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Stem convolution channels.
    pub stem: usize,
    /// Residual stages.
    pub stages: Vec<StageSpec>,
    /// Number of classes.
    pub classes: usize,
}

impl Default for ResnetSpec {
    /// The scaled CIFAR-like geometry used in the experiments: 3×16×16
    /// input, 16-channel stem, stages 16/32/64 with one downsample each —
    /// 13 lockable layers, enough capacity for the paper's 196-bit key.
    fn default() -> Self {
        ResnetSpec {
            in_channels: 3,
            h: 16,
            w: 16,
            stem: 16,
            stages: vec![
                StageSpec {
                    channels: 16,
                    blocks: 2,
                    stride: 1,
                },
                StageSpec {
                    channels: 32,
                    blocks: 2,
                    stride: 2,
                },
                StageSpec {
                    channels: 64,
                    blocks: 2,
                    stride: 2,
                },
            ],
            classes: 10,
        }
    }
}

impl ResnetSpec {
    /// Number of lockable layers: the stem plus two per block.
    pub fn lockable_layers(&self) -> usize {
        1 + 2 * self.stages.iter().map(|s| s.blocks).sum::<usize>()
    }
}

fn conv3(in_c: usize, in_h: usize, in_w: usize, stride: usize) -> ConvGeometry {
    ConvGeometry {
        in_channels: in_c,
        in_h,
        in_w,
        k_h: 3,
        k_w: 3,
        stride,
        pad: 1,
    }
}

fn add_conv(
    gb: &mut GraphBuilder,
    rng: &mut Prng,
    geom: ConvGeometry,
    out_c: usize,
    input: NodeId,
) -> Result<NodeId, BuildError> {
    Ok(gb.add(
        Op::Conv2d {
            w: rng.kaiming_tensor([out_c, geom.patch_len()], geom.patch_len()),
            b: rng.kaiming_tensor([out_c], geom.patch_len()),
            geom,
        },
        &[input],
    )?)
}

/// Builds an HPNN-locked residual network per `spec`.
///
/// # Errors
///
/// Returns [`BuildError`] on a degenerate spec or an unsatisfiable lock
/// plan (e.g. more bits per layer than channels).
pub fn build_resnet(
    spec: &ResnetSpec,
    lock: LockSpec,
    rng: &mut Prng,
) -> Result<LockedModel, BuildError> {
    if spec.stages.is_empty() {
        return Err(BuildError::BadSpec(
            "ResNet needs at least one stage".into(),
        ));
    }
    let mut capacities = vec![spec.stem];
    for stage in &spec.stages {
        for _ in 0..stage.blocks {
            capacities.push(stage.channels);
            capacities.push(stage.channels);
        }
    }
    let mut alloc = LockAllocator::with_capacities(lock, &capacities, rng.fork())?;
    let mut gb = GraphBuilder::new();
    let x = gb.input(spec.in_channels * spec.h * spec.w);

    // Stem.
    let g0 = conv3(spec.in_channels, spec.h, spec.w, 1);
    let stem = add_conv(&mut gb, rng, g0, spec.stem, x)?;
    let k0 = gb.add(
        alloc.lock_layer(UnitLayout::channel_major(spec.stem, g0.out_positions()))?,
        &[stem],
    )?;
    let mut prev = gb.add(Op::Relu, &[k0])?;
    let (mut cur_c, mut cur_h, mut cur_w) = (spec.stem, g0.out_h(), g0.out_w());

    for stage in &spec.stages {
        for block in 0..stage.blocks {
            let stride = if block == 0 { stage.stride } else { 1 };
            let g_a = conv3(cur_c, cur_h, cur_w, stride);
            let (out_h, out_w) = (g_a.out_h(), g_a.out_w());
            let conv_a = add_conv(&mut gb, rng, g_a, stage.channels, prev)?;
            let k_a = gb.add(
                alloc.lock_layer(UnitLayout::channel_major(
                    stage.channels,
                    g_a.out_positions(),
                ))?,
                &[conv_a],
            )?;
            let r_a = gb.add(Op::Relu, &[k_a])?;

            let g_b = conv3(stage.channels, out_h, out_w, 1);
            let conv_b = add_conv(&mut gb, rng, g_b, stage.channels, r_a)?;
            let k_b = gb.add(
                alloc.lock_layer(UnitLayout::channel_major(
                    stage.channels,
                    g_b.out_positions(),
                ))?,
                &[conv_b],
            )?;

            // Skip path: identity when shapes match, 1×1 strided conv
            // otherwise (unlocked, as in the original ResNet).
            let skip = if stride == 1 && cur_c == stage.channels {
                prev
            } else {
                let g_s = ConvGeometry {
                    in_channels: cur_c,
                    in_h: cur_h,
                    in_w: cur_w,
                    k_h: 1,
                    k_w: 1,
                    stride,
                    pad: 0,
                };
                add_conv(&mut gb, rng, g_s, stage.channels, prev)?
            };
            let joined = gb.add(Op::Add, &[k_b, skip])?;
            prev = gb.add(Op::Relu, &[joined])?;
            (cur_c, cur_h, cur_w) = (stage.channels, out_h, out_w);
        }
    }

    let pool = gb.add(
        Op::AvgPoolGlobal {
            channels: cur_c,
            positions: cur_h * cur_w,
        },
        &[prev],
    )?;
    let out = gb.add(
        Op::Linear {
            w: rng.kaiming_tensor([spec.classes, cur_c], cur_c),
            b: rng.kaiming_tensor([spec.classes], cur_c),
            weight_locks: vec![],
        },
        &[pool],
    )?;
    let slots = alloc.finish()?;
    let graph = gb.build(out)?;
    Ok(LockedModel::new(graph, Key::random(slots, rng)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ResnetSpec {
        ResnetSpec {
            in_channels: 2,
            h: 8,
            w: 8,
            stem: 4,
            stages: vec![
                StageSpec {
                    channels: 4,
                    blocks: 1,
                    stride: 1,
                },
                StageSpec {
                    channels: 8,
                    blocks: 1,
                    stride: 2,
                },
            ],
            classes: 3,
        }
    }

    #[test]
    fn lockable_layer_count() {
        assert_eq!(ResnetSpec::default().lockable_layers(), 13);
        assert_eq!(tiny_spec().lockable_layers(), 5);
    }

    #[test]
    fn builds_and_evaluates() {
        let mut rng = Prng::seed_from_u64(60);
        let m = build_resnet(&tiny_spec(), LockSpec::evenly(10), &mut rng).unwrap();
        assert_eq!(m.true_key().len(), 10);
        let y = m.logits(&rng.normal_tensor([2 * 8 * 8]));
        assert_eq!(y.numel(), 3);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn default_supports_paper_key_sizes() {
        let mut rng = Prng::seed_from_u64(61);
        let m = build_resnet(&ResnetSpec::default(), LockSpec::evenly(196), &mut rng).unwrap();
        assert_eq!(m.true_key().len(), 196);
    }

    #[test]
    fn residual_skip_preserves_gradient_flow() {
        // The block output must depend on its input both through the conv
        // path and the skip: zeroing the conv weights must not disconnect
        // the network.
        let mut rng = Prng::seed_from_u64(62);
        let m = build_resnet(&tiny_spec(), LockSpec::none(), &mut rng).unwrap();
        let x1 = rng.normal_tensor([128]);
        let x2 = rng.normal_tensor([128]);
        assert!(m.logits(&x1).max_abs_diff(&m.logits(&x2)) > 1e-9);
    }
}
