//! Shared lock-stage wiring for the model builders.

use crate::error::BuildError;
use relock_graph::{GraphBuilder, NodeId, UnitLayout};
use relock_locking::LockAllocator;

/// Inserts this layer's lock stage after pre-activation node `pre`.
///
/// Unit locks (sign/scale) consume only the pre-activation; trigger locks
/// additionally take the raw network input `x` as a second parent, whose
/// sign pattern drives the comparator. A zero-bit trigger share degenerates
/// to a unary pass-through op and is wired like a unit lock.
pub(crate) fn add_lock_stage(
    gb: &mut GraphBuilder,
    alloc: &mut LockAllocator,
    trigger: bool,
    layout: UnitLayout,
    pre: NodeId,
    x: NodeId,
    input_dim: usize,
) -> Result<NodeId, BuildError> {
    if trigger {
        let op = alloc.lock_trigger_layer(layout, input_dim)?;
        if op.arity() == 2 {
            Ok(gb.add(op, &[pre, x])?)
        } else {
            Ok(gb.add(op, &[pre])?)
        }
    } else {
        Ok(gb.add(alloc.lock_layer(layout)?, &[pre])?)
    }
}
