//! End-to-end backend equivalence: the whole decryption attack — key,
//! query traffic, and every checkpoint frame — must be **byte-identical**
//! whichever gemm backend executes it.
//!
//! The kernels guarantee bit-identical f64 results across backends (each
//! SIMD lane replays the scalar accumulation order; see DESIGN.md), so
//! everything downstream of them — bisection trajectories, learned
//! multipliers, broker traffic, serialized checkpoints — must agree to
//! the last bit. This test closes the loop from the kernel contract to
//! the attack's observable artifacts.
//!
//! Everything lives in ONE `#[test]` because the backend override is
//! process-global: concurrent test threads flipping it would race.

use relock_attack::{
    AttackConfig, AttackState, CheckpointPolicy, Decryptor, MemoryCheckpointSink, MonolithicAttack,
    MonolithicConfig,
};
use relock_locking::{CountingOracle, Key, LockSpec, LockedModel};
use relock_nn::{build_mlp, MlpSpec};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::backend::{avx_available, set_backend_override};
use relock_tensor::rng::Prng;
use relock_tensor::BackendKind;

fn victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(7100);
    build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![8, 6],
            classes: 4,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .expect("spec fits")
}

/// Key + query count + final checkpoint bytes of a full checkpointed
/// decryption run under a forced backend.
fn decryption_under(kind: BackendKind, model: &LockedModel) -> (Key, u64, Vec<u8>) {
    set_backend_override(Some(kind));
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let sink = MemoryCheckpointSink::new();
    let report = Decryptor::new(AttackConfig::fast())
        .run_with_checkpoints(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(7101),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .expect("attack run");
    set_backend_override(None);
    let frame = sink.contents().expect("at least one checkpoint frame");
    (report.key, report.queries, normalize_frame(&frame))
}

/// Re-encodes a checkpoint frame with its only non-deterministic content
/// — wall-clock timings — zeroed. Everything else (key bits, PRNG state,
/// layer reports, warm multiplier bit patterns, query accounting) must
/// then be byte-identical across backends.
fn normalize_frame(bytes: &[u8]) -> Vec<u8> {
    let mut state = AttackState::decode(bytes).expect("valid checkpoint frame");
    state.timing_nanos = [0; 4];
    state.stats.oracle_time = std::time::Duration::ZERO;
    state.encode()
}

/// Key + query count + multiplier bit patterns of the monolithic learning
/// attack under a forced backend and precision.
fn monolithic_under(
    kind: BackendKind,
    precision: relock_graph::Precision,
    model: &LockedModel,
) -> (Key, u64, Vec<u64>) {
    set_backend_override(Some(kind));
    let oracle = CountingOracle::new(model);
    let mut cfg = MonolithicConfig {
        input_scale: 2.0,
        ..MonolithicConfig::default()
    };
    cfg.learning.samples = 96;
    cfg.learning.epochs = 30;
    cfg.learning.precision = precision;
    let report =
        MonolithicAttack::new(cfg).run(model.white_box(), &oracle, &mut Prng::seed_from_u64(7102));
    set_backend_override(None);
    let bits = report.multipliers.iter().map(|m| m.to_bits()).collect();
    (report.key, report.queries, bits)
}

#[test]
fn attacks_are_byte_identical_across_backends() {
    let model = victim();
    let mut kinds = vec![BackendKind::Scalar, BackendKind::SimdPortable];
    if avx_available() {
        kinds.push(BackendKind::Simd);
    }

    // Full decryption attack: key, traffic, and checkpoint frames agree.
    let (ref_key, ref_queries, ref_frame) = decryption_under(kinds[0], &model);
    for &kind in &kinds[1..] {
        let (key, queries, frame) = decryption_under(kind, &model);
        assert_eq!(key, ref_key, "{kind:?}: extracted key diverged");
        assert_eq!(queries, ref_queries, "{kind:?}: query traffic diverged");
        assert_eq!(frame, ref_frame, "{kind:?}: checkpoint bytes diverged");
    }

    // Monolithic learning attack at f64: multipliers agree to the bit.
    let (ref_key, ref_queries, ref_bits) =
        monolithic_under(kinds[0], relock_graph::Precision::F64, &model);
    for &kind in &kinds[1..] {
        let (key, queries, bits) = monolithic_under(kind, relock_graph::Precision::F64, &model);
        assert_eq!(key, ref_key, "{kind:?}: monolithic f64 key diverged");
        assert_eq!(queries, ref_queries);
        assert_eq!(bits, ref_bits, "{kind:?}: f64 multiplier bits diverged");
    }

    // The f32 fast path holds the same cross-backend contract: its
    // kernels also accumulate in scalar order, so forced-SIMD f32 runs
    // are bit-identical to scalar f32 runs (though not to f64 ones).
    let (ref_key, ref_queries, ref_bits) =
        monolithic_under(kinds[0], relock_graph::Precision::F32, &model);
    for &kind in &kinds[1..] {
        let (key, queries, bits) = monolithic_under(kind, relock_graph::Precision::F32, &model);
        assert_eq!(key, ref_key, "{kind:?}: monolithic f32 key diverged");
        assert_eq!(queries, ref_queries);
        assert_eq!(bits, ref_bits, "{kind:?}: f32 multiplier bits diverged");
    }
}
