//! Property-style tests of the attack crate's pure components (randomized
//! with the in-tree `Prng`; no external test dependencies).

use relock_attack::correction_candidates;
use relock_tensor::rng::Prng;

/// Candidate flip sets are valid indices, respect the Hamming bound,
/// and come in non-decreasing Hamming order.
#[test]
fn correction_candidates_are_well_formed() {
    let mut rng = Prng::seed_from_u64(0xFACADE);
    for _ in 0..64 {
        let n = 1 + rng.below(23);
        let conf: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let window = 1 + rng.below(23);
        let max_hd = 1 + rng.below(4);
        let cap = 1 + rng.below(63);
        let cands = correction_candidates(&conf, window, max_hd, cap);
        let mut last_hd = 0usize;
        for c in &cands {
            assert!(!c.is_empty());
            assert!(c.len() <= max_hd);
            assert!(c.len() >= last_hd, "Hamming order violated");
            last_hd = c.len();
            for &i in c {
                assert!(i < conf.len());
            }
            // No duplicate indices inside a candidate.
            let mut s = c.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), c.len());
        }
        // Per-Hamming-distance cap respected.
        for hd in 1..=max_hd {
            assert!(cands.iter().filter(|c| c.len() == hd).count() <= cap);
        }
    }
}

/// The first candidate is always the single flip of the least-confident
/// bit.
#[test]
fn least_confident_bit_is_tried_first() {
    let mut rng = Prng::seed_from_u64(0xBEEF);
    for _ in 0..64 {
        let n = 2 + rng.below(14);
        let conf: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let cands = correction_candidates(&conf, conf.len(), 2, 100);
        assert!(!cands.is_empty());
        let argmin = (0..conf.len())
            .min_by(|&a, &b| conf[a].partial_cmp(&conf[b]).unwrap())
            .unwrap();
        // Ties permit any minimal index; check by value instead.
        assert!(
            (conf[cands[0][0]] - conf[argmin]).abs() < 1e-12,
            "first flip has confidence {} but min is {}",
            conf[cands[0][0]],
            conf[argmin]
        );
    }
}
