//! Property-style tests of the attack crate's pure components.

use proptest::prelude::*;
use relock_attack::correction_candidates;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Candidate flip sets are valid indices, respect the Hamming bound,
    /// and come in non-decreasing Hamming order.
    #[test]
    fn correction_candidates_are_well_formed(
        conf in proptest::collection::vec(0.0f64..1.0, 1..24),
        window in 1usize..24,
        max_hd in 1usize..5,
        cap in 1usize..64,
    ) {
        let cands = correction_candidates(&conf, window, max_hd, cap);
        let mut last_hd = 0usize;
        for c in &cands {
            prop_assert!(!c.is_empty());
            prop_assert!(c.len() <= max_hd);
            prop_assert!(c.len() >= last_hd, "Hamming order violated");
            last_hd = c.len();
            for &i in c {
                prop_assert!(i < conf.len());
            }
            // No duplicate indices inside a candidate.
            let mut s = c.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), c.len());
        }
        // Per-Hamming-distance cap respected.
        for hd in 1..=max_hd {
            prop_assert!(cands.iter().filter(|c| c.len() == hd).count() <= cap);
        }
    }

    /// The first candidate is always the single flip of the least-confident
    /// bit.
    #[test]
    fn least_confident_bit_is_tried_first(
        conf in proptest::collection::vec(0.0f64..1.0, 2..16),
    ) {
        let cands = correction_candidates(&conf, conf.len(), 2, 100);
        prop_assert!(!cands.is_empty());
        let argmin = (0..conf.len())
            .min_by(|&a, &b| conf[a].partial_cmp(&conf[b]).unwrap())
            .unwrap();
        // Ties permit any minimal index; check by value instead.
        prop_assert!(
            (conf[cands[0][0]] - conf[argmin]).abs() < 1e-12,
            "first flip has confidence {} but min is {}",
            conf[cands[0][0]],
            conf[argmin]
        );
    }
}
