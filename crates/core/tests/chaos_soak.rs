//! Kill-and-resume soak tests: the attack is killed at scheduled points by
//! a `ChaosOracle` (a panic standing in for SIGKILL), resumed from its
//! last checkpoint with a fresh broker, and must still recover the exact
//! key an uninterrupted run finds — bit-identically, on both an MLP and a
//! LeNet victim. A transient-fault soak checks the retry path end to end,
//! and a mid-soak corruption test checks the clean-fallback contract.

use relock_attack::{
    AttackConfig, AttackState, CheckpointPolicy, DecryptionReport, Decryptor, MemoryCheckpointSink,
};
use relock_locking::{CountingOracle, LockSpec, LockedModel, Oracle};
use relock_nn::{build_lenet, build_mlp, LenetSpec, MlpSpec};
use relock_serve::{Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle, RetryPolicy};
use relock_tensor::rng::Prng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn mlp_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(500);
    build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap()
}

fn lenet_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(510);
    build_lenet(
        &LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 3,
            c2: 4,
            fc1: 10,
            fc2: 8,
            classes: 4,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap()
}

fn reference_run(model: &LockedModel, attack_seed: u64) -> DecryptionReport {
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    Decryptor::new(AttackConfig::fast())
        .run_brokered(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
        )
        .unwrap()
}

struct SoakOutcome {
    report: DecryptionReport,
    /// Cumulative-row points at which scheduled crashes actually fired.
    crashes: Vec<u64>,
    /// `(layer_index, phase)` of the checkpoint each post-crash segment
    /// resumed from.
    resume_phases: Vec<(usize, String)>,
}

/// Runs the attack under a crash-only chaos schedule, resuming after every
/// kill until a segment completes. Each segment gets a fresh broker — the
/// checkpoint carries the accounting across the crash — while the chaos
/// oracle (like real hardware) lives through the whole session, so its
/// cumulative-row crash points span segments.
fn soak(model: &LockedModel, attack_seed: u64, crash_at: Vec<u64>) -> SoakOutcome {
    let g = model.white_box();
    let scheduled = crash_at.len();
    let chaos = ChaosOracle::new(
        CountingOracle::new(model),
        ChaosConfig::crash_only(9, crash_at),
    );
    let dec = Decryptor::new(AttackConfig::fast());
    let sink = MemoryCheckpointSink::new();
    let mut crashes = Vec::new();
    let mut resume_phases = Vec::new();
    loop {
        assert!(
            crashes.len() <= scheduled,
            "more unwinds than scheduled crash points"
        );
        if !crashes.is_empty() {
            let bytes = sink.contents().expect("crashed past the first checkpoint");
            let st = AttackState::decode(&bytes).expect("crash must leave a valid checkpoint");
            resume_phases.push((st.layer_index, st.phase_name().to_string()));
        }
        let broker = Broker::with_config(&chaos, BrokerConfig::default());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(attack_seed);
            dec.resume(g, &broker, &mut rng, &sink, CheckpointPolicy::EVERY_CUT)
        }));
        match attempt {
            Ok(Ok((report, _status))) => {
                assert_eq!(
                    chaos.counters().crashes,
                    crashes.len() as u64,
                    "chaos counters must agree with observed unwinds"
                );
                return SoakOutcome {
                    report,
                    crashes,
                    resume_phases,
                };
            }
            Ok(Err(e)) => panic!("attack error during soak: {e}"),
            Err(payload) => {
                let crash = payload
                    .downcast::<ChaosCrash>()
                    .expect("only scheduled chaos crashes should unwind");
                crashes.push(crash.at_rows);
            }
        }
    }
}

fn assert_soak_matches_reference(model: &LockedModel, attack_seed: u64) {
    let reference = reference_run(model, attack_seed);
    assert_eq!(
        reference.fidelity(model.true_key()),
        1.0,
        "reference run must recover the key exactly"
    );
    // Crash points derived from the uninterrupted run's traffic so the
    // kills land inside the attack, spread across its lifetime.
    let q = reference.queries;
    assert!(q > 16, "victim too small to place crash points ({q} rows)");
    let crash_at = vec![q / 8, q / 2, (q * 3) / 4];
    let soaked = soak(model, attack_seed, crash_at);

    assert!(
        soaked.crashes.len() >= 3,
        "expected at least 3 kills, got {:?}",
        soaked.crashes
    );
    assert!(
        soaked
            .resume_phases
            .iter()
            .any(|(_, phase)| phase != "layer-start"),
        "no kill landed mid-layer: {:?}",
        soaked.resume_phases
    );
    assert_eq!(
        soaked.report.key, reference.key,
        "resumed key must be bit-identical to the uninterrupted run"
    );
    assert_eq!(soaked.report.fidelity(model.true_key()), 1.0);
    assert_eq!(soaked.report.layers.len(), reference.layers.len());
    for (s, r) in soaked.report.layers.iter().zip(&reference.layers) {
        assert_eq!(s.keyed_node, r.keyed_node);
        assert_eq!(s.bits, r.bits);
        assert_eq!(
            (s.algebraic, s.learned, s.corrected),
            (r.algebraic, r.learned, r.corrected),
            "per-layer decisions must replay identically"
        );
    }
    assert!(
        soaked.report.queries >= reference.queries,
        "replayed segments cannot spend fewer rows than the clean run"
    );
}

#[test]
fn mlp_survives_scheduled_kills_bit_identically() {
    assert_soak_matches_reference(&mlp_victim(), 501);
}

#[test]
fn lenet_survives_scheduled_kills_bit_identically() {
    assert_soak_matches_reference(&lenet_victim(), 512);
}

/// A checkpoint corrupted *between* segments (disk rot, torn copy) must
/// not poison the session: the next segment falls back to a fresh run and
/// the remaining crash points still fire and resume normally.
#[test]
fn corrupted_mid_soak_checkpoint_still_recovers_exact_key() {
    let model = mlp_victim();
    let reference = reference_run(&model, 501);
    let q = reference.queries;
    let g = model.white_box();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig::crash_only(9, vec![q / 4, q / 2 + q / 4]),
    );
    let dec = Decryptor::new(AttackConfig::fast());
    let sink = MemoryCheckpointSink::new();
    let mut kills = 0u32;
    let report = loop {
        let broker = Broker::with_config(&chaos, BrokerConfig::default());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(501);
            dec.resume(g, &broker, &mut rng, &sink, CheckpointPolicy::EVERY_CUT)
        }));
        match attempt {
            Ok(Ok((report, _))) => break report,
            Ok(Err(e)) => panic!("attack error: {e}"),
            Err(payload) => {
                payload.downcast::<ChaosCrash>().expect("scheduled crash");
                kills += 1;
                if kills == 1 {
                    // Rot the snapshot the first resume would load.
                    let mut bytes = sink.contents().expect("checkpoint written");
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x10;
                    sink.set(Some(bytes));
                }
            }
        }
    };
    assert_eq!(kills, 2);
    assert_eq!(report.key, reference.key);
    assert_eq!(report.fidelity(model.true_key()), 1.0);
}

/// Transient chaos faults (dropped requests) are absorbed by the broker's
/// retry policy without perturbing the recovered key, and the injected
/// fault count is published into the broker's statistics.
#[test]
fn attack_succeeds_through_transient_chaos_with_retries() {
    let model = mlp_victim();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig {
            seed: 13,
            transient_rate: 0.10,
            ..ChaosConfig::default()
        },
    );
    let broker = Broker::with_config(
        &chaos,
        BrokerConfig {
            retry: RetryPolicy {
                max_attempts: 24,
                base_backoff: Duration::ZERO,
                multiplier: 1,
                ..RetryPolicy::default()
            },
            ..BrokerConfig::default()
        },
    );
    let report = Decryptor::new(AttackConfig::fast())
        .run_brokered(model.white_box(), &broker, &mut Prng::seed_from_u64(501))
        .unwrap();
    assert_eq!(report.fidelity(model.true_key()), 1.0);

    chaos.sync_stats(broker.stats());
    let snap = broker.snapshot();
    assert!(snap.injected_faults > 0, "10% drop rate must inject faults");
    assert_eq!(snap.injected_faults, chaos.counters().transient_errors);
    assert_eq!(
        snap.retries, snap.injected_faults,
        "every transient error costs exactly one retry"
    );

    // And the values never drifted: a clean oracle agrees bit-for-bit.
    let clean = reference_run(&model, 501);
    assert_eq!(report.key, clean.key);
}

/// Concurrency soak: the sharded engine (4 workers) hammers a chaotic
/// oracle that injects transient faults *and* latency spikes, so worker
/// threads pile up on the broker while retries reorder its traffic. The
/// fault schedule interleaves with the thread schedule, so query totals
/// are not compared against a clean run — what must survive contention is
/// (a) the recovered key, still bit-identical to a clean sequential run,
/// and (b) the broker's books: every requested row is either a cache hit
/// or an underlying row, globally and within every procedure scope, and
/// the underlying total agrees with the oracle's own row counter — no
/// row lost or double-counted anywhere.
#[test]
fn parallel_attack_under_transient_chaos_keeps_exact_accounting() {
    let model = mlp_victim();
    let clean = reference_run(&model, 501);
    assert_eq!(clean.fidelity(model.true_key()), 1.0);

    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig {
            seed: 29,
            transient_rate: 0.08,
            latency_spike_rate: 0.05,
            latency_spike: Duration::from_micros(300),
            ..ChaosConfig::default()
        },
    );
    let broker = Broker::with_config(
        &chaos,
        BrokerConfig {
            retry: RetryPolicy {
                max_attempts: 24,
                base_backoff: Duration::ZERO,
                multiplier: 1,
                ..RetryPolicy::default()
            },
            ..BrokerConfig::default()
        },
    );
    let cfg = AttackConfig {
        threads: 4,
        ..AttackConfig::fast()
    };
    let report = Decryptor::new(cfg)
        .run_brokered(model.white_box(), &broker, &mut Prng::seed_from_u64(501))
        .unwrap();
    assert_eq!(
        report.key, clean.key,
        "chaos under contention must not perturb the recovered key"
    );
    assert_eq!(report.fidelity(model.true_key()), 1.0);

    chaos.sync_stats(broker.stats());
    let snap = broker.snapshot();
    assert!(
        snap.injected_faults > 0,
        "fault schedule must actually fire"
    );
    assert!(
        snap.is_balanced(),
        "requested must equal cache_hits + underlying globally and per scope: {snap:?}"
    );
    assert_eq!(
        snap.underlying,
        chaos.query_count(),
        "broker's underlying total must agree with the oracle's row counter"
    );
    assert_eq!(report.queries, snap.underlying);
}
