//! Bit-identical parallel equivalence: the sharded recovery engine at 2,
//! 4, and 8 worker threads must reproduce the sequential run *exactly* —
//! recovered key, underlying query count, broker accounting, per-layer
//! decisions, and every checkpoint frame byte-for-byte (wall-clock fields
//! zeroed). This is the determinism contract of DESIGN.md §3e, checked as
//! a seeded sweep over two victim architectures and over the algebraic,
//! learning, and error-correction paths.
//!
//! Victims, sinks, normalizers, and the trace assertions live in
//! `relock_attack::testutil`, shared with the distributed and
//! lock-variant suites.

use relock_attack::testutil::{lenet_victim, mlp16_victim, run_threads, strip_clock};
use relock_attack::AttackConfig;
use relock_locking::LockedModel;

/// Runs the sweep: `threads = 1` is the reference; 2, 4, and 8 must match
/// it bit-for-bit on every observable the engine promises to keep stable.
fn assert_parallel_matches_sequential(
    model: &LockedModel,
    cfg: AttackConfig,
    seeds: &[u64],
    label: &str,
) {
    for &seed in seeds {
        let reference = run_threads(model, cfg, 1, seed);
        assert_eq!(
            reference.report.fidelity(model.true_key()),
            1.0,
            "{label} seed {seed}: sequential reference must recover the key exactly"
        );
        assert!(
            !reference.frames.is_empty(),
            "{label} seed {seed}: EVERY_CUT must persist at least one frame"
        );
        for threads in [2usize, 4, 8] {
            let t = run_threads(model, cfg, threads, seed);
            let ctx = format!("{label} seed {seed} threads {threads}");
            assert_eq!(
                t.report.key, reference.report.key,
                "{ctx}: recovered key diverged"
            );
            assert_eq!(
                t.report.queries, reference.report.queries,
                "{ctx}: underlying query count diverged"
            );
            assert_eq!(
                strip_clock(&t.report.stats),
                strip_clock(&reference.report.stats),
                "{ctx}: broker accounting diverged"
            );
            assert_eq!(
                t.report.layers.len(),
                reference.report.layers.len(),
                "{ctx}: layer count diverged"
            );
            for (p, r) in t.report.layers.iter().zip(&reference.report.layers) {
                assert_eq!(p.keyed_node, r.keyed_node, "{ctx}: layer order diverged");
                assert_eq!(
                    (p.bits, p.algebraic, p.learned, p.corrected, p.validated),
                    (r.bits, r.algebraic, r.learned, r.corrected, r.validated),
                    "{ctx}: per-layer decisions diverged at node {:?}",
                    p.keyed_node
                );
                assert_eq!(
                    p.validation_rounds, r.validation_rounds,
                    "{ctx}: validation traffic diverged at node {:?}",
                    p.keyed_node
                );
            }
            assert_eq!(
                t.frames.len(),
                reference.frames.len(),
                "{ctx}: checkpoint cadence diverged"
            );
            for (i, (p, r)) in t.frames.iter().zip(&reference.frames).enumerate() {
                assert_eq!(
                    p,
                    r,
                    "{ctx}: checkpoint frame {i} of {} is not byte-identical",
                    reference.frames.len()
                );
            }
        }
    }
}

#[test]
fn mlp16_sweep_is_bit_identical_across_thread_counts() {
    assert_parallel_matches_sequential(
        &mlp16_victim(),
        AttackConfig::fast(),
        &[701, 702, 703],
        "mlp16",
    );
}

#[test]
fn lenet_sweep_is_bit_identical_across_thread_counts() {
    assert_parallel_matches_sequential(&lenet_victim(), AttackConfig::fast(), &[512, 516], "lenet");
}

/// Forcing the learning path (ablation A1) drags every layer through the
/// §3.6 training harvest, §3.7 validation, and — on layers the learner
/// leaves imperfect — §3.8 wave correction, so this sweep pins the paths
/// the algebraic runs may skip. Seed 700 recovers through learning alone;
/// seed 732 commits corrected bits, exercising the wave-commit merge.
#[test]
fn learning_and_correction_paths_are_bit_identical_across_thread_counts() {
    let cfg = AttackConfig {
        disable_algebraic: true,
        ..AttackConfig::fast()
    };
    let victim = mlp16_victim();
    assert_parallel_matches_sequential(&victim, cfg, &[700, 732], "mlp16-learned");
    let corrected: usize = run_threads(&victim, cfg, 1, 732)
        .report
        .layers
        .iter()
        .map(|l| l.corrected)
        .sum();
    assert!(
        corrected > 0,
        "seed 732 must exercise the error-correction wave path"
    );
}
