//! No-overhead / no-feedback contract of the trace layer: a fully
//! instrumented MLP-16 attack run under a `NullRecorder` — or a real
//! `FlightRecorder` — must be bit-identical to the un-instrumented path:
//! same key, same underlying query count, same broker accounting, same
//! checkpoint frames byte-for-byte (wall-clock fields zeroed), at 1 and 4
//! threads. Tracing observes the engine; it must never steer it.
//!
//! This file is its own test binary on purpose: the recorder is a process
//! global, so installs here can't leak into other suites, and the tests
//! below serialize among themselves with a lock.

use relock_attack::{
    AttackConfig, AttackState, CheckpointPolicy, CheckpointSink, DecryptionReport, Decryptor,
};
use relock_locking::{CountingOracle, LockSpec, LockedModel};
use relock_nn::{build_mlp, MlpSpec};
use relock_serve::{Broker, BrokerConfig, QueryStatsSnapshot};
use relock_tensor::rng::Prng;
use relock_trace::{Event, FlightRecorder, NullRecorder};
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes recorder installs across the tests in this binary — the
/// recorder is process-global state.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn mlp16_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(700);
    build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::evenly(16),
        &mut rng,
    )
    .unwrap()
}

#[derive(Default)]
struct RecordingSink {
    frames: Mutex<Vec<Vec<u8>>>,
}

impl RecordingSink {
    fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.lock().expect("sink poisoned").clone()
    }
}

impl CheckpointSink for RecordingSink {
    fn save(&self, bytes: &[u8]) -> io::Result<()> {
        self.frames
            .lock()
            .expect("sink poisoned")
            .push(bytes.to_vec());
        Ok(())
    }

    fn load(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.frames.lock().expect("sink poisoned").last().cloned())
    }
}

/// Re-encodes a frame with wall-clock fields zeroed; everything else must
/// be deterministic and is compared byte-for-byte.
fn normalize_frame(frame: &[u8]) -> Vec<u8> {
    let mut st = AttackState::decode(frame).expect("engine wrote an undecodable frame");
    st.timing_nanos = [0; 4];
    st.stats.oracle_time = Duration::ZERO;
    st.encode()
}

fn strip_clock(stats: &QueryStatsSnapshot) -> QueryStatsSnapshot {
    let mut s = stats.clone();
    s.oracle_time = Duration::ZERO;
    s
}

struct RunTrace {
    report: DecryptionReport,
    frames: Vec<Vec<u8>>,
}

fn run(model: &LockedModel, threads: usize) -> RunTrace {
    let cfg = AttackConfig {
        threads,
        ..AttackConfig::fast()
    };
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let sink = RecordingSink::default();
    let (report, _status) = Decryptor::new(cfg)
        .resume(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(701),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();
    RunTrace {
        report,
        frames: sink.frames().iter().map(|f| normalize_frame(f)).collect(),
    }
}

fn assert_same_run(a: &RunTrace, b: &RunTrace, ctx: &str) {
    assert_eq!(a.report.key, b.report.key, "{ctx}: recovered key diverged");
    assert_eq!(
        a.report.queries, b.report.queries,
        "{ctx}: underlying query count diverged"
    );
    assert_eq!(
        strip_clock(&a.report.stats),
        strip_clock(&b.report.stats),
        "{ctx}: broker accounting diverged"
    );
    assert_eq!(
        a.frames.len(),
        b.frames.len(),
        "{ctx}: checkpoint cadence diverged"
    );
    for (i, (fa, fb)) in a.frames.iter().zip(&b.frames).enumerate() {
        assert_eq!(fa, fb, "{ctx}: checkpoint frame {i} is not byte-identical");
    }
}

/// The headline contract: un-instrumented vs `NullRecorder` vs
/// `FlightRecorder`, at 1 and 4 threads, all bit-identical — and the
/// flight recorder must have actually captured the instrumentation it was
/// installed to observe (a trivially-empty trace would prove nothing).
#[test]
fn instrumented_attack_is_bit_identical_to_uninstrumented() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = mlp16_victim();
    for threads in [1usize, 4] {
        let bare = run(&model, threads);
        assert_eq!(
            bare.report.fidelity(model.true_key()),
            1.0,
            "threads {threads}: reference run must recover the key exactly"
        );
        assert!(!bare.frames.is_empty(), "EVERY_CUT must persist frames");

        let null = relock_trace::with_recorder(Arc::new(NullRecorder), || run(&model, threads));
        assert_same_run(&null, &bare, &format!("NullRecorder threads {threads}"));

        let flight = Arc::new(FlightRecorder::new());
        let traced = relock_trace::with_recorder(flight.clone(), || run(&model, threads));
        assert_same_run(&traced, &bare, &format!("FlightRecorder threads {threads}"));

        // The trace must cover every instrumented subsystem of this run.
        for label in ["attack.layer", "broker.batch", "proc.key_bit_inference"] {
            assert!(
                flight.span_count(label) > 0,
                "threads {threads}: no '{label}' span captured"
            );
        }
        let checkpoint_writes = flight
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Counter { label, .. } if label == "checkpoint.write"))
            .count();
        assert_eq!(
            checkpoint_writes,
            traced.frames.len(),
            "threads {threads}: one checkpoint.write counter per persisted frame"
        );
        assert_eq!(
            flight.counter_total("broker.requested"),
            traced.report.stats.requested,
            "threads {threads}: trace books must match the broker snapshot"
        );
        assert!(
            flight.span_count("attack.worker") > 0,
            "threads {threads}: no shard-worker span captured"
        );
        // Every begin has exactly one end: the guards all fired.
        let (begins, ends) = flight
            .events()
            .iter()
            .fold((0usize, 0usize), |(b, e), ev| match ev {
                Event::SpanBegin { .. } => (b + 1, e),
                Event::SpanEnd { .. } => (b, e + 1),
                Event::Counter { .. } => (b, e),
            });
        assert_eq!(begins, ends, "threads {threads}: unbalanced span guards");
    }
}

/// Uninstalling mid-process restores the bare path: events stop flowing
/// and the engine still replays the identical run.
#[test]
fn uninstall_restores_the_bare_path() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = mlp16_victim();
    let bare = run(&model, 1);
    let flight = Arc::new(FlightRecorder::new());
    relock_trace::install(flight.clone());
    assert!(
        relock_trace::enabled(),
        "install must arm the hot-path flag"
    );
    let _installed = relock_trace::uninstall().expect("a recorder was installed");
    assert!(!relock_trace::enabled(), "uninstall must disarm it");
    let after = run(&model, 1);
    assert_same_run(&after, &bare, "post-uninstall");
    assert!(
        flight.is_empty(),
        "no events may arrive after uninstall: {:?}",
        flight.events().first()
    );
}

/// The JSONL a real attack writes round-trips losslessly: every line
/// parses back to the event that produced it, and re-encoding is
/// byte-identical — the property `--trace` files rely on.
#[test]
fn captured_attack_trace_round_trips_through_jsonl() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = mlp16_victim();
    let flight = Arc::new(FlightRecorder::new());
    relock_trace::with_recorder(flight.clone(), || run(&model, 1));
    let events = flight.events();
    assert!(!events.is_empty());
    let jsonl = flight.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, event) in lines.iter().zip(&events) {
        let parsed = Event::from_jsonl(line).expect("captured line must parse");
        assert_eq!(&parsed, event);
        assert_eq!(parsed.to_jsonl(), *line, "re-encode must be byte-equal");
    }
}
