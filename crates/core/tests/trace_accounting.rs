//! Two sets of books, one truth: the broker's `QueryStatsSnapshot` and
//! the flight-recorder's counter totals are written by the same code
//! paths and must agree exactly — including under fault-injected retries,
//! where a double-count would be easiest to introduce (a retried batch
//! must be counted once in both books, not once per attempt).
//!
//! Own test binary: the recorder is a process global, so installs here
//! can't pollute (or be polluted by) other suites.

use relock_attack::{AttackConfig, Decryptor};
use relock_locking::{CountingOracle, LockSpec, LockedModel, Oracle};
use relock_nn::{build_mlp, MlpSpec};
use relock_serve::{
    Broker, BrokerConfig, ChaosConfig, ChaosOracle, QueryStatsSnapshot, RetryPolicy,
};
use relock_tensor::rng::Prng;
use relock_trace::FlightRecorder;
use std::sync::{Arc, Mutex};
use std::time::Duration;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn mlp_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(500);
    build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap()
}

/// Asserts every global trace total equals the corresponding snapshot
/// field, and that the per-scope trace books sum to those globals.
fn assert_books_agree(flight: &FlightRecorder, snap: &QueryStatsSnapshot, ctx: &str) {
    assert!(
        snap.is_balanced(),
        "{ctx}: requested must equal cache_hits + underlying: {snap:?}"
    );
    assert_eq!(
        flight.counter_total("broker.requested"),
        snap.requested,
        "{ctx}: requested totals disagree"
    );
    assert_eq!(
        flight.counter_total("broker.cache_hits"),
        snap.cache_hits,
        "{ctx}: cache-hit totals disagree"
    );
    assert_eq!(
        flight.counter_total("broker.underlying"),
        snap.underlying,
        "{ctx}: underlying totals disagree"
    );
    assert_eq!(
        flight.counter_total("broker.retry"),
        snap.retries,
        "{ctx}: retry totals disagree"
    );
    assert_eq!(
        flight.counter_total("chaos.injected"),
        snap.injected_faults,
        "{ctx}: injected-fault totals disagree"
    );

    // The per-scope trace books must also match the snapshot's per-scope
    // table — counters carry the scope they were recorded under.
    let totals = flight.counter_totals();
    for (scope, counts) in &snap.per_scope {
        let of = |label: &str| {
            totals
                .get(&(label.to_string(), Some(scope.clone())))
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(
            of("broker.requested"),
            counts.requested,
            "{ctx}: scope '{scope}' requested disagrees"
        );
        assert_eq!(
            of("broker.cache_hits"),
            counts.cache_hits,
            "{ctx}: scope '{scope}' cache hits disagree"
        );
        assert_eq!(
            of("broker.underlying"),
            counts.underlying,
            "{ctx}: scope '{scope}' underlying disagrees"
        );
    }
}

/// Sequential transient-fault soak (10% drop rate, retries absorb every
/// fault): the books must agree and retries must be counted once each —
/// `retries == injected_faults` in *both* ledgers.
#[test]
fn trace_and_snapshot_books_agree_under_transient_chaos() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = mlp_victim();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig {
            seed: 13,
            transient_rate: 0.10,
            ..ChaosConfig::default()
        },
    );
    let broker = Broker::with_config(
        &chaos,
        BrokerConfig {
            retry: RetryPolicy {
                max_attempts: 24,
                base_backoff: Duration::ZERO,
                multiplier: 1,
                ..RetryPolicy::default()
            },
            ..BrokerConfig::default()
        },
    );
    let flight = Arc::new(FlightRecorder::new());
    let report = relock_trace::with_recorder(flight.clone(), || {
        let report = Decryptor::new(AttackConfig::fast())
            .run_brokered(model.white_box(), &broker, &mut Prng::seed_from_u64(501))
            .unwrap();
        // Publish while the recorder is installed, so the delta lands in
        // both ledgers.
        chaos.sync_stats(broker.stats());
        report
    });
    assert_eq!(report.fidelity(model.true_key()), 1.0);

    let snap = broker.snapshot();
    assert!(snap.injected_faults > 0, "10% drop rate must inject faults");
    assert_eq!(
        snap.retries, snap.injected_faults,
        "every transient error costs exactly one retry"
    );
    assert_books_agree(&flight, &snap, "sequential chaos");
}

/// The concurrency variant: 4 shard workers pile onto the broker while
/// the oracle injects faults and latency spikes. Worker interleaving must
/// not lose or double-count a row in either ledger.
#[test]
fn trace_and_snapshot_books_agree_under_parallel_chaos() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = mlp_victim();
    let chaos = ChaosOracle::new(
        CountingOracle::new(&model),
        ChaosConfig {
            seed: 29,
            transient_rate: 0.08,
            latency_spike_rate: 0.05,
            latency_spike: Duration::from_micros(300),
            ..ChaosConfig::default()
        },
    );
    let broker = Broker::with_config(
        &chaos,
        BrokerConfig {
            retry: RetryPolicy {
                max_attempts: 24,
                base_backoff: Duration::ZERO,
                multiplier: 1,
                ..RetryPolicy::default()
            },
            ..BrokerConfig::default()
        },
    );
    let cfg = AttackConfig {
        threads: 4,
        ..AttackConfig::fast()
    };
    let flight = Arc::new(FlightRecorder::new());
    let report = relock_trace::with_recorder(flight.clone(), || {
        let report = Decryptor::new(cfg)
            .run_brokered(model.white_box(), &broker, &mut Prng::seed_from_u64(501))
            .unwrap();
        chaos.sync_stats(broker.stats());
        report
    });
    assert_eq!(report.fidelity(model.true_key()), 1.0);

    let snap = broker.snapshot();
    assert!(
        snap.injected_faults > 0,
        "fault schedule must actually fire"
    );
    assert_eq!(
        snap.underlying,
        chaos.query_count(),
        "broker's underlying total must agree with the oracle's row counter"
    );
    assert_books_agree(&flight, &snap, "parallel chaos");
}

/// A clean (fault-free) run agrees too, with zero retry/fault counters in
/// both books — the cross-check is not only about the chaos path.
#[test]
fn trace_and_snapshot_books_agree_on_a_clean_run() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = mlp_victim();
    let oracle = CountingOracle::new(&model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let flight = Arc::new(FlightRecorder::new());
    let report = relock_trace::with_recorder(flight.clone(), || {
        Decryptor::new(AttackConfig::fast())
            .run_brokered(model.white_box(), &broker, &mut Prng::seed_from_u64(501))
            .unwrap()
    });
    assert_eq!(report.fidelity(model.true_key()), 1.0);
    let snap = broker.snapshot();
    assert_eq!(snap.retries, 0);
    assert_eq!(snap.injected_faults, 0);
    assert_eq!(flight.counter_total("broker.retry"), 0);
    assert_eq!(flight.counter_total("chaos.injected"), 0);
    assert_books_agree(&flight, &snap, "clean run");
}
