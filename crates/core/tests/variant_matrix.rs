//! Differential conformance over the lock-variant × attack matrix.
//!
//! Every cell of the matrix must be bit-identical however the engine is
//! spread out. For the oracle-guided decryption cells that means the
//! full [`RunTrace`] contract — key, query count, broker accounting, and
//! every checkpoint frame byte-for-byte — across thread counts (the
//! worker-process dimension of the same contract lives in
//! `crates/dist/tests/dist_equiv.rs`, which needs the worker binary).
//! The sampling and oracle-less cells are sequential by construction, so
//! their conformance axis is replay: identical seeds must reproduce the
//! identical key, score, and query count.

use relock_attack::testutil::{run_threads, variant_victim};
use relock_attack::{
    neuroevolution_key_search, sampling_key_search, weight_stats_attack, AttackConfig,
    EvolutionConfig, SamplingConfig,
};
use relock_locking::{CountingOracle, Key, LockVariant};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;

const UNIT_VARIANTS: [LockVariant; 2] = [LockVariant::Sign, LockVariant::Scale(0.25)];
const TRIGGER_VARIANTS: [LockVariant; 2] = [LockVariant::SarTrigger, LockVariant::AntiSatTrigger];

fn attack_cfg(variant: LockVariant) -> AttackConfig {
    AttackConfig {
        variant,
        ..AttackConfig::fast()
    }
}

/// Oracle-guided cells on unit locks: the decryption pipeline must
/// produce byte-identical traces at 1 and 4 threads, and recover the key
/// exactly.
#[test]
fn decrypt_cells_are_thread_invariant_on_unit_locks() {
    for (i, &variant) in UNIT_VARIANTS.iter().enumerate() {
        let model = variant_victim(variant, 10, 760 + i as u64);
        let cfg = attack_cfg(variant);
        let reference = run_threads(&model, cfg, 1, 761);
        assert_eq!(
            reference.report.key,
            *model.true_key(),
            "{variant}: the decryption attack must stay exact on unit locks"
        );
        let parallel = run_threads(&model, cfg, 4, 761);
        relock_attack::testutil::assert_traces_match(
            &parallel,
            &reference,
            &format!("{variant} decrypt @4 threads"),
        );
    }
}

/// Oracle-guided cells on trigger locks run the sampling attack. It is a
/// single sequential segment, so the conformance axis is replay; the
/// cell must also demonstrate the degradation the matrix exists to show:
/// near-perfect probe agreement with an imperfect key.
#[test]
fn sampling_cells_replay_identically_and_show_the_flat_landscape() {
    for (i, &variant) in TRIGGER_VARIANTS.iter().enumerate() {
        let model = variant_victim(variant, 10, 770 + i as u64);
        let cfg = SamplingConfig::from_attack(&attack_cfg(variant));
        let run = |seed: u64| {
            let oracle = CountingOracle::new(&model);
            let broker = Broker::with_config(&oracle, BrokerConfig::default());
            sampling_key_search(
                model.white_box(),
                &broker,
                &cfg,
                &mut Prng::seed_from_u64(seed),
            )
        };
        let a = run(771);
        let b = run(771);
        assert_eq!(a.key, b.key, "{variant}: sampling replay diverged");
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.agreement.to_bits(), b.agreement.to_bits());
        assert!(
            a.agreement >= 0.95,
            "{variant}: random probes almost surely miss the trigger subspace \
             (agreement {}), so the landscape reads as solved",
            a.agreement
        );
        assert!(
            a.key.fidelity(model.true_key()) < 1.0,
            "{variant}: a flat landscape must not hand over the exact key"
        );
    }
}

/// The weight-statistics cells: query-free and replay-deterministic on
/// every variant, with zero features (hence a weightless guess) on
/// trigger comparators.
#[test]
fn weight_stats_cells_are_query_free_and_deterministic() {
    for (i, &variant) in UNIT_VARIANTS.iter().chain(&TRIGGER_VARIANTS).enumerate() {
        let victim = variant_victim(variant, 10, 780 + i as u64);
        let train_a = variant_victim(variant, 10, 880 + i as u64);
        let train_b = variant_victim(variant, 10, 980 + i as u64);
        let training = [
            (train_a.white_box(), train_a.true_key()),
            (train_b.white_box(), train_b.true_key()),
        ];
        let cfg = attack_cfg(variant);
        let a = weight_stats_attack(victim.white_box(), &training, &cfg.learning);
        let b = weight_stats_attack(victim.white_box(), &training, &cfg.learning);
        assert_eq!(a.key, b.key, "{variant}: classifier replay diverged");
        assert_eq!(a.queries, 0, "{variant}: the attack must never query");
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}

/// The neuroevolution cells: query-free, and bit-identical under seed
/// replay on every variant.
#[test]
fn neuroevolution_cells_are_query_free_and_deterministic() {
    for (i, &variant) in UNIT_VARIANTS.iter().chain(&TRIGGER_VARIANTS).enumerate() {
        let victim = variant_victim(variant, 10, 790 + i as u64);
        let cfg = EvolutionConfig::default();
        let run = |seed: u64| {
            neuroevolution_key_search(victim.white_box(), &cfg, &mut Prng::seed_from_u64(seed))
        };
        let a = run(791);
        let b = run(791);
        assert_eq!(a.key, b.key, "{variant}: evolution replay diverged");
        assert_eq!(a.queries, 0, "{variant}: the attack must never query");
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        // A different seed explores a different population — the search
        // is rng-driven, not a constant function of the victim.
        let c = run(4791);
        assert!(
            c.key != a.key || c.score.to_bits() == a.score.to_bits(),
            "{variant}: distinct seeds should not be forced to collide"
        );
    }
}

/// Trigger keys honour the allocator's constraints: regenerating the
/// same victim yields the same (constraint-satisfying) key, and a
/// different seed yields a different key — the conformance suite's
/// guard against constraint application being dropped somewhere in the
/// builder path.
#[test]
fn trigger_victims_are_reproducible_and_seed_sensitive() {
    for &variant in &TRIGGER_VARIANTS {
        let a = variant_victim(variant, 10, 8100);
        let b = variant_victim(variant, 10, 8100);
        assert_eq!(a.true_key(), b.true_key());
        let c = variant_victim(variant, 10, 8101);
        assert_ne!(
            a.true_key(),
            c.true_key(),
            "{variant}: distinct seeds must draw distinct keys"
        );
        assert_ne!(a.true_key(), &Key::zeros(10));
    }
}
