//! Checkpoint format properties: randomized `AttackState` values must
//! survive an encode/decode round trip bit-exactly, and *no* corrupted or
//! truncated frame may ever decode — the resume path must detect the
//! damage and fall back to a fresh run instead of panicking.

use relock_attack::{
    AttackConfig, AttackState, CheckpointError, CheckpointPolicy, Decryptor, LayerReportState,
    MemoryCheckpointSink, PhaseCut, QueryStatsSnapshot, ResumeStatus, ScopeCounts, SerialTarget,
};
use relock_locking::{CountingOracle, LockSpec};
use relock_nn::{build_mlp, MlpSpec};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::{Prng, PrngState};
use std::time::Duration;

fn random_pairs_f64(rng: &mut Prng, max_len: usize) -> Vec<(usize, f64)> {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|i| (i * 2 + rng.below(2), rng.normal()))
        .collect()
}

fn random_cut(rng: &mut Prng) -> PhaseCut {
    match rng.below(4) {
        0 => PhaseCut::LayerStart,
        1 => PhaseCut::PostInfer {
            inferred: (0..rng.below(9))
                .map(|i| {
                    let bit = match rng.below(3) {
                        0 => None,
                        1 => Some(false),
                        _ => Some(true),
                    };
                    (i, bit)
                })
                .collect(),
        },
        2 => PhaseCut::PostLearn {
            unresolved: (0..rng.below(7)).collect(),
            confidences: random_pairs_f64(rng, 8),
        },
        _ => PhaseCut::Correcting {
            confidences: random_pairs_f64(rng, 8),
            algebraic: rng.below(100) as u64,
            learned: rng.below(100) as u64,
            rounds: rng.below(1000) as u64,
            tried: rng.below(500) as u64,
            target: if rng.flip() {
                Some(SerialTarget {
                    surface_node: rng.below(64),
                    layout: [
                        1 + rng.below(8),
                        1 + rng.below(8),
                        1 + rng.below(8),
                        1 + rng.below(8),
                    ],
                    units: (0..rng.below(6))
                        .map(|u| {
                            (
                                u,
                                if rng.flip() {
                                    Some(rng.below(16))
                                } else {
                                    None
                                },
                            )
                        })
                        .collect(),
                })
            } else {
                None
            },
        },
    }
}

fn random_state(rng: &mut Prng) -> AttackState {
    let n_slots = 1 + rng.below(24);
    let mut stats = QueryStatsSnapshot {
        requested: rng.below(1 << 20) as u64,
        cache_hits: rng.below(1 << 20) as u64,
        underlying: rng.below(1 << 20) as u64,
        batches: rng.below(1 << 16) as u64,
        retries: rng.below(100) as u64,
        injected_faults: rng.below(100) as u64,
        oracle_time: Duration::from_nanos(rng.below(1 << 30) as u64),
        ..Default::default()
    };
    for b in &mut stats.histogram {
        *b = rng.below(1000) as u64;
    }
    stats.per_scope = (0..rng.below(4))
        .map(|i| {
            (
                format!("scope-{i}"),
                ScopeCounts {
                    requested: rng.below(1000) as u64,
                    cache_hits: rng.below(1000) as u64,
                    underlying: rng.below(1000) as u64,
                },
            )
        })
        .collect();
    AttackState {
        n_slots,
        layer_index: rng.below(5),
        cut: random_cut(rng),
        key_bits: (0..n_slots).map(|_| rng.flip()).collect(),
        committed: (0..rng.below(n_slots + 1))
            .map(|i| (i, rng.flip()))
            .collect(),
        warm: random_pairs_f64(rng, n_slots),
        reports: (0..rng.below(4))
            .map(|i| LayerReportState {
                keyed_node: i * 3 + 1,
                bits: rng.below(32) as u64,
                algebraic: rng.below(32) as u64,
                learned: rng.below(32) as u64,
                validation_rounds: rng.below(64) as u64,
                corrected: rng.below(8) as u64,
                validated: rng.flip(),
            })
            .collect(),
        rng: PrngState {
            s: [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ],
            spare_normal: if rng.flip() { Some(rng.normal()) } else { None },
        },
        timing_nanos: [
            rng.below(1 << 30) as u64,
            rng.below(1 << 30) as u64,
            rng.below(1 << 30) as u64,
            rng.below(1 << 30) as u64,
        ],
        stats,
        queries: rng.below(1 << 24) as u64,
    }
}

#[test]
fn random_states_round_trip_bit_exactly() {
    let mut rng = Prng::seed_from_u64(4200);
    for case in 0..200 {
        let state = random_state(&mut rng);
        let bytes = state.encode();
        let back = AttackState::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(back, state, "case {case}");
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let mut rng = Prng::seed_from_u64(4300);
    let state = random_state(&mut rng);
    let bytes = state.encode();
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut bad = bytes.clone();
            bad[pos] ^= flip;
            assert!(
                AttackState::decode(&bad).is_err(),
                "flip 0x{flip:02x} at byte {pos}/{} went undetected",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_truncation_is_detected() {
    let mut rng = Prng::seed_from_u64(4400);
    let state = random_state(&mut rng);
    let bytes = state.encode();
    for len in 0..bytes.len() {
        match AttackState::decode(&bytes[..len]) {
            Err(CheckpointError::Corrupt(_)) => {}
            Err(e) => panic!("truncation to {len} gave non-corrupt error {e}"),
            Ok(_) => panic!("truncation to {len} bytes decoded"),
        }
    }
}

#[test]
fn trailing_garbage_is_detected() {
    let mut rng = Prng::seed_from_u64(4500);
    let state = random_state(&mut rng);
    let mut bytes = state.encode();
    bytes.extend_from_slice(&[0xAB; 7]);
    assert!(AttackState::decode(&bytes).is_err());
}

/// Applies one randomly chosen damage pattern to `bytes`: a truncation to
/// a random length, a burst of 1–8 random bit flips, or both.
fn random_damage(rng: &mut Prng, bytes: &[u8]) -> Vec<u8> {
    let mut bad = bytes.to_vec();
    let mode = rng.below(3);
    if mode != 1 {
        bad.truncate(rng.below(bad.len() + 1));
    }
    if mode != 0 && !bad.is_empty() {
        for _ in 0..1 + rng.below(8) {
            let pos = rng.below(bad.len());
            bad[pos] ^= 1 << rng.below(8);
        }
    }
    bad
}

/// Fuzz the `RLCP` parser: random truncations and multi-bit flip bursts
/// must never panic the decoder, and whenever a damaged frame *does*
/// decode (the damage cancelled out, or — vanishingly unlikely — the
/// checksum collided), the result must equal the original state. There is
/// no third outcome: decode errors or the truth, never a silently-wrong
/// resume.
#[test]
fn random_damage_never_panics_and_never_decodes_to_a_different_state() {
    let mut rng = Prng::seed_from_u64(4700);
    for case in 0..400 {
        let state = random_state(&mut rng);
        let bytes = state.encode();
        let bad = random_damage(&mut rng, &bytes);
        let outcome = std::panic::catch_unwind(|| AttackState::decode(&bad))
            .unwrap_or_else(|_| panic!("case {case}: decoder panicked on damaged frame"));
        if let Ok(back) = outcome {
            assert_eq!(
                back, state,
                "case {case}: damaged frame decoded to a different state"
            );
        }
    }
}

/// End-to-end recovery contract: a corrupted checkpoint never panics and
/// never poisons the result — `resume` reports the fallback and the fresh
/// run still recovers the exact key.
#[test]
fn corrupted_checkpoint_falls_back_to_clean_fresh_run() {
    let mut rng = Prng::seed_from_u64(4600);
    let model = build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap();
    let g = model.white_box();
    let oracle = CountingOracle::new(&model);
    let dec = Decryptor::new(AttackConfig::fast());

    let sink = MemoryCheckpointSink::new();
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let reference = dec
        .run_with_checkpoints(
            g,
            &broker,
            &mut Prng::seed_from_u64(4601),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();

    // Smash a byte in the middle of the stored frame.
    let mut bytes = sink.contents().expect("run must have checkpointed");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    sink.set(Some(bytes));

    let broker2 = Broker::with_config(&oracle, BrokerConfig::default());
    let (report, status) = dec
        .resume(
            g,
            &broker2,
            &mut Prng::seed_from_u64(4601),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();
    match &status {
        ResumeStatus::FellBack { reason } => {
            assert!(
                reason.contains("corrupt") || reason.contains("checksum"),
                "unexpected fallback reason: {reason}"
            );
        }
        other => panic!("expected FellBack, got {other:?}"),
    }
    assert_eq!(report.key, reference.key);
    assert_eq!(report.fidelity(model.true_key()), 1.0);

    // The fresh run has overwritten the damage: a second resume continues
    // from the (now valid) final snapshot.
    let broker3 = Broker::with_config(&oracle, BrokerConfig::default());
    let (again, status) = dec
        .resume(
            g,
            &broker3,
            &mut Prng::seed_from_u64(4601),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();
    assert!(status.resumed(), "got {status:?}");
    assert_eq!(again.key, reference.key);
}

/// Sampled end-to-end sweep of the same damage patterns the parser fuzz
/// uses: every damaged checkpoint planted in the sink makes `resume`
/// report `FellBack` and run fresh to the exact key — never a panic and
/// never a silently-wrong resume from rotten state.
#[test]
fn sampled_damage_always_falls_back_and_recovers_exact_key() {
    let mut rng = Prng::seed_from_u64(4800);
    let model = build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap();
    let g = model.white_box();
    let oracle = CountingOracle::new(&model);
    let dec = Decryptor::new(AttackConfig::fast());

    let sink = MemoryCheckpointSink::new();
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let reference = dec
        .run_with_checkpoints(
            g,
            &broker,
            &mut Prng::seed_from_u64(4801),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();
    let pristine = sink.contents().expect("run must have checkpointed");

    let mut damage_rng = Prng::seed_from_u64(4802);
    for round in 0..6 {
        // Re-damage the pristine frame each round (a fallback run will
        // have overwritten the sink with fresh valid checkpoints).
        let bad = loop {
            let bad = random_damage(&mut damage_rng, &pristine);
            if bad != pristine {
                break bad;
            }
        };
        sink.set(Some(bad));
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let (report, status) = dec
            .resume(
                g,
                &broker,
                &mut Prng::seed_from_u64(4801),
                &sink,
                CheckpointPolicy::EVERY_CUT,
            )
            .unwrap();
        assert!(
            matches!(status, ResumeStatus::FellBack { .. }),
            "round {round}: damaged checkpoint must fall back, got {status:?}"
        );
        assert_eq!(
            report.key, reference.key,
            "round {round}: fallback run diverged from the reference"
        );
    }
}
