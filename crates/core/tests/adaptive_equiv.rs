//! Adaptive-engine equivalence suite (DESIGN.md §3i): the online
//! `AdaptiveController` tunes correction wave width and dispatch sharding
//! from *deterministic inputs only* (cumulative counters, never wall
//! clock), so an adaptive run must be bit-identical at any thread count,
//! must never query more than the static schedule, and must survive
//! checkpoint kill-and-resume exactly like the static path. With the
//! knob off, the engine must behave as if the controller did not exist —
//! no `adapt.*` trace counters, observables byte-identical to the static
//! reference.
//!
//! The worker-*process* leg of the sweep lives in
//! `crates/dist/tests/dist_equiv.rs` (the coordinator harness is there);
//! this suite covers the in-process engine.

use relock_attack::testutil::{
    assert_traces_match, mlp16_victim, run_threads, sequential_run, strip_clock, RecordingSink,
};
use relock_attack::{AttackConfig, CheckpointPolicy, Decryptor};
use relock_locking::CountingOracle;
use relock_serve::{Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle};
use relock_tensor::rng::Prng;
use relock_trace::FlightRecorder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The correction-heavy configuration: forcing the learning path drags
/// layers through §3.7 validation and §3.8 wave correction, where the
/// controller actually makes decisions. Seed 732 commits corrected bits.
fn correction_cfg(adaptive: bool) -> AttackConfig {
    AttackConfig {
        disable_algebraic: true,
        adaptive,
        ..AttackConfig::fast()
    }
}

/// With the knob off, the engine must not merely produce the same
/// answer — it must *be* the static path: zero `adapt.*` counters in the
/// trace and observables byte-identical to a run of the untouched
/// static configuration.
#[test]
fn disabled_controller_is_byte_identical_to_the_static_path_and_silent() {
    let victim = mlp16_victim();
    for seed in [700u64, 732] {
        let reference = sequential_run(&victim, &correction_cfg(false), seed);
        let flight = Arc::new(FlightRecorder::new());
        let off = relock_trace::with_recorder(flight.clone(), || {
            sequential_run(&victim, &correction_cfg(false), seed)
        });
        assert_traces_match(&off, &reference, &format!("adaptive-off seed {seed}"));
        for label in [
            "adapt.wave_width",
            "adapt.wave_commit",
            "adapt.wave_discard",
            "adapt.shard_rows",
        ] {
            assert_eq!(
                flight.counter_total(label),
                0,
                "seed {seed}: disabled controller must emit no {label} counters"
            );
        }
    }
}

/// The §3e contract extended to the adaptive path: wave widths and shard
/// hints derive only from checkpointed counters, so 1, 2, and 4 threads
/// replay identical decisions and identical bytes.
#[test]
fn adaptive_sweep_is_bit_identical_across_thread_counts() {
    let victim = mlp16_victim();
    for seed in [700u64, 732] {
        let cfg = correction_cfg(true);
        let reference = run_threads(&victim, cfg, 1, seed);
        assert_eq!(
            reference.report.fidelity(victim.true_key()),
            1.0,
            "seed {seed}: adaptive sequential reference must recover the key exactly"
        );
        for threads in [2usize, 4] {
            let t = run_threads(&victim, cfg, threads, seed);
            assert_traces_match(
                &t,
                &reference,
                &format!("adaptive seed {seed} threads {threads}"),
            );
        }
    }
}

/// The adaptive schedule's payoff: the ramped wave widths validate a
/// prefix of what the static wave would have validated, so the adaptive
/// run never queries the oracle *more* — while still recovering the
/// identical key. On runs that reach correction, the controller must
/// actually have decided something (`adapt.*` counters present).
#[test]
fn adaptive_runs_query_no_more_than_static_and_record_decisions() {
    let victim = mlp16_victim();
    for seed in [700u64, 732] {
        let stat = sequential_run(&victim, &correction_cfg(false), seed);
        let flight = Arc::new(FlightRecorder::new());
        let adap = relock_trace::with_recorder(flight.clone(), || {
            sequential_run(&victim, &correction_cfg(true), seed)
        });
        assert_eq!(
            adap.report.key, stat.report.key,
            "seed {seed}: adaptive run must recover the same key"
        );
        assert!(
            adap.report.queries <= stat.report.queries,
            "seed {seed}: adaptive queries {} exceed static {}",
            adap.report.queries,
            stat.report.queries
        );
        // Every layer retunes the dispatch shard size once.
        assert!(
            flight.counter_total("adapt.shard_rows") > 0,
            "seed {seed}: adaptive run must record shard retunes"
        );
        let corrected: usize = adap.report.layers.iter().map(|l| l.corrected).sum();
        if corrected > 0 {
            assert!(
                flight.counter_total("adapt.wave_width") > 0,
                "seed {seed}: corrected bits imply wave-width decisions"
            );
        }
    }
}

/// Kill-and-resume across RLCP cuts with the controller on: wave-width
/// decisions replay from the checkpointed candidate index, so two
/// independent crash-and-resume soaks land on the same key (identical to
/// the uninterrupted run) with the same cumulative query count as each
/// other.
#[test]
fn adaptive_decisions_replay_across_checkpoint_resume() {
    let victim = mlp16_victim();
    let cfg = correction_cfg(true);
    let reference = sequential_run(&victim, &cfg, 732);
    let q = reference.report.queries;
    let crash_at: Vec<u64> = (1..=3).map(|i| i * q / 4).collect();

    let soak = |schedule: &[u64]| {
        let chaos = ChaosOracle::new(
            CountingOracle::new(&victim),
            ChaosConfig::crash_only(11, schedule.to_vec()),
        );
        let dec = Decryptor::new(cfg);
        let sink = RecordingSink::default();
        let mut crashes = 0usize;
        let report = loop {
            assert!(
                crashes <= schedule.len(),
                "more unwinds than scheduled crash points"
            );
            let broker = Broker::with_config(&chaos, BrokerConfig::default());
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = Prng::seed_from_u64(732);
                dec.resume(
                    victim.white_box(),
                    &broker,
                    &mut rng,
                    &sink,
                    CheckpointPolicy::EVERY_CUT,
                )
            }));
            match attempt {
                Ok(Ok((report, status))) => {
                    if crashes > 0 {
                        assert!(
                            status.resumed(),
                            "post-crash segments must resume from a checkpoint"
                        );
                    }
                    break report;
                }
                Ok(Err(e)) => panic!("attack error during adaptive soak: {e}"),
                Err(payload) => {
                    payload
                        .downcast::<ChaosCrash>()
                        .expect("only scheduled chaos crashes should unwind");
                    crashes += 1;
                }
            }
        };
        assert!(crashes > 0, "the soak must actually crash");
        report
    };

    let a = soak(&crash_at);
    let b = soak(&crash_at);
    assert_eq!(
        a.key, reference.report.key,
        "resumed adaptive run lost the key"
    );
    assert_eq!(a.fidelity(victim.true_key()), 1.0);
    assert_eq!(
        a.key, b.key,
        "two identical adaptive soaks must land on the same key"
    );
    assert_eq!(
        a.queries, b.queries,
        "two identical adaptive soaks must replay the same traffic"
    );
    assert_eq!(
        strip_clock(&a.stats),
        strip_clock(&b.stats),
        "two identical adaptive soaks must keep identical books"
    );
}
