//! The learning-based attack (paper §3.6).
//!
//! Every unresolved flipping unit is relaxed to a continuous multiplier
//! `m = tanh(θ) ∈ (−1, 1)` — the paper's sigmoid-with-[-1,1]-range
//! substitution. With all weights and decrypted bits frozen, the θ are
//! trained by Adam to minimize the mean squared error between the
//! white-box's logits and oracle responses on random inputs. Bits whose
//! multiplier reaches the confidence threshold are *settled* (frozen to
//! ±1) during training, exactly as §4.1 describes.

use crate::config::LearningConfig;
use crate::probs::{looks_like_probabilities, softmax_rows, softmax_vjp_rows};
use relock_graph::{Graph, KeyAssignment, KeySlot, Workspace};
use relock_locking::Oracle;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::collections::HashMap;

/// Outcome of a learning attack: the final continuous multiplier of every
/// requested slot. Settled bits report ±1; `|multiplier|` is the paper's
/// confidence level, which drives `error_correction`'s flip order.
pub type LearnedMultipliers = HashMap<KeySlot, f64>;

/// Stable encoding of a multiplier map for checkpoints: `(slot index,
/// multiplier)` pairs sorted by slot, so identical maps serialize to
/// identical bytes. Restore with [`multipliers_from_pairs`].
pub fn multipliers_to_pairs(m: &LearnedMultipliers) -> Vec<(usize, f64)> {
    let mut pairs: Vec<(usize, f64)> = m.iter().map(|(s, &v)| (s.index(), v)).collect();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs
}

/// Inverse of [`multipliers_to_pairs`].
pub fn multipliers_from_pairs(pairs: &[(usize, f64)]) -> LearnedMultipliers {
    pairs.iter().map(|&(i, v)| (KeySlot(i), v)).collect()
}

fn atanh_clamped(m: f64) -> f64 {
    let c = m.clamp(-0.985, 0.985);
    0.5 * ((1.0 + c) / (1.0 - c)).ln()
}

/// Runs the learning-based attack.
///
/// * `fixed_bits` — already decrypted bits (preceding layers and algebraic
///   successes of the current layer), enforced at ±1 throughout;
/// * `free_slots` — the bits to learn (the current layer's ⊥ bits plus all
///   bits of subsequent layers, which must co-adapt for the loss to be
///   meaningful);
/// * `warm_start` — multipliers from a previous invocation (Algorithm 2
///   re-runs the attack layer by layer; warm starting makes later layers
///   cheap).
///
/// Returns the final multiplier per free slot.
#[allow(clippy::too_many_arguments)] // mirrors the paper's procedure signature
pub fn learning_attack(
    g: &Graph,
    oracle: &dyn Oracle,
    fixed_bits: &HashMap<KeySlot, bool>,
    free_slots: &[KeySlot],
    warm_start: &LearnedMultipliers,
    cfg: &LearningConfig,
    input_scale: f64,
    rng: &mut Prng,
) -> LearnedMultipliers {
    let p = g.input_size();
    let n_slots = g.key_slot_count();
    let mut ka = KeyAssignment::all_zero_bits(n_slots);
    for (&slot, &bit) in fixed_bits {
        ka.set_bit(slot, bit);
    }
    if free_slots.is_empty() {
        return LearnedMultipliers::new();
    }

    // θ parameters for the free slots.
    let mut theta: Vec<f64> = free_slots
        .iter()
        .map(|s| match warm_start.get(s) {
            Some(&m) => atanh_clamped(m),
            None => 0.05 * rng.normal(),
        })
        .collect();
    let mut settled: Vec<bool> = vec![false; free_slots.len()];
    for (i, s) in free_slots.iter().enumerate() {
        ka.set(*s, theta[i].tanh());
    }

    // Oracle-labelled training set: random inputs, one query per row. A
    // budgeted oracle may afford fewer than `cfg.samples` rows — harvest
    // what it can pay for; if it can pay for nothing (or the backend is
    // gone), return the warm start unchanged: a degraded-but-usable
    // candidate beats a panic.
    let samples = match oracle.remaining_budget() {
        Some(left) => (left.min(cfg.samples as u64)) as usize,
        None => cfg.samples,
    };
    let fallback = || -> LearnedMultipliers {
        free_slots
            .iter()
            .map(|s| (*s, warm_start.get(s).copied().unwrap_or(0.0)))
            .collect()
    };
    if samples == 0 {
        return fallback();
    }
    let x = rng.normal_tensor([samples, p]).scale(input_scale);
    let Ok(y) = oracle.try_query_batch(&x) else {
        return fallback();
    };
    let q = y.dims()[1];
    // A probability oracle (§2.3 "output vector") is matched in
    // probability space, chaining the softmax into the gradient.
    let oracle_is_softmax = looks_like_probabilities(&y);

    // Adam state over θ.
    let (mut m1, mut m2) = (vec![0.0; theta.len()], vec![0.0; theta.len()]);
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    let mut t = 0u64;
    // One workspace for every mini-batch forward/backward of the run; the
    // weights are frozen (only θ moves), so the planned path's cached
    // effective weights survive the whole training loop.
    let mut ws = Workspace::new();
    ws.set_precision(cfg.precision);

    let mut best_loss = f64::INFINITY;
    let mut stale_epochs = 0usize;

    for _ in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..samples).collect();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch) {
            // Gather the mini-batch.
            let mut xb = Vec::with_capacity(chunk.len() * p);
            let mut yb = Vec::with_capacity(chunk.len() * q);
            for &i in chunk {
                xb.extend_from_slice(x.row(i));
                yb.extend_from_slice(y.row(i));
            }
            let xb = Tensor::from_vec(xb, [chunk.len(), p]);
            let yb = Tensor::from_vec(yb, [chunk.len(), q]);

            g.forward_into(&mut ws, &xb, &ka);
            let logits = ws.value(g.output_id());
            let (diff, grad_out) = if oracle_is_softmax {
                let probs = softmax_rows(logits);
                let diff = probs.zip_map(&yb, |a, b| a - b);
                let grad_probs = diff.scale(2.0 / (chunk.len() * q) as f64);
                let grad_out = softmax_vjp_rows(&probs, &grad_probs);
                (diff, grad_out)
            } else {
                let diff = logits.zip_map(&yb, |a, b| a - b);
                let grad_out = diff.scale(2.0 / (chunk.len() * q) as f64);
                (diff, grad_out)
            };
            epoch_loss +=
                diff.as_slice().iter().map(|d| d * d).sum::<f64>() / (chunk.len() * q) as f64;
            batches += 1;
            // Keys-only backward: the graph's weights are frozen, so the
            // expensive per-layer weight-gradient matrices are never formed.
            let grads = g.backward_into(&mut ws, &grad_out, &ka, false);

            t += 1;
            let (bc1, bc2) = (1.0 - b1.powi(t as i32), 1.0 - b2.powi(t as i32));
            for (i, slot) in free_slots.iter().enumerate() {
                if settled[i] {
                    continue;
                }
                let m = theta[i].tanh();
                let dm = grads.keys[slot.index()];
                let dtheta = dm * (1.0 - m * m);
                m1[i] = b1 * m1[i] + (1.0 - b1) * dtheta;
                m2[i] = b2 * m2[i] + (1.0 - b2) * dtheta * dtheta;
                theta[i] -= cfg.lr * (m1[i] / bc1) / ((m2[i] / bc2).sqrt() + eps);
                ka.set(*slot, theta[i].tanh());
            }
        }
        epoch_loss /= batches.max(1) as f64;

        // Settle confident bits (freeze to ±1).
        let mut newly_settled = false;
        for (i, slot) in free_slots.iter().enumerate() {
            if !settled[i] && theta[i].tanh().abs() >= cfg.confidence {
                settled[i] = true;
                newly_settled = true;
                ka.set(*slot, theta[i].tanh().signum());
            }
        }
        if settled.iter().all(|&s| s) {
            break;
        }
        // Early stopping: no settles and no loss progress.
        if newly_settled || epoch_loss < best_loss * 0.999 {
            stale_epochs = 0;
        } else {
            stale_epochs += 1;
            if stale_epochs >= cfg.patience {
                break;
            }
        }
        best_loss = best_loss.min(epoch_loss);
    }

    free_slots
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let m = if settled[i] {
                theta[i].tanh().signum()
            } else {
                theta[i].tanh()
            };
            (*s, m)
        })
        .collect()
}

/// Rounds learned multipliers to key bits (`m < 0 ⇒ bit 1`) — the paper's
/// final ⊥ replacement rule.
pub fn round_to_bits(multipliers: &LearnedMultipliers) -> HashMap<KeySlot, bool> {
    multipliers.iter().map(|(&s, &m)| (s, m < 0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};

    #[test]
    fn learns_key_of_small_expansive_mlp() {
        // Expansive first layer (16 > 8): the algebraic path is blind here,
        // this is exactly the case the learning attack exists for.
        let mut rng = Prng::seed_from_u64(110);
        let model = build_mlp(
            &MlpSpec {
                input: 8,
                hidden: vec![16],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        let free: Vec<KeySlot> = g.lock_sites().iter().map(|s| s.slot).collect();
        let cfg = LearningConfig {
            samples: 128,
            epochs: 120,
            ..LearningConfig::default()
        };
        let mut arng = Prng::seed_from_u64(111);
        let learned = learning_attack(
            g,
            &oracle,
            &HashMap::new(),
            &free,
            &LearnedMultipliers::new(),
            &cfg,
            2.0,
            &mut arng,
        );
        let bits = round_to_bits(&learned);
        let correct = bits
            .iter()
            .filter(|(s, &b)| model.true_key().bit(s.index()) == b)
            .count();
        // The learning attack is not guaranteed exact (that is what §3.7's
        // validation exists for), but it must recover a clear majority and
        // every *confident* bit must be right.
        assert!(
            correct >= 4,
            "learning attack recovered only {correct}/6 bits: {learned:?}"
        );
        for (slot, &m) in &learned {
            if m.abs() >= cfg.confidence {
                assert_eq!(
                    m < 0.0,
                    model.true_key().bit(slot.index()),
                    "confident bit {slot} is wrong (m = {m})"
                );
            }
        }
        // Exactly `samples` oracle queries were spent.
        assert_eq!(oracle.query_count(), 128);
    }

    #[test]
    fn fixed_bits_are_respected_and_not_returned() {
        let mut rng = Prng::seed_from_u64(112);
        let model = build_mlp(
            &MlpSpec {
                input: 6,
                hidden: vec![10],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        let sites = g.lock_sites();
        let mut fixed = HashMap::new();
        fixed.insert(sites[0].slot, model.true_key().bit(sites[0].slot.index()));
        let free: Vec<KeySlot> = sites[1..].iter().map(|s| s.slot).collect();
        let mut arng = Prng::seed_from_u64(113);
        let learned = learning_attack(
            g,
            &oracle,
            &fixed,
            &free,
            &LearnedMultipliers::new(),
            &LearningConfig::default(),
            2.0,
            &mut arng,
        );
        assert!(!learned.contains_key(&sites[0].slot));
        assert_eq!(learned.len(), 3);
    }

    #[test]
    fn empty_free_set_is_a_no_op() {
        let mut rng = Prng::seed_from_u64(114);
        let model = build_mlp(
            &MlpSpec {
                input: 4,
                hidden: vec![4],
                classes: 2,
            },
            LockSpec::none(),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let out = learning_attack(
            model.white_box(),
            &oracle,
            &HashMap::new(),
            &[],
            &LearnedMultipliers::new(),
            &LearningConfig::default(),
            1.0,
            &mut Prng::seed_from_u64(115),
        );
        assert!(out.is_empty());
        assert_eq!(oracle.query_count(), 0);
    }
}
